"""Ablation (Section 9.2): split store taints fix STT-Rename."""

from repro.harness.experiments import experiment_ablation_store_taints
from repro.pipeline.config import MEGA
from repro.pipeline.core import OoOCore
from repro.core.stt_rename import STTRenameScheme
from repro.workloads.kernels import forwarding_kernel

from benchmarks.conftest import record_report


def test_split_taints_on_exchange2_profile(benchmark, runner, results_dir):
    report = benchmark.pedantic(
        experiment_ablation_store_taints, args=(runner,), rounds=1, iterations=1
    )
    record_report(report, results_dir)


def test_split_taints_on_forwarding_kernel(benchmark, results_dir):
    def run():
        program = forwarding_kernel(iterations=150)
        unified = OoOCore(program, config=MEGA,
                          scheme=STTRenameScheme(split_store_taints=False)).run()
        split = OoOCore(program, config=MEGA,
                        scheme=STTRenameScheme(split_store_taints=True)).run()
        return unified, split

    unified, split = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nsplit-taint ablation: unified IPC %.2f (%d errors) -> "
          "split IPC %.2f (%d errors)"
          % (unified.stats.ipc, unified.stats.stl_forward_errors,
             split.stats.ipc, split.stats.stl_forward_errors))
    assert split.stats.ipc > unified.stats.ipc
    assert split.stats.stl_forward_errors < unified.stats.stl_forward_errors
