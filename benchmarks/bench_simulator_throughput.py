"""Engineering benchmark: simulator throughput itself.

Not a paper artefact — this tracks the model's cycles-per-second so
performance regressions in the simulator are visible in CI.
"""

from repro.pipeline.config import MEGA
from repro.pipeline.core import OoOCore
from repro.workloads.kernels import streaming_kernel


def test_simulation_throughput(benchmark):
    program = streaming_kernel(iterations=300, array_words=1024)

    def run():
        return OoOCore(program, config=MEGA, warm_caches=True).run()

    result = benchmark(run)
    assert result.stats.committed_instructions > 1000
