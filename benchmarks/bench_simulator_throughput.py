"""Engineering benchmark: simulator throughput itself.

Not a paper artefact — this tracks the model's cycles-per-second so
performance regressions in the simulator are visible in CI.  The
workloads come from the same canonical suite as ``python -m repro
bench`` (:func:`repro.harness.bench.throughput_suite`), so the CLI's
JSON report and this pytest-benchmark number always measure the same
thing.  The suite is built once per module (nothing is generated at
collection time; parametrisation uses the static label tuple).
"""

import pytest

from repro.core.factory import make_scheme
from repro.harness.bench import (
    THROUGHPUT_LABELS,
    run_throughput_bench,
    throughput_suite,
)
from repro.pipeline.config import MEGA
from repro.pipeline.core import OoOCore


@pytest.fixture(scope="module")
def suite():
    """label -> (program, warm), built once for every bench below."""
    return {label: (program, warm)
            for label, program, warm in throughput_suite()}


@pytest.mark.parametrize("label", THROUGHPUT_LABELS)
def test_workload_throughput(benchmark, suite, label):
    """Time one canonical throughput workload (best-of pytest-benchmark)."""
    program, warm = suite[label]

    def run():
        return OoOCore(program, config=MEGA, scheme=make_scheme("baseline"),
                       warm_caches=warm).run()

    result = benchmark(run)
    assert result.stats.committed_instructions > 100


def test_simulation_throughput(benchmark):
    """The aggregate suite report (the ``python -m repro bench`` number)."""

    def run():
        return run_throughput_bench(repeats=1)

    report = benchmark(run)
    aggregate = report["aggregate"]
    assert aggregate["instructions"] > 1000
    assert aggregate["cycles_per_second"] > 0
