"""Table 3 / Figure 1: performance = IPC x timing, + Intel estimate."""

from repro.harness.experiments import experiment_table3

from benchmarks.conftest import record_report


def test_table3_performance(benchmark, runner, results_dir):
    report = benchmark.pedantic(
        experiment_table3, args=(runner,), rounds=1, iterations=1
    )
    record_report(report, results_dir)
    data = report.data
    # The paper's headline (Section 8.4): once timing is included, NDA
    # outperforms both STT variants at the widest configuration, and
    # STT-Rename — the original proposal — comes last.
    mega = {scheme: data[scheme]["mega"] for scheme in data}
    assert mega["nda"] > mega["stt-issue"] > mega["stt-rename"]
    # Performance degrades with width for every scheme.
    for scheme in data:
        assert data[scheme]["small"] > data[scheme]["mega"], scheme
        # And the Redwood Cove-class estimate is the worst of all.
        assert data[scheme]["intel"] < data[scheme]["mega"], scheme
