"""Figure 9: achieved synthesis frequency per configuration and scheme."""

from repro.harness.experiments import experiment_figure9

from benchmarks.conftest import record_report


def test_figure9_synthesis_timing(benchmark, runner, results_dir):
    report = benchmark.pedantic(experiment_figure9, rounds=1, iterations=1)
    record_report(report, results_dir)
    data = report.data
    # Paper structure: STT-Rename achieves ~80% of baseline frequency
    # on Mega (rename-stage chain), STT-Issue is issue-stage limited,
    # NDA meets or beats baseline everywhere.
    mega = data["mega"]
    assert mega["stt-rename"]["mhz"] / mega["baseline"]["mhz"] < 0.85
    assert mega["stt-rename"]["critical_stage"] == "rename"
    assert mega["stt-issue"]["critical_stage"] == "issue"
    for config in ("small", "medium", "large", "mega"):
        per = data[config]
        assert per["nda"]["mhz"] >= per["baseline"]["mhz"] * 0.999, config
