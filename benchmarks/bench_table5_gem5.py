"""Table 5: IPC loss on BOOM configurations vs gem5-proxy configs."""

from repro.harness.experiments import experiment_table5

from benchmarks.conftest import record_report


def test_table5_boom_vs_gem5(benchmark, runner, results_dir):
    report = benchmark.pedantic(
        experiment_table5, args=(runner,), rounds=1, iterations=1,
        kwargs={"gem5_scale": min(runner.scale, 0.5)},
    )
    record_report(report, results_dir)
    data = report.data
    # BOOM rows: loss grows with configuration size for each scheme.
    for scheme in ("stt-rename", "stt-issue", "nda"):
        assert data["boom-mega"][scheme] >= data["boom-medium"][scheme] - 0.02
    # gem5 rows exist with plausible baselines (the STT-paper config is
    # a wide, idealised core; the NDA-paper config a mid-size one).
    assert data["gem5-stt"]["baseline_ipc"] > data["gem5-nda"]["baseline_ipc"] * 0.8
    assert "stt-rename" in data["gem5-stt"]
    assert "nda" in data["gem5-nda"]
