"""Figure 8: relative IPC vs absolute IPC, trend + Redwood Cove."""

from repro.harness.experiments import experiment_figure8

from benchmarks.conftest import record_report


def test_figure8_ipc_trend(benchmark, runner, results_dir):
    report = benchmark.pedantic(
        experiment_figure8, args=(runner,), rounds=1, iterations=1
    )
    record_report(report, results_dir)
    for scheme, data in report.data.items():
        # Losses grow with absolute IPC: negative slope.
        assert data["slope"] < 0, scheme
        # The Redwood Cove extrapolation predicts a larger loss than
        # any measured configuration.
        measured_min = min(y for _x, y in data["points"])
        assert data["redwood_cove_linear"] < measured_min, scheme
