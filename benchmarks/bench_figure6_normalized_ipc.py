"""Figure 6: per-benchmark normalized IPC at the Mega configuration."""

from repro.harness.experiments import experiment_figure6

from benchmarks.conftest import record_report


def test_figure6_normalized_ipc(benchmark, runner, results_dir):
    report = benchmark.pedantic(
        experiment_figure6, args=(runner,), rounds=1, iterations=1
    )
    record_report(report, results_dir)
    means = report.data["arithmetic-mean"]
    # Paper means: STT-Rename 0.819, STT-Issue 0.845, NDA 0.736.  The
    # required *shape*: every scheme loses IPC on average, STT-Issue
    # is the best of the three, and the streaming benchmarks stay flat.
    for scheme, value in means.items():
        assert value < 1.0, scheme
    assert means["stt-issue"] >= means["stt-rename"]
    assert report.data["503.bwaves"]["stt-issue"] > 0.95
    assert report.data["554.roms"]["nda"] > 0.95
