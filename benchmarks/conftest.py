"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it runs
the experiment through the shared (memoised) campaign runner, prints
the rendered report, appends it to ``results/experiments.txt``, and
times the computation with pytest-benchmark.

``REPRO_BENCH_SCALE`` (environment variable, default 1.0) multiplies
every workload's iteration count: raise it for tighter measurements,
lower it for smoke runs.
"""

import os
import pathlib

import pytest

from repro.harness.runner import CampaignRunner

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
_RUNNER = CampaignRunner(scale=_SCALE)


@pytest.fixture(scope="session")
def runner():
    """The process-wide simulation campaign (memoised across benches)."""
    return _RUNNER


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record_report(report, results_dir):
    """Print a report and append it to the results log."""
    print()
    print(str(report))
    log = results_dir / "experiments.txt"
    with open(log, "a") as handle:
        handle.write(str(report))
        handle.write("\n\n")
    single = results_dir / ("%s.txt" % report.experiment_id)
    with open(single, "w") as handle:
        handle.write(str(report))
        handle.write("\n")
