"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it runs
the experiment through the shared (memoised) campaign runner, prints
the rendered report, appends it to ``results/experiments.txt``, and
times the computation with pytest-benchmark.

The runner is constructed lazily inside the session fixture (nothing
simulates — or even builds workloads — at collection time) and is
backed by the persistent store under ``results/store/``, so repeated
bench runs skip every already-simulated cell.  The cache key includes
the workload scale, so changing ``REPRO_BENCH_SCALE`` can never reuse
a stale cell.

``REPRO_BENCH_SCALE`` (environment variable, default 1.0) multiplies
every workload's iteration count: raise it for tighter measurements,
lower it for smoke runs.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def runner():
    """The process-wide simulation campaign (memoised across benches)."""
    from repro.harness.runner import CampaignRunner
    from repro.harness.store import ResultStore

    store = ResultStore(RESULTS_DIR / "store")
    return CampaignRunner(scale=_SCALE, store=store)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record_report(report, results_dir):
    """Print a report and append it to the results log."""
    print()
    print(str(report))
    log = results_dir / "experiments.txt"
    with open(log, "a") as handle:
        handle.write(str(report))
        handle.write("\n\n")
    single = results_dir / ("%s.txt" % report.experiment_id)
    with open(single, "w") as handle:
        handle.write(str(report))
        handle.write("\n")
