"""Section 8.1 / 9.2: the exchange2 store-to-load forwarding anomaly."""

from repro.harness.experiments import experiment_exchange2
from repro.pipeline.config import MEGA
from repro.pipeline.core import OoOCore
from repro.core.factory import make_scheme
from repro.workloads.kernels import forwarding_kernel

from benchmarks.conftest import record_report


def test_exchange2_profile_stats(benchmark, runner, results_dir):
    report = benchmark.pedantic(
        experiment_exchange2, args=(runner,), rounds=1, iterations=1
    )
    record_report(report, results_dir)
    data = report.data
    # STT-Rename suffers the forwarding-error blow-up; STT-Issue and
    # NDA stay near baseline (the paper's NDA-beats-STT anomaly).
    assert data["stt-rename"]["ipc"] < data["stt-issue"]["ipc"]
    assert data["stt-rename"]["ipc"] < data["nda"]["ipc"]


def test_forwarding_kernel_error_ratio(benchmark, results_dir):
    """The distilled kernel: STT-Rename's blocked store address
    generation produces orders of magnitude more forwarding errors
    (the paper reports 1350x vs NDA on full SPEC runs)."""

    def run():
        program = forwarding_kernel(iterations=150)
        out = {}
        for scheme in ("baseline", "stt-rename", "stt-issue", "nda"):
            core = OoOCore(program, config=MEGA, scheme=make_scheme(scheme))
            out[scheme] = core.run()
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rename_errors = results["stt-rename"].stats.stl_forward_errors
    nda_errors = results["nda"].stats.stl_forward_errors
    print("\nforwarding kernel: STT-Rename %d errors vs NDA %d (IPC %.2f vs %.2f)"
          % (rename_errors, nda_errors,
             results["stt-rename"].stats.ipc, results["nda"].stats.ipc))
    assert rename_errors > 50 * max(1, nda_errors)
    assert results["nda"].stats.ipc > results["stt-rename"].stats.ipc
