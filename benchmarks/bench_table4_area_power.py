"""Table 4: area (LUTs/FFs) and power, normalized to baseline."""

from repro.harness.experiments import experiment_table4

from benchmarks.conftest import record_report


def test_table4_area_power(benchmark, runner, results_dir):
    report = benchmark.pedantic(
        experiment_table4, args=(runner,), rounds=1, iterations=1
    )
    record_report(report, results_dir)
    data = report.data
    # Paper values: STT-Rename 1.060/1.094/1.008, STT-Issue
    # 1.059/1.039/1.026, NDA 0.980/1.027/0.936.  Assert the structure.
    assert 1.0 < data["stt-rename"]["luts"] < 1.12
    assert 1.05 < data["stt-rename"]["ffs"] < 1.14
    assert data["stt-rename"]["ffs"] > data["stt-issue"]["ffs"]  # checkpoints
    assert data["nda"]["luts"] < 1.0          # removed spec-hit logic
    assert 1.0 < data["nda"]["ffs"] < 1.06
    assert data["nda"]["power"] < 1.0         # the sustainability edge
    assert data["stt-issue"]["power"] > data["nda"]["power"]
