"""Figure 7: normalized IPC for all four configurations per scheme."""

from repro.harness.experiments import experiment_figure7

from benchmarks.conftest import record_report


def test_figure7_ipc_across_configs(benchmark, runner, results_dir):
    report = benchmark.pedantic(
        experiment_figure7, args=(runner,), rounds=1, iterations=1
    )
    record_report(report, results_dir)
    # The paper's key claim: the mean normalized IPC *worsens* as the
    # core gets wider, for every scheme.
    for scheme, per_config in report.data.items():
        means = [per_config[c]["arithmetic-mean"]
                 for c in ("small", "medium", "large", "mega")]
        assert means[0] > means[3], scheme
        assert means[0] > 0.97, scheme  # Small barely affected
