"""Figure 10: relative timing across baseline absolute IPC."""

from repro.harness.experiments import experiment_figure10

from benchmarks.conftest import record_report


def test_figure10_timing_trend(benchmark, runner, results_dir):
    report = benchmark.pedantic(
        experiment_figure10, args=(runner,), rounds=1, iterations=1
    )
    record_report(report, results_dir)
    # STT-Rename's relative timing degrades with width; NDA's does not.
    rename_points = [y for _x, y in report.data["stt-rename"]["points"]]
    assert rename_points[0] > rename_points[-1]
    assert report.data["stt-rename"]["slope"] < 0
    nda_points = [y for _x, y in report.data["nda"]["points"]]
    assert min(nda_points) >= 0.999
