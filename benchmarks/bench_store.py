"""Engineering benchmark: ResultStore read/write throughput.

Not a paper artefact — this times the segment-backed store against the
legacy JSON-per-cell layout on identical synthetic campaigns, so store
performance regressions are visible in CI the same way simulator
throughput regressions are.  The populate/read operations come from
the same module as ``python -m repro bench --store``
(:mod:`repro.harness.storebench`), so the CLI's JSON report and these
pytest-benchmark numbers always measure the same thing.

Cell count defaults to 1000; ``REPRO_STORE_BENCH_CELLS`` overrides it
(CI smoke keeps it small, perf investigations raise it).
"""

import os
import shutil

import pytest

from repro.harness.store import LegacyResultStore, ResultStore
from repro.harness.storebench import (
    run_store_bench,
    synthetic_key,
    synthetic_result,
)

CELLS = int(os.environ.get("REPRO_STORE_BENCH_CELLS", "1000"))
BACKENDS = ("legacy", "segment")


def populate(root, backend, count=CELLS):
    writer = (LegacyResultStore if backend == "legacy" else ResultStore)(root)
    keys = []
    for index in range(count):
        key = synthetic_key(index)
        writer.save(key, synthetic_result(index), {"index": index})
        keys.append(key)
    if hasattr(writer, "close"):
        writer.close()
    return keys


@pytest.fixture(scope="module", params=BACKENDS)
def populated(request, tmp_path_factory):
    """(backend, root, keys): one pre-built store per backend."""
    backend = request.param
    root = tmp_path_factory.mktemp("store-bench-" + backend)
    keys = populate(root, backend)
    yield backend, root, keys
    shutil.rmtree(root, ignore_errors=True)


def test_store_write_throughput(benchmark, tmp_path):
    """Segment-store save() throughput (fresh store per round)."""
    counter = [0]

    def run():
        counter[0] += 1
        root = tmp_path / ("round-%d" % counter[0])
        populate(root, "segment", count=200)

    benchmark(run)


def test_store_load_many(benchmark, populated):
    """Bulk point-lookup of every key (the analysis hot path)."""
    backend, root, keys = populated

    def run():
        store = ResultStore(root)
        loaded = store.load_many(keys)
        store.close()
        return loaded

    loaded = benchmark(run)
    assert len(loaded) == len(keys)


def test_store_iter_results_columnar(benchmark, populated):
    """Full-store scan touching only hot statistics (``metrics`` path)."""
    backend, root, keys = populated

    def run():
        store = ResultStore(root)
        total = 0
        for row in store.iter_results(fields=("stats",)):
            total += row.stats.cycles + row.stats.committed_instructions
        store.close()
        return total

    assert benchmark(run) > 0


def test_store_keys_listing(benchmark, populated):
    """keys()/len() — index-only on segments, directory scan on legacy."""
    backend, root, keys = populated

    def run():
        store = ResultStore(root)
        listed = store.keys()
        store.close()
        return listed

    assert sorted(benchmark(run)) == sorted(keys)


def test_store_bench_report_speedups():
    """The aggregate CLI report (``python -m repro bench --store``) at a
    smoke-sized cell count; asserts the headline speedups are sane."""
    report = run_store_bench(cell_counts=(200,))
    ratios = report["speedup"]["200"]
    assert ratios["load_many"] > 1.0
    assert ratios["iter_results"] > 1.0
    assert ratios["keys"] > 1.0
