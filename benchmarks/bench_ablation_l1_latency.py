"""Ablation (Section 9.5): idealised 1-cycle L1s understate losses."""

from repro.harness.experiments import experiment_ablation_l1_latency

from benchmarks.conftest import record_report


def test_l1_latency_ablation(benchmark, runner, results_dir):
    report = benchmark.pedantic(
        experiment_ablation_l1_latency, args=(runner,), rounds=1, iterations=1
    )
    record_report(report, results_dir)
    data = report.data
    # Faster L1 -> higher baseline IPC.
    assert data[1]["baseline_ipc"] >= data[4]["baseline_ipc"]
