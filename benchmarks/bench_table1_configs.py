"""Table 1: the four BOOM configurations and their baseline IPC."""

from repro.harness.experiments import experiment_table1

from benchmarks.conftest import record_report


def test_table1_baseline_ipc(benchmark, runner, results_dir):
    report = benchmark.pedantic(
        experiment_table1, args=(runner,), rounds=1, iterations=1
    )
    record_report(report, results_dir)
    ipcs = [report.data[c] for c in ("small", "medium", "large", "mega")]
    # The paper's Table 1 shape: IPC grows monotonically with width,
    # with a substantial Small-to-Mega spread (the paper's is 2.76x;
    # short smoke-scale runs compress it somewhat).
    assert ipcs == sorted(ipcs)
    assert 1.6 < ipcs[3] / ipcs[0] < 4.0
