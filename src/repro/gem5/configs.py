"""Simulator-style configurations from the original scheme papers.

Table 2 of the paper lists the shared gem5 parameters (TAGE-class
predictor, stride prefetchers); the footnotes of Table 5 note that the
STT row uses the STT paper's configuration [58] and the NDA row uses
the NDA paper's [55].  The defining difference Section 9.5 calls out
is memory idealism — "earlier works have evaluated STT with a single
cycle latency for the L1 data cache, which is 3-4 cycles faster than
the latest Intel processors".
"""

from repro.memsys.hierarchy import MemConfig
from repro.pipeline.config import CoreConfig

#: The STT paper's gem5 core: wide, deep, and with a 1-cycle L1 —
#: lands near the BOOM Mega's baseline IPC (Table 5: 1.12 vs 1.09).
GEM5_STT_CONFIG = CoreConfig(
    name="gem5-stt",
    width=4,
    issue_width=4,
    mem_width=2,
    rob_entries=224,
    iq_entries=64,
    ldq_entries=48,
    stq_entries=48,
    num_phys_regs=180,
    max_branches=24,
    frontend_depth=3,
    redirect_penalty=1,
    branch_predictor="tage",
    mem=MemConfig(
        l1_latency=1,   # the Section 9.5 complaint
        l2_latency=10,
        dram_latency=70,
    ),
)

#: The NDA paper's gem5 core: narrower window, realistic-but-fast
#: memory — lands between BOOM Medium and Large (Table 5: 0.79).
GEM5_NDA_CONFIG = CoreConfig(
    name="gem5-nda",
    width=3,
    issue_width=3,
    mem_width=1,
    rob_entries=128,
    iq_entries=32,
    ldq_entries=24,
    stq_entries=24,
    num_phys_regs=110,
    max_branches=16,
    frontend_depth=4,
    redirect_penalty=2,
    branch_predictor="tage",
    mem=MemConfig(
        l1_latency=2,
        l2_latency=12,
        dram_latency=80,
    ),
)


def gem5_config(which):
    """Return the gem5-proxy configuration for ``stt`` or ``nda``."""
    which = which.lower()
    if which in ("stt", "gem5-stt"):
        return GEM5_STT_CONFIG
    if which in ("nda", "gem5-nda"):
        return GEM5_NDA_CONFIG
    raise ValueError("unknown gem5 config %r (stt or nda)" % which)
