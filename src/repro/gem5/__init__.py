"""gem5-proxy evaluation (Section 8.6 / 9.5).

The paper re-implements NDA and STT-Rename in gem5, using the original
papers' configurations, and finds that simulator-era configurations —
notably a 1-cycle L1 — yield optimistic results.  Our substitute runs
the *same* core engine under "simulator-style" configurations derived
from the original STT and NDA papers: idealised memory latencies, a
large window, and a generous front end.  That reproduces both Table 5
placements (STT's config lands near Mega's baseline IPC; NDA's config
between Medium and Large) and the Section 9.5 moral: the configuration,
not the scheme, drives much of the reported loss.
"""

from repro.gem5.configs import (
    GEM5_NDA_CONFIG,
    GEM5_STT_CONFIG,
    gem5_config,
)
from repro.gem5.model import Gem5Model, gem5_ipc_loss

__all__ = [
    "GEM5_STT_CONFIG",
    "GEM5_NDA_CONFIG",
    "gem5_config",
    "Gem5Model",
    "gem5_ipc_loss",
]
