"""Thin runner for the gem5-proxy configurations.

The paper could not evaluate ``namd``, ``parest``, and ``povray`` on
gem5, so Table 5's comparisons exclude them; :data:`GEM5_EXCLUDED`
mirrors that and the harness applies the same exclusion to the BOOM
side when comparing (Section 7's note).
"""

from repro.analysis.ipc import suite_mean_ipc
from repro.core.factory import make_scheme
from repro.gem5.configs import gem5_config
from repro.pipeline.core import OoOCore
from repro.workloads.spec2017 import spec_suite

#: Benchmarks the paper could not run on gem5 (Section 7).
GEM5_EXCLUDED = ("508.namd", "510.parest", "511.povray")


class Gem5Model:
    """Runs the SPEC proxy suite under a gem5-proxy configuration."""

    def __init__(self, which, scale=1.0, seed=2017):
        self.config = gem5_config(which)
        self.scale = scale
        self.seed = seed

    def benchmarks(self):
        from repro.workloads.characteristics import SPEC_BENCHMARKS

        return [name for name in SPEC_BENCHMARKS if name not in GEM5_EXCLUDED]

    def run_suite(self, scheme_name):
        """Run all (non-excluded) benchmarks; returns {name: result}."""
        results = {}
        for name, program in spec_suite(
            scale=self.scale, seed=self.seed, benchmarks=self.benchmarks()
        ):
            core = OoOCore(
                program, config=self.config, scheme=make_scheme(scheme_name),
                warm_caches=True,
            )
            results[name] = core.run()
        return results


def gem5_ipc_loss(which, scheme_name, scale=1.0, seed=2017):
    """(baseline_ipc, loss_fraction) for one scheme on a gem5 config."""
    model = Gem5Model(which, scale=scale, seed=seed)
    baseline = model.run_suite("baseline")
    scheme = model.run_suite(scheme_name)
    base_ipc = suite_mean_ipc(list(baseline.values()))
    scheme_ipc = suite_mean_ipc(list(scheme.values()))
    if base_ipc == 0:
        return 0.0, 0.0
    return base_ipc, 1.0 - scheme_ipc / base_ipc
