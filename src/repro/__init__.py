"""ShadowBinding reproduction.

A cycle-level reproduction of *ShadowBinding: Realizing Effective
Microarchitectures for In-Core Secure Speculation Schemes* (MICRO
2025): an out-of-order core model with pluggable secure-speculation
microarchitectures (STT-Rename, STT-Issue, NDA-Permissive), a
synthesis-substitute timing/area/power model, synthetic SPEC CPU2017
proxy workloads, and a benchmark harness regenerating every table and
figure of the paper's evaluation.

Quickstart::

    from repro import OoOCore, MEGA, assemble, make_scheme

    program = assemble('''
        li   t0, 5
        li   t1, 0
    loop:
        addi t1, t1, 7
        addi t0, t0, -1
        bne  t0, zero, loop
        sw   t1, 0(zero)
        halt
    ''')
    core = OoOCore(program, config=MEGA, scheme=make_scheme("stt-issue"))
    result = core.run()
    print(result.stats.summary())
"""

from repro.isa import Instruction, Opcode, Program, assemble, run_reference
from repro.pipeline import (
    CoreConfig,
    LARGE,
    MEDIUM,
    MEGA,
    OoOCore,
    SMALL,
    SimulationResult,
    boom_config,
    named_configs,
)
from repro.core import (
    BaselineScheme,
    DelayOnMissScheme,
    FenceScheme,
    NDAScheme,
    SCHEME_NAMES,
    STTIssueScheme,
    STTRenameScheme,
    ShadowTracker,
    make_scheme,
)

__version__ = "1.1.0"

__all__ = [
    "Instruction",
    "Opcode",
    "Program",
    "assemble",
    "run_reference",
    "CoreConfig",
    "SMALL",
    "MEDIUM",
    "LARGE",
    "MEGA",
    "boom_config",
    "named_configs",
    "OoOCore",
    "SimulationResult",
    "BaselineScheme",
    "STTRenameScheme",
    "STTIssueScheme",
    "NDAScheme",
    "FenceScheme",
    "DelayOnMissScheme",
    "ShadowTracker",
    "SCHEME_NAMES",
    "make_scheme",
    "__version__",
]
