"""Branch direction predictors and branch target buffer.

The default core configuration uses gshare, a solid stand-in for
BOOM's TAGE-class predictor at the model's scale; a small TAGE is
provided for the gem5-proxy configuration (the paper's Table 2 lists
``MultiperspectivePerceptronTAGE64KB``).

All predictors share one interface:

* ``predict(pc) -> bool`` — predicted direction, speculatively updates
  any internal history.
* ``update(pc, taken) -> None`` — training at branch retirement.
* ``snapshot() / restore(state)`` — save and restore speculative
  history around checkpoints (global-history predictors corrupt their
  history on wrong paths; checkpoints undo that).
"""


class AlwaysTakenPredictor:
    """Degenerate predictor: predicts every conditional branch taken."""

    def predict(self, pc):
        return True

    def update(self, pc, taken):
        pass

    def snapshot(self):
        return None

    def restore(self, state):
        pass

    def push_history(self, taken):
        pass


class BimodalPredictor:
    """Per-PC two-bit saturating counters."""

    def __init__(self, table_bits=10):
        self.table_size = 1 << table_bits
        self.counters = [2] * self.table_size  # weakly taken

    def _index(self, pc):
        return pc % self.table_size

    def predict(self, pc):
        return self.counters[self._index(pc)] >= 2

    def update(self, pc, taken):
        index = self._index(pc)
        count = self.counters[index]
        if taken:
            self.counters[index] = min(count + 1, 3)
        else:
            self.counters[index] = max(count - 1, 0)

    def snapshot(self):
        return None

    def restore(self, state):
        pass

    def push_history(self, taken):
        pass


class GSharePredictor:
    """Global-history XOR-indexed two-bit counters."""

    def __init__(self, table_bits=12, history_bits=12):
        self.table_size = 1 << table_bits
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.counters = [2] * self.table_size
        self.ghr = 0

    def _index(self, pc):
        return (pc ^ self.ghr) % self.table_size

    def predict(self, pc):
        taken = self.counters[self._index(pc)] >= 2
        # Speculative history update; repaired via snapshot/restore on
        # a misprediction.
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & self.history_mask
        return taken

    def update(self, pc, taken):
        # Training uses retired outcomes; the index should ideally use
        # the history at prediction time, which the core passes back via
        # update_with_history when it has it.
        index = self._index(pc)
        self._train(index, taken)

    def update_with_history(self, pc, taken, history):
        index = (pc ^ history) % self.table_size
        self._train(index, taken)

    def _train(self, index, taken):
        count = self.counters[index]
        if taken:
            self.counters[index] = min(count + 1, 3)
        else:
            self.counters[index] = max(count - 1, 0)

    def snapshot(self):
        return self.ghr

    def restore(self, state):
        if state is not None:
            self.ghr = state

    def push_history(self, taken):
        """Shift one resolved outcome into the history (mispredict repair)."""
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & self.history_mask


class _TageTable:
    __slots__ = ("entries", "size", "history_bits", "tag_bits")

    def __init__(self, size, history_bits, tag_bits=8):
        self.size = size
        self.history_bits = history_bits
        self.tag_bits = tag_bits
        # entry: [tag, counter(0..7), useful(0..3)]
        self.entries = [[0, 4, 0] for _ in range(size)]


class TagePredictor:
    """A small TAGE: base bimodal plus geometrically-longer tagged tables.

    Matches the spirit of the paper's gem5 configuration without the
    full multiperspective machinery; accuracy on the synthetic workloads
    is close to gshare but with better long-history capture.
    """

    def __init__(self, base_bits=10, num_tables=4, table_bits=9, min_history=4):
        self.base = BimodalPredictor(table_bits=base_bits)
        self.tables = []
        history = min_history
        for _ in range(num_tables):
            self.tables.append(_TageTable(1 << table_bits, history))
            history *= 2
        self.max_history = history
        self.ghr = 0
        self.history_mask = (1 << (self.max_history + 1)) - 1

    def _fold(self, value, bits, out_bits):
        value &= (1 << bits) - 1
        folded = 0
        while value:
            folded ^= value & ((1 << out_bits) - 1)
            value >>= out_bits
        return folded

    def _index(self, table, pc):
        folded = self._fold(self.ghr, table.history_bits, 10)
        return (pc ^ folded ^ (pc >> 4)) % table.size

    def _tag(self, table, pc):
        folded = self._fold(self.ghr, table.history_bits, table.tag_bits)
        return (pc ^ (folded << 1)) & ((1 << table.tag_bits) - 1)

    def _lookup(self, pc):
        """Return (provider_table_index or None, entry_index, prediction)."""
        provider = None
        provider_index = 0
        for table_index in range(len(self.tables) - 1, -1, -1):
            table = self.tables[table_index]
            index = self._index(table, pc)
            entry = table.entries[index]
            if entry[0] == self._tag(table, pc):
                provider = table_index
                provider_index = index
                break
        if provider is None:
            return None, 0, self.base.predict(pc)
        prediction = self.tables[provider].entries[provider_index][1] >= 4
        return provider, provider_index, prediction

    def predict(self, pc):
        _, _, taken = self._lookup(pc)
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & self.history_mask
        return taken

    def update(self, pc, taken):
        provider, entry_index, prediction = self._lookup(pc)
        if provider is None:
            self.base.update(pc, taken)
        else:
            entry = self.tables[provider].entries[entry_index]
            entry[1] = min(entry[1] + 1, 7) if taken else max(entry[1] - 1, 0)
            if prediction == taken:
                entry[2] = min(entry[2] + 1, 3)
        # Allocate a longer-history entry on a misprediction.
        if prediction != taken:
            start = 0 if provider is None else provider + 1
            for table_index in range(start, len(self.tables)):
                table = self.tables[table_index]
                index = self._index(table, pc)
                entry = table.entries[index]
                if entry[2] == 0:
                    entry[0] = self._tag(table, pc)
                    entry[1] = 4 if taken else 3
                    entry[2] = 0
                    break
                entry[2] -= 1

    def snapshot(self):
        return self.ghr

    def restore(self, state):
        if state is not None:
            self.ghr = state

    def push_history(self, taken):
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & self.history_mask


class TournamentPredictor:
    """Chooser between a bimodal and a gshare component."""

    def __init__(self, table_bits=11, history_bits=11):
        self.bimodal = BimodalPredictor(table_bits=table_bits)
        self.gshare = GSharePredictor(table_bits=table_bits, history_bits=history_bits)
        self.chooser = [2] * (1 << table_bits)

    def predict(self, pc):
        local = self.bimodal.predict(pc)
        global_ = self.gshare.predict(pc)
        use_global = self.chooser[pc % len(self.chooser)] >= 2
        return global_ if use_global else local

    def update(self, pc, taken):
        local = self.bimodal.counters[self.bimodal._index(pc)] >= 2
        global_ = self.gshare.counters[self.gshare._index(pc)] >= 2
        index = pc % len(self.chooser)
        if local != global_:
            if global_ == taken:
                self.chooser[index] = min(self.chooser[index] + 1, 3)
            else:
                self.chooser[index] = max(self.chooser[index] - 1, 0)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)

    def snapshot(self):
        return self.gshare.snapshot()

    def restore(self, state):
        self.gshare.restore(state)

    def push_history(self, taken):
        self.gshare.push_history(taken)


class BranchTargetBuffer:
    """Direct-mapped BTB for indirect-jump (jalr) target prediction."""

    def __init__(self, entries=256):
        self.size = entries
        self._tags = [None] * entries
        self._targets = [0] * entries

    def predict(self, pc):
        """Return the predicted target, or None on a BTB miss."""
        index = pc % self.size
        if self._tags[index] == pc:
            return self._targets[index]
        return None

    def update(self, pc, target):
        index = pc % self.size
        self._tags[index] = pc
        self._targets[index] = target


_PREDICTORS = {
    "always-taken": AlwaysTakenPredictor,
    "bimodal": BimodalPredictor,
    "gshare": GSharePredictor,
    "tage": TagePredictor,
    "tournament": TournamentPredictor,
}


def make_predictor(name, **kwargs):
    """Build a predictor by name: always-taken/bimodal/gshare/tage/tournament."""
    try:
        cls = _PREDICTORS[name]
    except KeyError:
        raise ValueError(
            "unknown predictor %r (choose from %s)" % (name, sorted(_PREDICTORS))
        )
    return cls(**kwargs)
