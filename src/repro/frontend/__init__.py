"""Front-end components: branch direction predictors, BTB, fetch helpers."""

from repro.frontend.branch_predictor import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchTargetBuffer,
    GSharePredictor,
    TagePredictor,
    TournamentPredictor,
    make_predictor,
)

__all__ = [
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "BranchTargetBuffer",
    "GSharePredictor",
    "TagePredictor",
    "TournamentPredictor",
    "make_predictor",
]
