"""Static instruction definitions and classification metadata.

An :class:`Instruction` is a *static* record: opcode plus register and
immediate operands.  Dynamic state (sequence numbers, renamed physical
registers, readiness) lives in the pipeline's micro-op wrapper, never
here, so one :class:`Instruction` can be executed many times (loops).

Classification metadata drives both the functional interpreter and the
secure-speculation schemes:

* ``is_transmitter`` marks instructions whose *execution* has an
  operand-dependent observable effect: loads and stores (the address
  selects a cache set) and branches/indirect jumps (the outcome steers
  the front end).  STT delays tainted transmitters; plain arithmetic is
  free to execute on tainted data.
* ``latency`` is the functional-unit latency in cycles used by the
  execute stage.
"""

import enum
from dataclasses import dataclass, field
from functools import cached_property


class Opcode(enum.Enum):
    """Operation codes of the model ISA."""

    # Register-register ALU.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLT = "slt"
    SLTU = "sltu"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    # Register-immediate ALU.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    LI = "li"
    # Multiply / divide.
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # Memory.
    LW = "lw"
    SW = "sw"
    # Control flow.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    JAL = "jal"
    JALR = "jalr"
    # Misc.
    NOP = "nop"
    HALT = "halt"

    def __repr__(self):
        return "Opcode.%s" % self.name


@dataclass(frozen=True)
class OpcodeInfo:
    """Classification and timing metadata for one opcode."""

    #: Functional-unit latency in cycles (agen latency for memory ops;
    #: the cache adds its own access latency on top).
    latency: int
    #: Reads rs1 / rs2; writes rd.
    reads_rs1: bool = False
    reads_rs2: bool = False
    writes_rd: bool = False
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_jump: bool = False
    is_mul: bool = False
    is_div: bool = False
    #: Execution has an operand-dependent observable effect.
    is_transmitter: bool = False

    @cached_property
    def is_plain_alu(self):
        """Register-writing, non-control, non-memory: the opcode class
        whose outcome is a pure function of its register sources — the
        batch-replay candidates (see :mod:`repro.pipeline.core`).
        Covers the ALU/shift/compare group, ``li``, and mul/div/rem;
        excludes loads (live memory decides), jumps (control
        resolution), and everything that writes no register.

        ``cached_property`` stores into the instance ``__dict__``,
        bypassing the frozen-dataclass ``__setattr__`` — the same trick
        :attr:`Instruction.info` uses.
        """
        return self.writes_rd and not (self.is_load or self.is_jump)

    @cached_property
    def casts_c_shadow(self):
        """Needs a branch checkpoint (casts a control shadow): every
        conditional branch plus the one predicted-indirect jump (JALR —
        the only jump that reads a register).  Cached for the rename
        dispatcher's per-entry admission gate."""
        return self.is_branch or (self.is_jump and self.reads_rs1)


_ALU = OpcodeInfo(latency=1, reads_rs1=True, reads_rs2=True, writes_rd=True)
_ALUI = OpcodeInfo(latency=1, reads_rs1=True, writes_rd=True)
_BR = OpcodeInfo(
    latency=1, reads_rs1=True, reads_rs2=True, is_branch=True, is_transmitter=True
)

OPCODE_INFO = {
    Opcode.ADD: _ALU,
    Opcode.SUB: _ALU,
    Opcode.AND: _ALU,
    Opcode.OR: _ALU,
    Opcode.XOR: _ALU,
    Opcode.SLT: _ALU,
    Opcode.SLTU: _ALU,
    Opcode.SLL: _ALU,
    Opcode.SRL: _ALU,
    Opcode.SRA: _ALU,
    Opcode.ADDI: _ALUI,
    Opcode.ANDI: _ALUI,
    Opcode.ORI: _ALUI,
    Opcode.XORI: _ALUI,
    Opcode.SLTI: _ALUI,
    Opcode.SLLI: _ALUI,
    Opcode.SRLI: _ALUI,
    Opcode.SRAI: _ALUI,
    Opcode.LI: OpcodeInfo(latency=1, writes_rd=True),
    Opcode.MUL: OpcodeInfo(
        latency=3, reads_rs1=True, reads_rs2=True, writes_rd=True, is_mul=True
    ),
    Opcode.DIV: OpcodeInfo(
        latency=12, reads_rs1=True, reads_rs2=True, writes_rd=True, is_div=True
    ),
    Opcode.REM: OpcodeInfo(
        latency=12, reads_rs1=True, reads_rs2=True, writes_rd=True, is_div=True
    ),
    Opcode.LW: OpcodeInfo(
        latency=1, reads_rs1=True, writes_rd=True, is_load=True, is_transmitter=True
    ),
    Opcode.SW: OpcodeInfo(
        latency=1, reads_rs1=True, reads_rs2=True, is_store=True, is_transmitter=True
    ),
    Opcode.BEQ: _BR,
    Opcode.BNE: _BR,
    Opcode.BLT: _BR,
    Opcode.BGE: _BR,
    Opcode.BLTU: _BR,
    Opcode.BGEU: _BR,
    Opcode.JAL: OpcodeInfo(latency=1, writes_rd=True, is_jump=True),
    Opcode.JALR: OpcodeInfo(
        latency=1, reads_rs1=True, writes_rd=True, is_jump=True, is_transmitter=True
    ),
    Opcode.NOP: OpcodeInfo(latency=1),
    Opcode.HALT: OpcodeInfo(latency=1),
}


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Fields not used by an opcode are left at their defaults; e.g. a
    ``beq`` has no destination register and stores its branch target in
    ``imm`` (an absolute instruction index).

    Memory addressing is ``rs1 + imm`` for both ``lw`` and ``sw``; the
    store reads its data from ``rs2``.
    """

    op: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    #: Optional label for diagnostics / trace output.
    label: str = field(default="", compare=False)

    @cached_property
    def info(self):
        """The :class:`OpcodeInfo` classification record.

        Cached per instance: static instructions are re-executed every
        loop iteration, and the enum-keyed table lookup shows up in the
        simulator's hot paths (``cached_property`` stores straight into
        ``__dict__``, bypassing the frozen-dataclass ``__setattr__``).
        """
        return OPCODE_INFO[self.op]

    @property
    def is_load(self):
        return self.info.is_load

    @property
    def is_store(self):
        return self.info.is_store

    @property
    def is_branch(self):
        return self.info.is_branch

    @property
    def is_jump(self):
        return self.info.is_jump

    @property
    def is_control(self):
        """Branch or jump — anything that can redirect the front end."""
        info = self.info
        return info.is_branch or info.is_jump

    @property
    def is_transmitter(self):
        return self.info.is_transmitter

    @cached_property
    def writes_rd(self):
        return self.info.writes_rd and self.rd != 0

    @cached_property
    def source_regs(self):
        """Architectural source register indices actually read.

        Reads of ``x0`` are omitted: the zero register is never renamed
        and can never carry a taint.  Cached tuple: static instructions
        are renamed once per loop iteration and every scheme's rename
        hook walks the sources, so rebuilding the container per call
        shows up in the simulator profile.
        """
        info = self.info
        srcs = ()
        if info.reads_rs1 and self.rs1 != 0:
            srcs += (self.rs1,)
        if info.reads_rs2 and self.rs2 != 0:
            srcs += (self.rs2,)
        return srcs

    @cached_property
    def address_source_regs(self):
        """Source registers feeding address generation (memory ops only)."""
        if (self.is_load or self.is_store) and self.rs1 != 0:
            return (self.rs1,)
        return ()

    @cached_property
    def data_source_regs(self):
        """Source registers feeding the store-data half of a store."""
        if self.is_store and self.rs2 != 0:
            return (self.rs2,)
        return ()

    def __str__(self):
        op = self.op.value
        if self.op in (Opcode.NOP, Opcode.HALT):
            return op
        if self.op == Opcode.LI:
            return "%s x%d, %d" % (op, self.rd, self.imm)
        if self.is_load:
            return "%s x%d, %d(x%d)" % (op, self.rd, self.imm, self.rs1)
        if self.is_store:
            return "%s x%d, %d(x%d)" % (op, self.rs2, self.imm, self.rs1)
        if self.is_branch:
            target = self.label or str(self.imm)
            return "%s x%d, x%d, %s" % (op, self.rs1, self.rs2, target)
        if self.op == Opcode.JAL:
            target = self.label or str(self.imm)
            return "%s x%d, %s" % (op, self.rd, target)
        if self.op == Opcode.JALR:
            return "%s x%d, x%d, %d" % (op, self.rd, self.rs1, self.imm)
        if self.info.reads_rs2:
            return "%s x%d, x%d, x%d" % (op, self.rd, self.rs1, self.rs2)
        return "%s x%d, x%d, %d" % (op, self.rd, self.rs1, self.imm)
