"""Model instruction set used by the ShadowBinding reproduction.

The ISA is a small RISC-V-flavoured integer instruction set:

* 32 architectural integer registers ``x0``..``x31`` with ``x0``
  hardwired to zero.
* Word-addressed memory (one 64-bit value per address).
* ALU, multiply/divide, load/store, conditional branch, and jump
  instructions.

Three layers live here:

* :mod:`repro.isa.instructions` — the static :class:`Instruction` record
  and :class:`Opcode` enumeration plus classification helpers
  (loads, stores, branches, transmitters).
* :mod:`repro.isa.assembler` — a tiny text assembler so examples and
  attack gadgets can be written as readable programs.
* :mod:`repro.isa.interp` — an in-order functional interpreter used as
  the architectural-correctness oracle for the out-of-order core.
"""

from repro.isa.instructions import (
    Instruction,
    Opcode,
    OPCODE_INFO,
    OpcodeInfo,
)
from repro.isa.registers import (
    NUM_ARCH_REGS,
    REG_NAMES,
    ZERO_REG,
    reg_index,
    reg_name,
)
from repro.isa.program import Program
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.interp import ArchState, ReferenceInterpreter, run_reference

__all__ = [
    "Instruction",
    "Opcode",
    "OPCODE_INFO",
    "OpcodeInfo",
    "NUM_ARCH_REGS",
    "REG_NAMES",
    "ZERO_REG",
    "reg_index",
    "reg_name",
    "Program",
    "AssemblerError",
    "assemble",
    "ArchState",
    "ReferenceInterpreter",
    "run_reference",
]
