"""Canonical dynamic traces: functional-execute once, replay everywhere.

A :class:`DynamicTrace` is the architectural execution of one program,
recorded once by driving the :class:`~repro.isa.interp.ReferenceInterpreter`
to completion and kept in compact array-of-columns form — one entry per
retired instruction (the *trace step*):

``pcs``
    the PC of each step (``pcs[0] == program.entry``);
``next_pcs``
    the architectural successor PC — for branches this encodes the
    outcome's target, for JALR the computed indirect target, for the
    final HALT step the halt PC itself;
``results``
    the value written to the destination register (0 for steps that
    write nothing, including ``rd == x0``);
``addrs``
    the effective (unsigned-64) address of each load/store step
    (0 elsewhere);
``taken``
    one byte per step: 1 iff the step is a taken conditional branch
    (recorded explicitly — ``next_pc`` alone is ambiguous when a
    branch's target equals its fall-through);
``l1_hit``
    one byte per step: 1 iff a load's access hit a default-geometry L1
    warmed in *commit order*.  **Advisory only** — the pipeline's live
    :class:`~repro.memsys.hierarchy.MemoryHierarchy` stays authoritative
    for timing, because wrong-path accesses and the prefetcher make the
    commit-order classification unusable cycle-accurately.  The column
    exists for trace consumers (analysis tooling, future schedulers)
    that want a microarchitecture-independent locality signal.

The timing pipeline (:mod:`repro.pipeline.core`) consumes the trace via
per-uop ``trace_index`` positions maintained by the fetch unit; the
replay contract — when a recorded outcome may substitute for in-line
evaluation, and the purity tracking that guards it — is documented in
the core's module docstring.

Traces are content-addressed and disk-persisted next to generated
programs; see :mod:`repro.workloads.program_cache`.
"""

import base64

from repro.isa.instructions import Opcode
from repro.isa.interp import ReferenceInterpreter, branch_taken, to_unsigned64
from repro.memsys.hierarchy import MemConfig, MemoryHierarchy

#: Bumped whenever the recorded column semantics change; participates in
#: the trace cache key (see workloads.program_cache.trace_key) so stale
#: on-disk traces can never be replayed by a newer pipeline.
TRACE_FORMAT_VERSION = "trace-v1"


class DynamicTrace:
    """Column-oriented record of one program's architectural execution."""

    __slots__ = ("program_name", "program_len", "entry",
                 "pcs", "next_pcs", "results", "addrs", "taken", "l1_hit")

    def __init__(self, program_name, program_len, entry,
                 pcs, next_pcs, results, addrs, taken, l1_hit):
        self.program_name = program_name
        self.program_len = program_len
        self.entry = entry
        self.pcs = pcs
        self.next_pcs = next_pcs
        self.results = results
        self.addrs = addrs
        self.taken = taken
        self.l1_hit = l1_hit

    def __len__(self):
        return len(self.pcs)

    def check_program(self, program):
        """Light sanity check that ``program`` is the recorded one.

        Raises ``ValueError`` on mismatch.  Deliberately cheap (entry,
        length, first PC): real identity comes from the content-addressed
        cache key; this only catches grossly-wrong wiring (e.g. a trace
        attached to a different workload).
        """
        if (self.entry != program.entry
                or self.program_len != len(program)
                or (self.pcs and self.pcs[0] != program.entry)):
            raise ValueError(
                "trace/program mismatch: trace recorded for %r "
                "(entry %d, %d instructions), got %r (entry %d, %d)"
                % (self.program_name, self.entry, self.program_len,
                   program.name, program.entry, len(program)))

    # -- serialisation ----------------------------------------------------

    def to_payload(self):
        """JSON-serialisable form (see :meth:`from_payload`)."""
        return {
            "format_version": TRACE_FORMAT_VERSION,
            "program_name": self.program_name,
            "program_len": self.program_len,
            "entry": self.entry,
            "pcs": list(self.pcs),
            "next_pcs": list(self.next_pcs),
            "results": list(self.results),
            "addrs": list(self.addrs),
            "taken": base64.b64encode(bytes(self.taken)).decode("ascii"),
            "l1_hit": base64.b64encode(bytes(self.l1_hit)).decode("ascii"),
        }

    @classmethod
    def from_payload(cls, payload):
        """Rebuild a trace from :meth:`to_payload` output.

        Raises ``ValueError`` for a different format version, so stale
        persisted traces fall back to re-recording.
        """
        if payload.get("format_version") != TRACE_FORMAT_VERSION:
            raise ValueError(
                "trace format %r != %r"
                % (payload.get("format_version"), TRACE_FORMAT_VERSION))
        trace = cls(
            program_name=payload["program_name"],
            program_len=payload["program_len"],
            entry=payload["entry"],
            pcs=list(payload["pcs"]),
            next_pcs=list(payload["next_pcs"]),
            results=list(payload["results"]),
            addrs=list(payload["addrs"]),
            taken=bytearray(base64.b64decode(payload["taken"])),
            l1_hit=bytearray(base64.b64decode(payload["l1_hit"])),
        )
        n = len(trace.pcs)
        if not all(len(col) == n for col in (
                trace.next_pcs, trace.results, trace.addrs,
                trace.taken, trace.l1_hit)):
            raise ValueError("trace columns have inconsistent lengths")
        return trace


def record_trace(program, mem_config=None, max_steps=5_000_000):
    """Record ``program``'s canonical dynamic trace (one full run).

    Drives the reference interpreter to halt, capturing each step's
    outcome *before and after* the step: branch directions and memory
    addresses come from the pre-step register state (exactly what the
    pipeline computes at resolve/agen time), results and successor PCs
    from the post-step state.  The advisory L1 column classifies each
    load against a ``mem_config`` (default geometry) hierarchy accessed
    in commit order — stores access it too (write, no prefetcher
    training), mirroring the pipeline's commit-time accesses.
    """
    interp = ReferenceInterpreter(program)
    state = interp.state
    hierarchy = MemoryHierarchy(mem_config or MemConfig())
    l1_latency = hierarchy.config.l1_latency
    read_reg = state.read_reg

    pcs = []
    next_pcs = []
    results = []
    addrs = []
    taken = bytearray()
    l1_hit = bytearray()

    steps = 0
    while not state.halted:
        if steps >= max_steps:
            raise RuntimeError(
                "program %r did not halt within %d steps while recording"
                % (program.name, max_steps))
        pc = state.pc
        instr = program[pc]
        op = instr.op
        info = instr.info

        t = 0
        hit = 0
        addr = 0
        if info.is_load:
            addr = to_unsigned64(read_reg(instr.rs1) + instr.imm)
            latency, _level = hierarchy.access(addr, pc=pc)
            hit = 1 if latency <= l1_latency else 0
        elif info.is_store:
            addr = to_unsigned64(read_reg(instr.rs1) + instr.imm)
            hierarchy.access(addr, pc=pc, is_write=True,
                             train_prefetcher=False)
        elif info.is_branch:
            t = 1 if branch_taken(op, read_reg(instr.rs1),
                                  read_reg(instr.rs2)) else 0

        interp.step()

        result = 0
        if info.writes_rd and instr.rd != 0:
            result = state.regs[instr.rd]
        pcs.append(pc)
        # The final HALT step records its own PC (the interpreter keeps
        # the PC parked there); the replayer never advances past it.
        next_pcs.append(state.pc)
        results.append(result)
        addrs.append(addr)
        taken.append(t)
        l1_hit.append(hit)
        steps += 1

    return DynamicTrace(
        program_name=program.name,
        program_len=len(program),
        entry=program.entry,
        pcs=pcs,
        next_pcs=next_pcs,
        results=results,
        addrs=addrs,
        taken=taken,
        l1_hit=l1_hit,
    )
