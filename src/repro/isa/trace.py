"""Canonical dynamic traces: functional-execute once, replay everywhere.

A :class:`DynamicTrace` is the architectural execution of one program,
recorded once by driving the :class:`~repro.isa.interp.ReferenceInterpreter`
to completion and kept in *typed* column form — one entry per retired
instruction (the *trace step*).  Since trace-v2 the columns are dense
machine-word arrays (:mod:`array`) and packed byte strings, not Python
lists: the timing replayer streams through them like a gem5-style
trace-driven model, payloads serialise as base64 over the raw buffers
(zero intermediate copies on little-endian hosts), and a recorded
trace for a million-instruction workload is eight bytes per column
entry instead of a boxed ``int`` each.

``pcs`` — ``array('Q')``
    the PC of each step (``pcs[0] == program.entry``);
``next_pcs`` — ``array('Q')``
    the architectural successor PC — for branches this encodes the
    outcome's target, for JALR the computed indirect target, for the
    final HALT step the halt PC itself;
``results`` — ``array('q')``
    the signed-64 value written to the destination register (0 for
    steps that write nothing, including ``rd == x0``);
``addrs`` — ``array('Q')``
    the effective (unsigned-64) address of each load/store step
    (0 elsewhere);
``taken`` — ``bytes``
    one byte per step: 1 iff the step is a taken conditional branch
    (recorded explicitly — ``next_pc`` alone is ambiguous when a
    branch's target equals its fall-through);
``l1_hit`` — ``bytes``
    one byte per step: 1 iff a load's access hit a default-geometry L1
    warmed in *commit order*.  **Advisory only** — the pipeline's live
    :class:`~repro.memsys.hierarchy.MemoryHierarchy` stays authoritative
    for timing, because wrong-path accesses and the prefetcher make the
    commit-order classification unusable cycle-accurately.  The column
    exists for trace consumers (analysis tooling, future schedulers)
    that want a microarchitecture-independent locality signal.

Indexing a column yields a plain ``int`` either way, so consumers are
layout-agnostic; constructing a :class:`DynamicTrace` from list-backed
columns still works (they are coerced to the typed layout).

**Serialisation.**  :meth:`DynamicTrace.to_payload` base64-encodes each
column's raw buffer directly (arrays and bytes both speak the buffer
protocol).  Word columns are canonically *little-endian*; a big-endian
host byteswaps a scratch copy on the way out and back in, so payloads
are interchangeable across hosts and bit-identical for the same
execution.  :meth:`from_payload` validates the format version, the
declared endianness/item size, base64 integrity, column-length
agreement, and that the flag columns are strictly 0/1 — a truncated or
corrupted persisted trace raises ``ValueError`` and the disk cache
falls back to re-recording.  NumPy, when importable, accelerates the
bulk payload validation; the pure-stdlib path is mandatory and
bit-identical (``REPRO_NO_NUMPY=1`` forces it, and the test suite pins
the equivalence).

**Replay contract.**  The timing pipeline (:mod:`repro.pipeline.core`)
consumes the trace via per-uop ``trace_index`` positions maintained by
the fetch unit; the replay contract — when a recorded outcome may
substitute for in-line evaluation, the purity tracking that guards it,
and the *batch-consume* legality rules that let whole on-trace
stretches complete as one kernel step — is documented in the core's
module docstring.

Traces are content-addressed and disk-persisted next to generated
programs; see :mod:`repro.workloads.program_cache`.  The format bump to
``trace-v2`` participates in the cache key, so every ``trace-v1`` file
on disk is simply ignored and re-recorded.
"""

import base64
import binascii
import os
import sys
from array import array

from repro.isa.instructions import Opcode
from repro.isa.interp import ReferenceInterpreter, branch_taken, to_unsigned64
from repro.memsys.hierarchy import MemConfig, MemoryHierarchy

#: Bumped whenever the recorded column semantics *or storage format*
#: change; participates in the trace cache key (see
#: workloads.program_cache.trace_key) so stale on-disk traces can never
#: be replayed by a newer pipeline.  trace-v2: typed-array columns,
#: base64-over-raw-buffer payloads, little-endian canonical form.
TRACE_FORMAT_VERSION = "trace-v2"

#: Canonical byte order of serialised word columns.
_PAYLOAD_ENDIAN = "little"
_ITEMSIZE = 8

#: Optional NumPy acceleration for bulk payload validation.  ``None``
#: selects the pure-stdlib path — mandatory, bit-identical, and pinned
#: equivalent by tests (which monkeypatch this global); the
#: ``REPRO_NO_NUMPY`` environment variable forces it for whole runs.
try:
    if os.environ.get("REPRO_NO_NUMPY"):
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover - depends on environment
    _np = None

# 'q'/'Q' guarantee *at least* 8 bytes; every supported platform uses
# exactly 8, and the payload contract depends on it.
if array("q").itemsize != _ITEMSIZE:  # pragma: no cover - exotic ABI
    raise ImportError("platform array('q') is not 8 bytes; "
                      "trace serialisation unsupported")


def _as_column(values, typecode):
    """Coerce ``values`` to a typed column (no copy when already one)."""
    if isinstance(values, array) and values.typecode == typecode:
        return values
    return array(typecode, values)


def _as_flags(values):
    """Coerce a 0/1 flag column to immutable packed ``bytes``."""
    return values if isinstance(values, bytes) else bytes(values)


def _encode_words(column):
    """Base64 text over a word column's raw little-endian buffer."""
    if sys.byteorder != _PAYLOAD_ENDIAN:  # pragma: no cover - BE host
        column = array(column.typecode, column)
        column.byteswap()
    # arrays support the buffer protocol: no intermediate bytes copy.
    return base64.b64encode(column).decode("ascii")


def _decode_b64(text, what):
    try:
        return base64.b64decode(text, validate=True)
    except (binascii.Error, TypeError, ValueError) as exc:
        raise ValueError("trace column %r is not valid base64: %s"
                         % (what, exc)) from None


def _decode_words(text, typecode, what):
    raw = _decode_b64(text, what)
    if len(raw) % _ITEMSIZE:
        raise ValueError(
            "trace column %r is truncated (%d bytes, not a multiple of %d)"
            % (what, len(raw), _ITEMSIZE))
    column = array(typecode)
    column.frombytes(raw)
    if sys.byteorder != _PAYLOAD_ENDIAN:  # pragma: no cover - BE host
        column.byteswap()
    return column


def _check_flag_column(data, what):
    """Reject flag bytes outside {0, 1} (corruption that would silently
    flip replay decisions).  NumPy path and stdlib path are equivalent:
    both accept exactly the same inputs."""
    if _np is not None:
        if data and int(_np.frombuffer(data, dtype=_np.uint8).max()) > 1:
            raise ValueError("trace column %r has non-boolean bytes" % what)
    elif data and max(data) > 1:
        raise ValueError("trace column %r has non-boolean bytes" % what)


class DynamicTrace:
    """Column-oriented record of one program's architectural execution."""

    __slots__ = ("program_name", "program_len", "entry",
                 "pcs", "next_pcs", "results", "addrs", "taken", "l1_hit",
                 "_replay_view")

    def __init__(self, program_name, program_len, entry,
                 pcs, next_pcs, results, addrs, taken, l1_hit):
        self.program_name = program_name
        self.program_len = program_len
        self.entry = entry
        self.pcs = _as_column(pcs, "Q")
        self.next_pcs = _as_column(next_pcs, "Q")
        self.results = _as_column(results, "q")
        self.addrs = _as_column(addrs, "Q")
        self.taken = _as_flags(taken)
        self.l1_hit = _as_flags(l1_hit)
        self._replay_view = None

    def __len__(self):
        return len(self.pcs)

    def replay_columns(self):
        """``(next_pcs, results, addrs)`` as plain lists, memoised.

        Typed arrays are the storage format, not the replay format: a
        CPython ``array`` re-boxes a fresh ``int`` object on *every*
        subscript, and the replayer reads these three columns once or
        more per simulated uop — across every scheme of every grid
        cell sharing the trace.  Boxing each column once here (the
        flag columns stay ``bytes``: byte reads are cached small ints)
        costs O(steps) per trace per process and makes the hot reads
        ordinary list indexing; the view is built lazily so traces
        that are only stored or transported never pay for it.
        """
        view = self._replay_view
        if view is None:
            self._replay_view = view = (list(self.next_pcs),
                                        list(self.results),
                                        list(self.addrs))
        return view

    def check_program(self, program):
        """Light sanity check that ``program`` is the recorded one.

        Raises ``ValueError`` on mismatch.  Deliberately cheap (entry,
        length, first PC): real identity comes from the content-addressed
        cache key; this only catches grossly-wrong wiring (e.g. a trace
        attached to a different workload).
        """
        if (self.entry != program.entry
                or self.program_len != len(program)
                or (len(self.pcs) and self.pcs[0] != program.entry)):
            raise ValueError(
                "trace/program mismatch: trace recorded for %r "
                "(entry %d, %d instructions), got %r (entry %d, %d)"
                % (self.program_name, self.entry, self.program_len,
                   program.name, program.entry, len(program)))

    # -- serialisation ----------------------------------------------------

    def to_payload(self):
        """JSON-serialisable form (see :meth:`from_payload`).

        Word columns serialise as base64 over their raw little-endian
        buffers — zero-copy on little-endian hosts — and the payload
        records the canonical endianness and item size it was written
        with, so a reader can refuse anything it cannot bit-exactly
        reconstruct.
        """
        return {
            "format_version": TRACE_FORMAT_VERSION,
            "endian": _PAYLOAD_ENDIAN,
            "itemsize": _ITEMSIZE,
            "program_name": self.program_name,
            "program_len": self.program_len,
            "entry": self.entry,
            "pcs": _encode_words(self.pcs),
            "next_pcs": _encode_words(self.next_pcs),
            "results": _encode_words(self.results),
            "addrs": _encode_words(self.addrs),
            "taken": base64.b64encode(self.taken).decode("ascii"),
            "l1_hit": base64.b64encode(self.l1_hit).decode("ascii"),
        }

    @classmethod
    def from_payload(cls, payload):
        """Rebuild a trace from :meth:`to_payload` output.

        Raises ``ValueError`` for a different format version, a foreign
        endianness/item size, corrupt base64, truncated buffers,
        disagreeing column lengths, or non-boolean flag bytes — so any
        stale or damaged persisted trace falls back to re-recording
        instead of replaying garbage.
        """
        if payload.get("format_version") != TRACE_FORMAT_VERSION:
            raise ValueError(
                "trace format %r != %r"
                % (payload.get("format_version"), TRACE_FORMAT_VERSION))
        if payload.get("endian") != _PAYLOAD_ENDIAN:
            raise ValueError("trace payload endianness %r != %r"
                             % (payload.get("endian"), _PAYLOAD_ENDIAN))
        if payload.get("itemsize") != _ITEMSIZE:
            raise ValueError("trace payload itemsize %r != %d"
                             % (payload.get("itemsize"), _ITEMSIZE))
        taken = _decode_b64(payload["taken"], "taken")
        l1_hit = _decode_b64(payload["l1_hit"], "l1_hit")
        _check_flag_column(taken, "taken")
        _check_flag_column(l1_hit, "l1_hit")
        trace = cls(
            program_name=payload["program_name"],
            program_len=payload["program_len"],
            entry=payload["entry"],
            pcs=_decode_words(payload["pcs"], "Q", "pcs"),
            next_pcs=_decode_words(payload["next_pcs"], "Q", "next_pcs"),
            results=_decode_words(payload["results"], "q", "results"),
            addrs=_decode_words(payload["addrs"], "Q", "addrs"),
            taken=taken,
            l1_hit=l1_hit,
        )
        n = len(trace.pcs)
        if not all(len(col) == n for col in (
                trace.next_pcs, trace.results, trace.addrs,
                trace.taken, trace.l1_hit)):
            raise ValueError("trace columns have inconsistent lengths")
        return trace


#: Recorder growth quantum: columns are extended a chunk at a time and
#: written by index, so the per-step cost is four array stores instead
#: of four ``append`` dispatches (and the interpreter step dominates).
_RECORD_CHUNK = 8192


def record_trace(program, mem_config=None, max_steps=5_000_000):
    """Record ``program``'s canonical dynamic trace (one full run).

    Drives the reference interpreter to halt, capturing each step's
    outcome *before and after* the step: branch directions and memory
    addresses come from the pre-step register state (exactly what the
    pipeline computes at resolve/agen time), results and successor PCs
    from the post-step state.  The advisory L1 column classifies each
    load against a ``mem_config`` (default geometry) hierarchy accessed
    in commit order — stores access it too (write, no prefetcher
    training), mirroring the pipeline's commit-time accesses.

    The columns are recorded straight into preallocated typed buffers
    (grown in :data:`_RECORD_CHUNK` steps, trimmed once at the end), so
    recording allocates O(steps / chunk) objects rather than one boxed
    entry per retired instruction.
    """
    interp = ReferenceInterpreter(program)
    state = interp.state
    hierarchy = MemoryHierarchy(mem_config or MemConfig())
    l1_latency = hierarchy.config.l1_latency
    read_reg = state.read_reg

    zeros = array("Q", bytes(_ITEMSIZE * _RECORD_CHUNK))
    pcs = array("Q", zeros)
    next_pcs = array("Q", zeros)
    results = array("q", bytes(_ITEMSIZE * _RECORD_CHUNK))
    addrs = array("Q", zeros)
    taken = bytearray(_RECORD_CHUNK)
    l1_hit = bytearray(_RECORD_CHUNK)
    capacity = _RECORD_CHUNK

    steps = 0
    while not state.halted:
        if steps >= max_steps:
            raise RuntimeError(
                "program %r did not halt within %d steps while recording"
                % (program.name, max_steps))
        if steps == capacity:
            pcs.extend(zeros)
            next_pcs.extend(zeros)
            results.extend(array("q", bytes(_ITEMSIZE * _RECORD_CHUNK)))
            addrs.extend(zeros)
            taken.extend(bytes(_RECORD_CHUNK))
            l1_hit.extend(bytes(_RECORD_CHUNK))
            capacity += _RECORD_CHUNK
        pc = state.pc
        instr = program[pc]
        op = instr.op
        info = instr.info

        if info.is_load:
            addr = to_unsigned64(read_reg(instr.rs1) + instr.imm)
            latency, _level = hierarchy.access(addr, pc=pc)
            addrs[steps] = addr
            if latency <= l1_latency:
                l1_hit[steps] = 1
        elif info.is_store:
            addr = to_unsigned64(read_reg(instr.rs1) + instr.imm)
            hierarchy.access(addr, pc=pc, is_write=True,
                             train_prefetcher=False)
            addrs[steps] = addr
        elif info.is_branch:
            if branch_taken(op, read_reg(instr.rs1), read_reg(instr.rs2)):
                taken[steps] = 1

        interp.step()

        if info.writes_rd and instr.rd != 0:
            results[steps] = state.regs[instr.rd]
        pcs[steps] = pc
        # The final HALT step records its own PC (the interpreter keeps
        # the PC parked there); the replayer never advances past it.
        next_pcs[steps] = state.pc
        steps += 1

    return DynamicTrace(
        program_name=program.name,
        program_len=len(program),
        entry=program.entry,
        pcs=pcs[:steps],
        next_pcs=next_pcs[:steps],
        results=results[:steps],
        addrs=addrs[:steps],
        taken=bytes(taken[:steps]),
        l1_hit=bytes(l1_hit[:steps]),
    )
