"""Architectural register file definitions.

The model ISA has 32 integer registers named ``x0`` through ``x31``.
``x0`` is hardwired to zero: writes to it are discarded and reads always
return zero, exactly as in RISC-V.
"""

NUM_ARCH_REGS = 32

#: Index of the hardwired-zero register.
ZERO_REG = 0

#: Canonical register names, ``x0`` .. ``x31``.
REG_NAMES = tuple("x%d" % i for i in range(NUM_ARCH_REGS))

_NAME_TO_INDEX = {name: i for i, name in enumerate(REG_NAMES)}

# RISC-V-style ABI aliases, accepted by the assembler for readability.
_ABI_ALIASES = {
    "zero": 0,
    "ra": 1,
    "sp": 2,
    "gp": 3,
    "tp": 4,
    "t0": 5,
    "t1": 6,
    "t2": 7,
    "s0": 8,
    "fp": 8,
    "s1": 9,
    "a0": 10,
    "a1": 11,
    "a2": 12,
    "a3": 13,
    "a4": 14,
    "a5": 15,
    "a6": 16,
    "a7": 17,
    "s2": 18,
    "s3": 19,
    "s4": 20,
    "s5": 21,
    "s6": 22,
    "s7": 23,
    "s8": 24,
    "s9": 25,
    "s10": 26,
    "s11": 27,
    "t3": 28,
    "t4": 29,
    "t5": 30,
    "t6": 31,
}


def reg_index(name):
    """Translate a register name (``x7``, ``a0``, ``t3``...) to its index.

    Raises:
        KeyError: if the name is not a valid register.
    """
    name = name.strip().lower()
    if name in _NAME_TO_INDEX:
        return _NAME_TO_INDEX[name]
    if name in _ABI_ALIASES:
        return _ABI_ALIASES[name]
    raise KeyError("unknown register name: %r" % name)


def reg_name(index):
    """Return the canonical ``xN`` name for a register index."""
    if not 0 <= index < NUM_ARCH_REGS:
        raise IndexError("register index out of range: %d" % index)
    return REG_NAMES[index]
