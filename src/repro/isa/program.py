"""Program container: instructions plus initial machine state."""

from dataclasses import dataclass, field


@dataclass
class Program:
    """A runnable program for the model machine.

    Attributes:
        instructions: static instruction list; the PC is an index into it.
        initial_memory: sparse initial memory image, address -> value.
        initial_regs: initial architectural register values, reg -> value.
        name: human-readable identifier used in reports.
        entry: starting PC (instruction index).
    """

    instructions: list
    initial_memory: dict = field(default_factory=dict)
    initial_regs: dict = field(default_factory=dict)
    name: str = "program"
    entry: int = 0

    def __len__(self):
        return len(self.instructions)

    def __getitem__(self, pc):
        return self.instructions[pc]

    def validate(self):
        """Check structural sanity; raises ValueError on problems.

        Verifies branch/jump targets stay inside the program, register
        indices are in range, and the program contains a ``halt`` so the
        simulator terminates.
        """
        n = len(self.instructions)
        if n == 0:
            raise ValueError("empty program")
        if not 0 <= self.entry < n:
            raise ValueError("entry point %d outside program" % self.entry)
        has_halt = False
        for pc, instr in enumerate(self.instructions):
            for r in (instr.rd, instr.rs1, instr.rs2):
                if not 0 <= r < 32:
                    raise ValueError("pc %d: register out of range: %d" % (pc, r))
            if instr.is_branch or instr.op.value == "jal":
                if not 0 <= instr.imm < n:
                    raise ValueError(
                        "pc %d: control target %d outside program" % (pc, instr.imm)
                    )
            if instr.op.value == "halt":
                has_halt = True
        if not has_halt:
            raise ValueError("program has no halt instruction")

    def listing(self):
        """Return a printable assembly listing with PC indices."""
        lines = []
        for pc, instr in enumerate(self.instructions):
            lines.append("%4d: %s" % (pc, instr))
        return "\n".join(lines)
