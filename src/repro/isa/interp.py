"""In-order functional interpreter — the architectural oracle.

The out-of-order pipeline, with all of its renaming, speculation,
squashing, and secure-scheme delays, must produce *exactly* the same
architectural result as this trivially-correct in-order interpreter.
The integration and property-based test suites compare final register
and memory state between the two for every scheme.

All arithmetic follows 64-bit two's-complement semantics.  Division by
zero follows RISC-V: quotient is -1 and remainder is the dividend, so
no instruction can fault.
"""

from dataclasses import dataclass, field

from repro.isa.instructions import Opcode
from repro.isa.registers import NUM_ARCH_REGS

_MASK64 = (1 << 64) - 1


def to_signed64(value):
    """Wrap an int to signed 64-bit two's-complement."""
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def to_unsigned64(value):
    """Reinterpret an int as unsigned 64-bit."""
    return value & _MASK64


@dataclass
class ArchState:
    """Architectural machine state: PC, registers, memory."""

    pc: int = 0
    regs: list = field(default_factory=lambda: [0] * NUM_ARCH_REGS)
    memory: dict = field(default_factory=dict)
    halted: bool = False

    def read_reg(self, index):
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index, value):
        if index != 0:
            self.regs[index] = to_signed64(value)

    def read_mem(self, address):
        return self.memory.get(to_unsigned64(address), 0)

    def write_mem(self, address, value):
        self.memory[to_unsigned64(address)] = to_signed64(value)


def evaluate_alu(op, a, b, imm):
    """Pure ALU evaluation shared by the interpreter and the pipeline.

    ``a``/``b`` are the rs1/rs2 values; ``imm`` is the immediate.
    Returns the signed-64-bit result.  Control-flow and memory opcodes
    are not handled here.
    """
    if op is Opcode.ADD:
        return to_signed64(a + b)
    if op is Opcode.SUB:
        return to_signed64(a - b)
    if op is Opcode.AND:
        return to_signed64(a & b)
    if op is Opcode.OR:
        return to_signed64(a | b)
    if op is Opcode.XOR:
        return to_signed64(a ^ b)
    if op is Opcode.SLT:
        return 1 if a < b else 0
    if op is Opcode.SLTU:
        return 1 if to_unsigned64(a) < to_unsigned64(b) else 0
    if op is Opcode.SLL:
        return to_signed64(a << (b & 63))
    if op is Opcode.SRL:
        return to_signed64(to_unsigned64(a) >> (b & 63))
    if op is Opcode.SRA:
        return to_signed64(a >> (b & 63))
    if op is Opcode.ADDI:
        return to_signed64(a + imm)
    if op is Opcode.ANDI:
        return to_signed64(a & imm)
    if op is Opcode.ORI:
        return to_signed64(a | imm)
    if op is Opcode.XORI:
        return to_signed64(a ^ imm)
    if op is Opcode.SLTI:
        return 1 if a < imm else 0
    if op is Opcode.SLLI:
        return to_signed64(a << (imm & 63))
    if op is Opcode.SRLI:
        return to_signed64(to_unsigned64(a) >> (imm & 63))
    if op is Opcode.SRAI:
        return to_signed64(a >> (imm & 63))
    if op is Opcode.LI:
        return to_signed64(imm)
    if op is Opcode.MUL:
        return to_signed64(a * b)
    if op is Opcode.DIV:
        if b == 0:
            return -1
        quotient = abs(a) // abs(b)
        return to_signed64(-quotient if (a < 0) != (b < 0) else quotient)
    if op is Opcode.REM:
        if b == 0:
            return to_signed64(a)
        remainder = abs(a) % abs(b)
        return to_signed64(-remainder if a < 0 else remainder)
    raise ValueError("not an ALU opcode: %s" % op)


def branch_taken(op, a, b):
    """Evaluate a conditional branch's direction."""
    if op is Opcode.BEQ:
        return a == b
    if op is Opcode.BNE:
        return a != b
    if op is Opcode.BLT:
        return a < b
    if op is Opcode.BGE:
        return a >= b
    if op is Opcode.BLTU:
        return to_unsigned64(a) < to_unsigned64(b)
    if op is Opcode.BGEU:
        return to_unsigned64(a) >= to_unsigned64(b)
    raise ValueError("not a branch opcode: %s" % op)


class ReferenceInterpreter:
    """Step-at-a-time in-order execution of a :class:`Program`."""

    def __init__(self, program):
        self.program = program
        self.state = ArchState(pc=program.entry)
        for addr, value in program.initial_memory.items():
            self.state.write_mem(addr, value)
        for reg, value in program.initial_regs.items():
            self.state.write_reg(reg, value)
        self.instructions_retired = 0
        #: Addresses touched by loads, in retirement order (oracle for
        #: the attack-detection tests).
        self.load_addresses = []

    def step(self):
        """Execute one instruction; returns False once halted."""
        state = self.state
        if state.halted:
            return False
        instr = self.program[state.pc]
        op = instr.op
        next_pc = state.pc + 1

        if op is Opcode.HALT:
            state.halted = True
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.LW:
            address = to_unsigned64(state.read_reg(instr.rs1) + instr.imm)
            self.load_addresses.append(address)
            state.write_reg(instr.rd, state.read_mem(address))
        elif op is Opcode.SW:
            address = state.read_reg(instr.rs1) + instr.imm
            state.write_mem(address, state.read_reg(instr.rs2))
        elif instr.is_branch:
            if branch_taken(op, state.read_reg(instr.rs1), state.read_reg(instr.rs2)):
                next_pc = instr.imm
        elif op is Opcode.JAL:
            state.write_reg(instr.rd, state.pc + 1)
            next_pc = instr.imm
        elif op is Opcode.JALR:
            target = to_unsigned64(state.read_reg(instr.rs1) + instr.imm)
            state.write_reg(instr.rd, state.pc + 1)
            next_pc = target
        else:
            result = evaluate_alu(
                op, state.read_reg(instr.rs1), state.read_reg(instr.rs2), instr.imm
            )
            state.write_reg(instr.rd, result)

        if not state.halted and not 0 <= next_pc < len(self.program):
            raise RuntimeError(
                "pc ran off program: %d -> %d (%s)" % (state.pc, next_pc, instr)
            )
        state.pc = next_pc if not state.halted else state.pc
        self.instructions_retired += 1
        return not state.halted

    def run(self, max_steps=1_000_000):
        """Run to halt; raises RuntimeError if ``max_steps`` is exceeded."""
        steps = 0
        while self.step():
            steps += 1
            if steps > max_steps:
                raise RuntimeError(
                    "program %r did not halt within %d steps"
                    % (self.program.name, max_steps)
                )
        return self.state


def run_reference(program, max_steps=1_000_000):
    """Convenience wrapper: interpret ``program``, return the interpreter."""
    interp = ReferenceInterpreter(program)
    interp.run(max_steps=max_steps)
    return interp
