"""A small two-pass text assembler for the model ISA.

Accepted syntax, one instruction per line::

    # comment
    loop:                       ; labels end with a colon
        li   t0, 42
        addi t0, t0, -1
        lw   a0, 8(t1)          ; load from t1 + 8
        sw   a0, 0(sp)          ; store a0 to sp + 0
        beq  t0, zero, done
        jal  ra, loop
        jalr ra, t2, 0
    done:
        halt

Directives::

    .word ADDR VALUE            ; seed initial memory
    .reg  REG VALUE             ; seed an initial register value

Targets for branches and ``jal`` are labels or absolute instruction
indices.  Immediates may be decimal or ``0x`` hexadecimal.
"""

import re

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import reg_index


class AssemblerError(ValueError):
    """Raised on any parse or resolution failure, with line context."""


_MEM_OPERAND = re.compile(r"^(-?\w+)\((\w+)\)$")

_THREE_REG = {
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SLT, Opcode.SLTU, Opcode.SLL, Opcode.SRL, Opcode.SRA,
    Opcode.MUL, Opcode.DIV, Opcode.REM,
}
_TWO_REG_IMM = {
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SLTI, Opcode.SLLI, Opcode.SRLI, Opcode.SRAI,
}
_BRANCHES = {
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU,
}


def _parse_int(text, line_no):
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError("line %d: bad integer %r" % (line_no, text))


def _parse_reg(text, line_no):
    try:
        return reg_index(text)
    except KeyError:
        raise AssemblerError("line %d: bad register %r" % (line_no, text))


def _split_operands(rest):
    return [part.strip() for part in rest.split(",") if part.strip()]


def assemble(source, name="program"):
    """Assemble ``source`` text into a :class:`Program`.

    Raises:
        AssemblerError: on syntax errors or unresolved labels.
    """
    labels = {}
    pending = []  # (instr_index, label, line_no) fixups
    instructions = []
    initial_memory = {}
    initial_regs = {}

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue

        while True:
            match = re.match(r"^(\w+):\s*(.*)$", line)
            if not match:
                break
            label, line = match.group(1), match.group(2).strip()
            if label in labels:
                raise AssemblerError("line %d: duplicate label %r" % (line_no, label))
            labels[label] = len(instructions)
        if not line:
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""

        if mnemonic == ".word":
            ops = rest.split()
            if len(ops) != 2:
                raise AssemblerError("line %d: .word needs ADDR VALUE" % line_no)
            initial_memory[_parse_int(ops[0], line_no)] = _parse_int(ops[1], line_no)
            continue
        if mnemonic == ".reg":
            ops = rest.split()
            if len(ops) != 2:
                raise AssemblerError("line %d: .reg needs REG VALUE" % line_no)
            initial_regs[_parse_reg(ops[0], line_no)] = _parse_int(ops[1], line_no)
            continue

        try:
            op = Opcode(mnemonic)
        except ValueError:
            raise AssemblerError("line %d: unknown mnemonic %r" % (line_no, mnemonic))

        operands = _split_operands(rest)
        instr = _build_instruction(op, operands, line_no, labels, pending,
                                   len(instructions))
        instructions.append(instr)

    for index, label, line_no in pending:
        if label not in labels:
            raise AssemblerError("line %d: undefined label %r" % (line_no, label))
        old = instructions[index]
        instructions[index] = Instruction(
            op=old.op, rd=old.rd, rs1=old.rs1, rs2=old.rs2,
            imm=labels[label], label=label,
        )

    program = Program(
        instructions=instructions,
        initial_memory=initial_memory,
        initial_regs=initial_regs,
        name=name,
    )
    program.validate()
    return program


def _target(text, line_no, labels, pending, index):
    """Resolve a control-flow target now, or queue a fixup."""
    if re.fullmatch(r"-?\d+|0x[0-9a-fA-F]+", text):
        return int(text, 0), ""
    if text in labels:
        return labels[text], text
    pending.append((index, text, line_no))
    return 0, text


def _build_instruction(op, operands, line_no, labels, pending, index):
    def need(count):
        if len(operands) != count:
            raise AssemblerError(
                "line %d: %s expects %d operands, got %d"
                % (line_no, op.value, count, len(operands))
            )

    if op in (Opcode.NOP, Opcode.HALT):
        need(0)
        return Instruction(op=op)

    if op == Opcode.LI:
        need(2)
        return Instruction(op=op, rd=_parse_reg(operands[0], line_no),
                           imm=_parse_int(operands[1], line_no))

    if op in _THREE_REG:
        need(3)
        return Instruction(
            op=op,
            rd=_parse_reg(operands[0], line_no),
            rs1=_parse_reg(operands[1], line_no),
            rs2=_parse_reg(operands[2], line_no),
        )

    if op in _TWO_REG_IMM:
        need(3)
        return Instruction(
            op=op,
            rd=_parse_reg(operands[0], line_no),
            rs1=_parse_reg(operands[1], line_no),
            imm=_parse_int(operands[2], line_no),
        )

    if op in (Opcode.LW, Opcode.SW):
        need(2)
        match = _MEM_OPERAND.match(operands[1])
        if not match:
            raise AssemblerError(
                "line %d: memory operand must look like 8(x1), got %r"
                % (line_no, operands[1])
            )
        imm = _parse_int(match.group(1), line_no)
        base = _parse_reg(match.group(2), line_no)
        value_reg = _parse_reg(operands[0], line_no)
        if op == Opcode.LW:
            return Instruction(op=op, rd=value_reg, rs1=base, imm=imm)
        return Instruction(op=op, rs1=base, rs2=value_reg, imm=imm)

    if op in _BRANCHES:
        need(3)
        imm, label = _target(operands[2], line_no, labels, pending, index)
        return Instruction(
            op=op,
            rs1=_parse_reg(operands[0], line_no),
            rs2=_parse_reg(operands[1], line_no),
            imm=imm,
            label=label,
        )

    if op == Opcode.JAL:
        need(2)
        imm, label = _target(operands[1], line_no, labels, pending, index)
        return Instruction(op=op, rd=_parse_reg(operands[0], line_no),
                           imm=imm, label=label)

    if op == Opcode.JALR:
        need(3)
        return Instruction(
            op=op,
            rd=_parse_reg(operands[0], line_no),
            rs1=_parse_reg(operands[1], line_no),
            imm=_parse_int(operands[2], line_no),
        )

    raise AssemblerError("line %d: unhandled opcode %s" % (line_no, op.value))
