"""Memory hierarchy models: caches, prefetcher, latency pipeline.

Caches are *tag-only* latency models: data values always come from the
flat backing memory plus in-flight store queue (handled by the LSU), so
the caches only decide *how long* an access takes and *which lines are
present* — the latter is exactly the state a cache-timing covert
channel observes, which is what the security tests probe.
"""

from repro.memsys.cache import CacheModel
from repro.memsys.prefetcher import StridePrefetcher
from repro.memsys.hierarchy import MemConfig, MemoryHierarchy

__all__ = [
    "CacheModel",
    "StridePrefetcher",
    "MemConfig",
    "MemoryHierarchy",
]
