"""Two-level cache hierarchy with a backing DRAM latency model."""

from dataclasses import dataclass

from repro.memsys.cache import CacheModel
from repro.memsys.prefetcher import StridePrefetcher


@dataclass(frozen=True)
class MemConfig:
    """Geometry and latencies of the data-side memory hierarchy.

    The dataclass is frozen, so instances are hashable and compare by
    value — they participate in ``CoreConfig.to_dict()`` /
    ``fingerprint()`` and therefore in the campaign engine's
    content-addressed cache keys (every field below changes the key).

    Latencies are *additional* cycles after address generation; an L1
    hit therefore has a load-to-use latency of ``l1_latency`` cycles.
    The defaults mirror a BOOM-class configuration: a 4-cycle 32 KiB-ish
    L1, a 14-cycle L2, and ~90-cycle DRAM (the paper criticises earlier
    gem5 evaluations for using a 1-cycle L1; see Section 9.5 — our gem5
    proxy config overrides ``l1_latency`` to 1 to reproduce that).
    """

    line_words: int = 8
    l1_sets: int = 64
    l1_ways: int = 8
    l1_latency: int = 4
    l2_sets: int = 512
    l2_ways: int = 8
    l2_latency: int = 14
    dram_latency: int = 90
    prefetch_enabled: bool = True
    prefetch_table_size: int = 64
    prefetch_degree: int = 2

    def validate(self):
        if self.l1_latency <= 0 or self.l2_latency <= 0 or self.dram_latency <= 0:
            raise ValueError("latencies must be positive")
        if not self.l1_latency <= self.l2_latency <= self.dram_latency:
            raise ValueError("latencies must be monotonic L1 <= L2 <= DRAM")


class MemoryHierarchy:
    """L1D + L2 + DRAM latency model with an L1 stride prefetcher.

    ``access`` is called by the LSU once a load or store address is
    known; it returns the access latency in cycles and fills lines on
    the way (inclusive hierarchy).
    """

    def __init__(self, config=None):
        self.config = config or MemConfig()
        self.config.validate()
        cfg = self.config
        self.l1 = CacheModel(cfg.l1_sets, cfg.l1_ways, cfg.line_words, name="L1D")
        self.l2 = CacheModel(cfg.l2_sets, cfg.l2_ways, cfg.line_words, name="L2")
        self.prefetcher = (
            StridePrefetcher(
                table_size=cfg.prefetch_table_size,
                degree=cfg.prefetch_degree,
                line_words=cfg.line_words,
            )
            if cfg.prefetch_enabled
            else None
        )
        self.accesses = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.dram_accesses = 0

    def access(self, address, pc=0, is_write=False, train_prefetcher=True):
        """Perform a timed access; returns (latency_cycles, level_name).

        Fills the line into L1 (and L2) on a miss.  Trains the stride
        prefetcher with demand accesses; prefetched lines are installed
        immediately (their latency is hidden by the model, a reasonable
        idealisation for a non-blocking prefetcher).
        """
        cfg = self.config
        self.accesses += 1
        if self.prefetcher is not None and train_prefetcher and not is_write:
            for target in self.prefetcher.observe(pc, address):
                self._install(target)

        if self.l1.lookup(address):
            self.l1_hits += 1
            return cfg.l1_latency, "L1"
        if self.l2.lookup(address):
            self.l2_hits += 1
            self.l1.insert(address)
            return cfg.l2_latency, "L2"
        self.dram_accesses += 1
        self._install(address)
        return cfg.dram_latency, "DRAM"

    def _install(self, address):
        self.l2.insert(address)
        self.l1.insert(address)

    def would_hit_l1(self, address):
        """Non-mutating L1 presence probe (for hit-speculation checks)."""
        return self.l1.contains(address)

    def warm(self, addresses, level="l2"):
        """Pre-install lines into the hierarchy (measurement warmup).

        The paper warms 50M instructions before measuring each
        SimPoint; the model equivalent installs a program's initialised
        data into the L2 (or both levels) so short measurement runs are
        not dominated by cold compulsory misses.
        """
        if level not in ("l1", "l2"):
            raise ValueError("level must be l1 or l2")
        seen = set()
        for address in addresses:
            line = self.l2.line_address(address)
            if line in seen:
                continue
            seen.add(line)
            self.l2.insert(address)
            if level == "l1":
                self.l1.insert(address)

    def flush_all(self):
        """Empty both cache levels (attack setup helper)."""
        self.l1.invalidate_all()
        self.l2.invalidate_all()
        if self.prefetcher is not None:
            self.prefetcher.reset()

    def stats(self):
        """Return a dict of access counters."""
        return {
            "accesses": self.accesses,
            "l1_hits": self.l1_hits,
            "l2_hits": self.l2_hits,
            "dram_accesses": self.dram_accesses,
            "prefetches": (
                self.prefetcher.prefetches_issued if self.prefetcher else 0
            ),
        }
