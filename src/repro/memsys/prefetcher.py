"""Stride prefetcher, per the paper's gem5 configuration (Table 2)."""


class _StrideEntry:
    __slots__ = ("last_address", "stride", "confidence")

    def __init__(self, address):
        self.last_address = address
        self.stride = 0
        self.confidence = 0


class StridePrefetcher:
    """Classic per-PC stride prefetcher.

    Each load PC trains an entry with the stride between consecutive
    accesses.  Once the same stride repeats ``threshold`` times, the
    prefetcher emits ``degree`` prefetch addresses ahead of the stream.
    """

    def __init__(self, table_size=64, threshold=2, degree=2, line_words=8):
        if table_size <= 0:
            raise ValueError("table_size must be positive")
        self.table_size = table_size
        self.threshold = threshold
        self.degree = degree
        self.line_words = line_words
        self._table = {}
        self._order = []  # FIFO replacement of trained PCs
        self.prefetches_issued = 0

    def observe(self, pc, address):
        """Train on one access; return a list of addresses to prefetch."""
        entry = self._table.get(pc)
        if entry is None:
            if len(self._order) >= self.table_size:
                victim = self._order.pop(0)
                del self._table[victim]
            entry = _StrideEntry(address)
            self._table[pc] = entry
            self._order.append(pc)
            return []

        stride = address - entry.last_address
        if stride == entry.stride and stride != 0:
            entry.confidence = min(entry.confidence + 1, self.threshold + 2)
        else:
            entry.confidence = 0
            entry.stride = stride
        entry.last_address = address

        if entry.confidence < self.threshold or entry.stride == 0:
            return []
        prefetches = []
        for distance in range(1, self.degree + 1):
            target = address + entry.stride * distance
            if target >= 0:
                prefetches.append(target)
        self.prefetches_issued += len(prefetches)
        return prefetches

    def reset(self):
        self._table.clear()
        self._order.clear()
