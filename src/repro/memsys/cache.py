"""Set-associative, LRU, tag-only cache model."""


class CacheModel:
    """A set-associative cache tracking only line presence.

    Addresses are word addresses; a line holds ``line_words`` words.
    Replacement is true LRU per set.

    The model deliberately stores no data: the simulator's load values
    come from architectural memory plus store-queue forwarding.  What
    matters here is presence (hit/miss latency) — the microarchitectural
    state a cache side channel leaks.
    """

    def __init__(self, num_sets, ways, line_words=8, name="cache"):
        if num_sets <= 0 or ways <= 0 or line_words <= 0:
            raise ValueError("cache geometry must be positive")
        if num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a power of two")
        if line_words & (line_words - 1):
            raise ValueError("line_words must be a power of two")
        self.num_sets = num_sets
        self.ways = ways
        self.line_words = line_words
        self.name = name
        # Each set is an ordered list of tags, most-recent last.
        self._sets = [[] for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity_words(self):
        return self.num_sets * self.ways * self.line_words

    def _index_tag(self, address):
        line = address // self.line_words
        return line % self.num_sets, line // self.num_sets

    def lookup(self, address):
        """Access the cache; returns True on hit.  Updates LRU, counts."""
        index, tag = self._index_tag(address)
        cache_set = self._sets[index]
        if tag in cache_set:
            cache_set.remove(tag)
            cache_set.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, address):
        """Fill the line containing ``address``; returns evicted or None."""
        index, tag = self._index_tag(address)
        cache_set = self._sets[index]
        if tag in cache_set:
            cache_set.remove(tag)
            cache_set.append(tag)
            return None
        evicted = None
        if len(cache_set) >= self.ways:
            evicted_tag = cache_set.pop(0)
            evicted = (evicted_tag * self.num_sets + index) * self.line_words
            self.evictions += 1
        cache_set.append(tag)
        return evicted

    def contains(self, address):
        """Non-mutating presence probe (no LRU update, no stats)."""
        index, tag = self._index_tag(address)
        return tag in self._sets[index]

    def invalidate(self, address):
        """Remove the line containing ``address`` if present."""
        index, tag = self._index_tag(address)
        cache_set = self._sets[index]
        if tag in cache_set:
            cache_set.remove(tag)
            return True
        return False

    def invalidate_all(self):
        """Empty the cache (used by attack setups to reach a known state)."""
        self._sets = [[] for _ in range(self.num_sets)]

    def resident_lines(self):
        """Return the set of word addresses of all resident line starts."""
        lines = set()
        for index, cache_set in enumerate(self._sets):
            for tag in cache_set:
                lines.add((tag * self.num_sets + index) * self.line_words)
        return lines

    def line_address(self, address):
        """Word address of the start of the line containing ``address``."""
        return (address // self.line_words) * self.line_words
