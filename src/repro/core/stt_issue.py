"""STT-Issue: taint tracking delayed to the issue stage (Section 4.3).

The paper's novel microarchitecture.  Taints live in a *taint unit*
indexed by **physical** register.  Nothing happens at rename except
clearing the freshly-allocated destination's entry (a physical register
is always overwritten before use, which is also why no taint
checkpoints are needed — Section 4.3's stale-entry argument).

At issue-select time the taint unit computes the micro-op's YRoT from
its physical source registers (Figure 4, step 2).  If the micro-op is a
transmitter and tainted, a nop is issued instead — the slot is wasted
(step 4) — and the YRoT is back-propagated to the issue-queue entry
(step 5), masking its ready signal until an untaint broadcast arrives.

Because the taint check happens at issue against the *live* visibility
point, an instruction whose root became safe this very cycle still
executes — the one-cycle advantage over STT-Rename's masked wakeup
(Section 9.1).  Stores taint their address and data operands
independently, so partial address generation usually proceeds
untainted (Section 9.2's advantage over the unified STT-Rename store).

The untaint *broadcast* (the delayed visibility-point copy used for
ready-masking) follows the same event-scheduled catch-up protocol as
STT-Rename: the core invokes the visibility hook on changes, and the
scheme books one wake for the cycle the broadcast needs to catch up.
"""

from repro.core.plugin import SchemeBase
from repro.core.registry import SchemeSpec, SchemeTiming, register
from repro.pipeline.uop import ADDR, DATA, WHOLE
from repro.timing.area import YROT_TAG_BITS
from repro.timing.power import E_BROADCAST

import math


class STTIssueScheme(SchemeBase):
    """Speculative Taint Tracking with issue-time taint computation."""

    name = "stt-issue"
    allows_spec_hit_wakeup = True
    uses_taint_checkpoints = False
    delay_label = "stt-taint-not-cleared"

    def __init__(self):
        super().__init__()
        self._taint_unit = []
        self._broadcast_vp = -1
        self._prev_vp = -1
        self.taints_applied = 0
        self.loads_tainted = 0
        self.nops_issued = 0

    def attach(self, core):
        super().attach(core)
        self._taint_unit = [None] * core.config.num_phys_regs
        self._broadcast_vp = -1
        self._prev_vp = -1

    # -- rename ---------------------------------------------------------

    def on_rename_group(self, uops):
        """Group rename: clear the group's freshly-allocated entries.

        One pass over the physical-register taint table — order within
        the group is irrelevant here because destination registers are
        unique (the free list hands each out once), so the batched form
        is trivially identical to the per-uop hook.
        """
        taint_unit = self._taint_unit
        for uop in uops:
            prd = uop.prd
            if prd is not None:
                taint_unit[prd] = None

    def on_rename_uop(self, uop):
        # Allocation overwrites any stale taint before the register can
        # be read again — the property that makes checkpoints
        # unnecessary (Section 4.3).
        if uop.prd is not None:
            self._taint_unit[uop.prd] = None

    # -- issue -------------------------------------------------------------

    def _live_root(self, preg):
        root = self._taint_unit[preg]
        if root is None:
            return None
        if root <= self.core.vp_now and root not in self.core.d_pending:
            self._taint_unit[preg] = None
            return None
        return root

    def _yrot_for_half(self, uop, half):
        if half == ADDR or (uop.is_load and half == WHOLE):
            pregs = (uop.prs1,)
        elif half == DATA:
            pregs = (uop.prs2,)
        else:
            pregs = (uop.prs1, uop.prs2)
        roots = [self._live_root(p) for p in pregs if p is not None]
        live = [r for r in roots if r is not None]
        return max(live) if live else None

    def blocks_issue(self, uop, half):
        """Ready-mask from a back-propagated YRoT (Figure 4, step 5)."""
        if uop.is_store:
            root = uop.yrot_addr if half == ADDR else uop.yrot_data
        else:
            root = uop.yrot
        if root is None:
            return False
        return root > self._broadcast_vp or root in self.core.d_pending

    def delay_subcause(self, uop):
        # Back-propagated YRoTs only exist after a first nop-issue
        # (Figure 4, step 5), so attribution engages from that point.
        if uop.op_is_store:
            if not uop.addr_issued and self.blocks_issue(uop, ADDR):
                return self.delay_label
            if not uop.data_issued and self.blocks_issue(uop, DATA):
                return self.delay_label
            return None
        return self.delay_label if self.blocks_issue(uop, WHOLE) else None

    def on_issue(self, uop, half, cycle):
        vp_now = self.core.vp_now

        if uop.is_store and half == DATA:
            # Latching store data is unobservable: never blocked.  Its
            # taint reaches consumers via the forwarding load's own
            # taint (the forwarding load is necessarily speculative).
            return True

        yrot = self._yrot_for_half(uop, half)

        yrot_unsafe = yrot is not None and (
            yrot > vp_now or yrot in self.core.d_pending
        )
        if uop.is_transmitter and yrot_unsafe:
            # Tainted transmitter: issue a nop, waste the slot, and
            # back-propagate the YRoT to mask the entry's ready signal.
            if uop.is_store:
                uop.yrot_addr = yrot
            else:
                uop.yrot = yrot
            self.nops_issued += 1
            return False

        if uop.writes_reg and (half == WHOLE or uop.is_load):
            if uop.is_load:
                speculative = uop.seq > vp_now
                dest_root = uop.seq if speculative else None
                if speculative:
                    self.loads_tainted += 1
            else:
                dest_root = yrot
            self._taint_unit[uop.prd] = dest_root
            if dest_root is not None:
                self.taints_applied += 1
        return True

    # -- visibility phase ---------------------------------------------------

    def on_visibility_update(self, cycle):
        # Same event-scheduled broadcast catch-up as STT-Rename: one
        # wake while the one-cycle delay line still lags.
        self._broadcast_vp = self._prev_vp
        vp = self.core.vp_now
        self._prev_vp = vp
        if self._broadcast_vp != vp:
            self.core.schedule_scheme_wake(cycle + 1)

    def on_flush_all(self):
        self._taint_unit = [None] * self.core.config.num_phys_regs

    def extra_stats(self):
        return {
            "taints_applied": self.taints_applied,
            "loads_tainted": self.loads_tainted,
            "stt_issue_nops": self.nops_issued,
        }


# -- timing-model contributions (Section 4.3, Figure 4) -------------------

# Issue-path additions: taint unit + YRoT broadcast.
_TAINT_FLAT = 504.0
_TAINT_PER_ENTRY = 131.0
#: Each memory pipe is an extra untaint-broadcast source the taint
#: unit must arbitrate (bites only on the two-port Mega).
_TAINT_PER_MEM_PORT = 800.0
#: Taint-unit CAM access energy, charged on *every* issue.
_E_TAINT_LOOKUP = 0.10


def _stage_deltas(cfg):
    """The taint unit sits on the timing-sensitive issue path."""
    return {
        "issue": (
            _TAINT_FLAT
            + _TAINT_PER_ENTRY * cfg.iq_entries
            + _TAINT_PER_MEM_PORT * (cfg.mem_width - 1)
            + 20.0 * math.log2(max(2, cfg.num_phys_regs))
        ),
    }


def _area_ffs(cfg):
    """Physical-register taint table (no checkpoints)."""
    tag = YROT_TAG_BITS
    return (
        cfg.num_phys_regs * (tag + 1)   # table + valid bits
        + cfg.iq_entries * (tag + 2)    # YRoT field + ready mask
        + cfg.issue_width * 90          # taint-unit pipeline regs
    )


def _area_luts(cfg):
    return (
        cfg.issue_width * 2 * 50        # taint-unit comparators
        + cfg.num_phys_regs * 3         # table read/update muxing
        + cfg.iq_entries * 9            # broadcast compare
        + cfg.width * 40                # nop conversion / gating
    )


def _power(stats):
    """A CAM lookup per issue (useful or wasted) plus broadcasts."""
    issued = stats.committed_instructions + stats.wasted_issue_slots
    return _E_TAINT_LOOKUP * issued + E_BROADCAST * stats.committed_loads


register(SchemeSpec(
    name="stt-issue",
    factory=STTIssueScheme,
    doc="Speculative Taint Tracking, taints computed at issue"
        " (Section 4.3, the paper's novel design); flat taint-unit"
        " cost on the issue path.",
    timing=SchemeTiming(
        stage_deltas=_stage_deltas,
        area_luts=_area_luts,
        area_ffs=_area_ffs,
        power=_power,
    ),
    ipc_anchor=0.90,
))
