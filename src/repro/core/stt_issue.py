"""STT-Issue: taint tracking delayed to the issue stage (Section 4.3).

The paper's novel microarchitecture.  Taints live in a *taint unit*
indexed by **physical** register.  Nothing happens at rename except
clearing the freshly-allocated destination's entry (a physical register
is always overwritten before use, which is also why no taint
checkpoints are needed — Section 4.3's stale-entry argument).

At issue-select time the taint unit computes the micro-op's YRoT from
its physical source registers (Figure 4, step 2).  If the micro-op is a
transmitter and tainted, a nop is issued instead — the slot is wasted
(step 4) — and the YRoT is back-propagated to the issue-queue entry
(step 5), masking its ready signal until an untaint broadcast arrives.

Because the taint check happens at issue against the *live* visibility
point, an instruction whose root became safe this very cycle still
executes — the one-cycle advantage over STT-Rename's masked wakeup
(Section 9.1).  Stores taint their address and data operands
independently, so partial address generation usually proceeds
untainted (Section 9.2's advantage over the unified STT-Rename store).
"""

from repro.core.plugin import SchemeBase
from repro.pipeline.uop import ADDR, DATA, WHOLE


class STTIssueScheme(SchemeBase):
    """Speculative Taint Tracking with issue-time taint computation."""

    name = "stt-issue"
    allows_spec_hit_wakeup = True
    uses_taint_checkpoints = False

    def __init__(self):
        super().__init__()
        self._taint_unit = []
        self._broadcast_vp = -1
        self._prev_vp = -1
        self.taints_applied = 0
        self.loads_tainted = 0
        self.nops_issued = 0

    def attach(self, core):
        super().attach(core)
        self._taint_unit = [None] * core.config.num_phys_regs
        self._broadcast_vp = -1
        self._prev_vp = -1

    # -- rename ---------------------------------------------------------

    def on_rename_uop(self, uop):
        # Allocation overwrites any stale taint before the register can
        # be read again — the property that makes checkpoints
        # unnecessary (Section 4.3).
        if uop.prd is not None:
            self._taint_unit[uop.prd] = None

    # -- issue -------------------------------------------------------------

    def _live_root(self, preg):
        root = self._taint_unit[preg]
        if root is None:
            return None
        if root <= self.core.vp_now and root not in self.core.d_pending:
            self._taint_unit[preg] = None
            return None
        return root

    def _yrot_for_half(self, uop, half):
        if half == ADDR or (uop.is_load and half == WHOLE):
            pregs = (uop.prs1,)
        elif half == DATA:
            pregs = (uop.prs2,)
        else:
            pregs = (uop.prs1, uop.prs2)
        roots = [self._live_root(p) for p in pregs if p is not None]
        live = [r for r in roots if r is not None]
        return max(live) if live else None

    def blocks_issue(self, uop, half):
        """Ready-mask from a back-propagated YRoT (Figure 4, step 5)."""
        if uop.is_store:
            root = uop.yrot_addr if half == ADDR else uop.yrot_data
        else:
            root = uop.yrot
        if root is None:
            return False
        return root > self._broadcast_vp or root in self.core.d_pending

    def on_issue(self, uop, half, cycle):
        vp_now = self.core.vp_now

        if uop.is_store and half == DATA:
            # Latching store data is unobservable: never blocked.  Its
            # taint reaches consumers via the forwarding load's own
            # taint (the forwarding load is necessarily speculative).
            return True

        yrot = self._yrot_for_half(uop, half)

        yrot_unsafe = yrot is not None and (
            yrot > vp_now or yrot in self.core.d_pending
        )
        if uop.is_transmitter and yrot_unsafe:
            # Tainted transmitter: issue a nop, waste the slot, and
            # back-propagate the YRoT to mask the entry's ready signal.
            if uop.is_store:
                uop.yrot_addr = yrot
            else:
                uop.yrot = yrot
            self.nops_issued += 1
            return False

        if uop.writes_reg and (half == WHOLE or uop.is_load):
            if uop.is_load:
                speculative = uop.seq > vp_now
                dest_root = uop.seq if speculative else None
                if speculative:
                    self.loads_tainted += 1
            else:
                dest_root = yrot
            self._taint_unit[uop.prd] = dest_root
            if dest_root is not None:
                self.taints_applied += 1
        return True

    # -- per-cycle -------------------------------------------------------------

    def on_visibility_update(self, cycle):
        self._broadcast_vp = self._prev_vp
        self._prev_vp = self.core.vp_now

    def ff_quiescent(self):
        """Same broadcast-lag quiescence condition as STT-Rename."""
        vp = self.core.vp_now
        return self._broadcast_vp == vp and self._prev_vp == vp

    def on_flush_all(self):
        self._taint_unit = [None] * self.core.config.num_phys_regs

    def extra_stats(self):
        return {
            "taints_applied": self.taints_applied,
            "loads_tainted": self.loads_tainted,
            "stt_issue_nops": self.nops_issued,
        }
