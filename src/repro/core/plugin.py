"""Secure-speculation scheme plugin interface and the unsafe baseline.

A scheme is a strategy object attached to one
:class:`~repro.pipeline.core.OoOCore`.  The core calls the hooks below
at fixed pipeline points; each of the paper's microarchitectures is
expressed purely through these hooks, so the substrate stays identical
across schemes — mirroring how the RTL designs modify a common BOOM.

Hook call sites (in per-cycle order):

* ``on_visibility_update`` — after writeback, before issue: the
  visibility point may have advanced; untaint broadcasts and NDA's
  delayed broadcasts are released here.
* ``blocks_issue`` — during select, per issue-queue entry (and per
  store half): a True return masks the entry's ready signal.
* ``on_issue`` — when an entry wins selection; returning False turns
  the slot into a wasted nop (STT-Issue's tainted-transmitter replay).
* ``on_load_complete`` — when load data arrives; returning False defers
  the ready broadcast (NDA's split data-write / broadcast).
* ``on_rename_uop`` — per micro-op, in program order, during rename.
* ``on_checkpoint_create`` / ``on_checkpoint_restore`` / ``on_flush_all``
  — recovery lifecycle.
"""


def overridden_hook(scheme, name):
    """Bound hook method if ``scheme`` overrides it, else ``None``.

    The pipeline's hot paths (issue select, rename, load completion,
    the per-cycle visibility update) resolve their hooks through this
    once at construction: a scheme that keeps a default (no-op /
    permissive) implementation costs zero calls per micro-op instead of
    one dynamic dispatch each.
    """
    if getattr(type(scheme), name) is getattr(SchemeBase, name):
        return None
    return getattr(scheme, name)


class SchemeBase:
    """Default (permissive) implementations of every hook."""

    #: Scheme identifier used in reports.
    name = "baseline"
    #: Whether loads may speculatively wake consumers assuming an L1
    #: hit (NDA removes this logic; Section 5.1).
    allows_spec_hit_wakeup = True
    #: Whether rename checkpoints carry extra scheme state (area model).
    uses_taint_checkpoints = False

    def __init__(self):
        self.core = None

    def attach(self, core):
        """Bind to a core.  Called once before simulation starts."""
        self.core = core

    # -- rename ---------------------------------------------------------

    def on_rename_uop(self, uop):
        """Called for each micro-op, in program order, at rename."""

    def on_checkpoint_create(self, uop, checkpoint):
        """A branch/jalr allocated ``checkpoint`` at rename."""

    def on_checkpoint_restore(self, uop, checkpoint):
        """Misprediction recovery restored ``checkpoint``."""

    def on_flush_all(self):
        """Full pipeline flush (ordering violation at the ROB head)."""

    # -- issue ------------------------------------------------------------

    def blocks_issue(self, uop, half):
        """Mask the ready signal of ``uop`` (or a store half) if True."""
        return False

    def on_issue(self, uop, half, cycle):
        """Entry won selection.  Return False to waste the slot (nop)."""
        return True

    # -- memory -----------------------------------------------------------

    def on_load_complete(self, uop, cycle):
        """Load data arrived.  Return True to broadcast ready now."""
        return True

    # -- per-cycle ---------------------------------------------------------

    def on_visibility_update(self, cycle):
        """Visibility point possibly advanced (post-writeback)."""

    def ff_quiescent(self):
        """May the core fast-forward over idle cycles right now?

        Must return True only if repeating :meth:`on_visibility_update`
        once per skipped cycle — with an unchanged visibility point and
        no other pipeline activity — would change neither scheme state
        nor core state (registers, statistics).  The default is safe
        for any scheme that does not override
        :meth:`on_visibility_update`; schemes with per-cycle state (the
        STT broadcast lag, NDA's deferred-broadcast queue) override
        this with an exact quiescence test.
        """
        return type(self).on_visibility_update is SchemeBase.on_visibility_update

    def extra_stats(self):
        """Scheme-specific counters merged into the run statistics."""
        return {}


class BaselineScheme(SchemeBase):
    """The unsafe baseline: an unmodified out-of-order core.

    Vulnerable to Spectre-style speculative side channels by
    construction — the attack tests assert exactly that.
    """

    name = "baseline"
