"""Secure-speculation scheme plugin interface and the unsafe baseline.

A scheme is a strategy object attached to one
:class:`~repro.pipeline.core.OoOCore`.  The core calls the hooks below
at fixed pipeline points; each of the paper's microarchitectures is
expressed purely through these hooks, so the substrate stays identical
across schemes — mirroring how the RTL designs modify a common BOOM.

Hook call sites (in per-cycle order):

* ``on_visibility_update`` — the visibility phase (after writeback,
  before issue), *event-scheduled*: the core invokes it only when the
  phase-3 visibility point changed since the scheme last saw it, when a
  memory-dependence speculation resolved (``d_pending`` shrank), or
  when the scheme booked the cycle itself via
  ``core.schedule_scheme_wake(cycle)``.  Untaint broadcasts and NDA's
  delayed broadcasts are released here; a scheme that needs the next
  cycle too (budgeted release queues, the STT one-cycle broadcast lag)
  schedules a wake before returning.  Idle-cycle fast-forward is gated
  on the same three triggers, so "no pending scheme wake" *is* the
  quiescence condition — there is no polled ``ff_quiescent`` any more.
* ``blocks_issue`` — during select, per issue-queue entry (and per
  store half): a True return masks the entry's ready signal.
* ``on_issue`` — when an entry wins selection; returning False turns
  the slot into a wasted nop (STT-Issue's tainted-transmitter replay).
* ``on_load_complete`` — when load data arrives; returning False defers
  the ready broadcast (NDA's split data-write / broadcast).
* ``on_rename_group`` — once per renamed fetch group, after the RAT
  pass and downstream admission.  This is the hook the core actually
  dispatches; its default derives the group behaviour from the two
  per-uop hooks below, calling them strictly in program order — for
  each micro-op, ``on_checkpoint_create`` (if it allocated a
  checkpoint this group) then ``on_rename_uop`` — so older members'
  effects (taint-RAT writes, say) are visible to younger members and
  to their checkpoints, exactly as the one-uop-at-a-time dispatch
  behaved.  Schemes with group-wide state (STT-Rename's taint RAT)
  override it to compute the whole group in one pass.
* ``on_rename_uop`` — per micro-op, in program order, during rename
  (dispatched via ``on_rename_group``).
* ``on_checkpoint_create`` / ``on_checkpoint_restore`` / ``on_flush_all``
  — recovery lifecycle (creation dispatched via ``on_rename_group``).
"""

from repro.core.registry import SchemeSpec, register


def overridden_hook(scheme, name):
    """Bound hook method if ``scheme`` overrides it, else ``None``.

    The pipeline's hot paths (issue select, rename, load completion,
    the visibility phase) resolve their hooks through this once at
    construction: a scheme that keeps a default (no-op / permissive)
    implementation costs zero calls per micro-op instead of one dynamic
    dispatch each.
    """
    if getattr(type(scheme), name) is getattr(SchemeBase, name):
        return None
    return getattr(scheme, name)


def rename_group_hook(scheme):
    """The group-rename hook the core should dispatch, or ``None``.

    Resolution order: a scheme overriding ``on_rename_group`` gets its
    override; a scheme overriding only the per-uop hooks
    (``on_rename_uop`` / ``on_checkpoint_create``) gets the base
    class's derived group loop, which replays them in program order;
    a scheme overriding neither costs zero calls per group.
    """
    hook = overridden_hook(scheme, "on_rename_group")
    if hook is not None:
        return hook
    if (overridden_hook(scheme, "on_rename_uop") is None
            and overridden_hook(scheme, "on_checkpoint_create") is None):
        return None
    return scheme.on_rename_group


class SchemeBase:
    """Default (permissive) implementations of every hook."""

    #: Scheme identifier used in reports.
    name = "baseline"
    #: Whether loads may speculatively wake consumers assuming an L1
    #: hit (NDA removes this logic; Section 5.1).
    allows_spec_hit_wakeup = True
    #: Whether rename checkpoints carry extra scheme state (area model).
    uses_taint_checkpoints = False
    #: Attribution label for cycles/issues this scheme delays (see
    #: :mod:`repro.obs`); ``None`` for schemes that never delay.
    delay_label = None

    def __init__(self):
        self.core = None

    def attach(self, core):
        """Bind to a core.  Called once before simulation starts."""
        self.core = core

    # -- rename ---------------------------------------------------------

    def on_rename_group(self, uops):
        """One renamed fetch group, in program order.

        Default: derive the group behaviour from the per-uop hooks —
        for each micro-op, the checkpoint hook (when a checkpoint was
        allocated for it this group) and then the rename hook, exactly
        the interleaving the per-uop dispatch used.  Schemes that can
        process the group in one pass (STT-Rename's taint RAT)
        override this wholesale; their override must preserve the same
        in-order semantics.
        """
        rename = self.core.rename
        on_checkpoint = self.on_checkpoint_create
        on_uop = self.on_rename_uop
        for uop in uops:
            checkpoint_id = uop.checkpoint_id
            if checkpoint_id is not None:
                on_checkpoint(uop, rename.get_checkpoint(checkpoint_id))
            on_uop(uop)

    def on_rename_uop(self, uop):
        """Called for each micro-op, in program order, at rename."""

    def on_checkpoint_create(self, uop, checkpoint):
        """A branch/jalr allocated ``checkpoint`` at rename."""

    def on_checkpoint_restore(self, uop, checkpoint):
        """Misprediction recovery restored ``checkpoint``."""

    def on_flush_all(self):
        """Full pipeline flush (ordering violation at the ROB head)."""

    # -- issue ------------------------------------------------------------

    def blocks_issue(self, uop, half):
        """Mask the ready signal of ``uop`` (or a store half) if True."""
        return False

    def delay_subcause(self, uop):
        """Cycle-accounting probe: why this un-issued ROB-head uop is
        being withheld by the scheme, or ``None`` if it is not.

        Called only by the observability layer (never on the disabled
        path), for a not-yet-issued uop (or a store with an un-issued
        half).  Implementations must be read-only and should return
        :attr:`delay_label` exactly when the scheme is currently
        masking the uop's (remaining) issue.
        """
        return None

    def on_issue(self, uop, half, cycle):
        """Entry won selection.  Return False to waste the slot (nop)."""
        return True

    # -- memory -----------------------------------------------------------

    def on_load_complete(self, uop, cycle):
        """Load data arrived.  Return True to broadcast ready now."""
        return True

    # -- visibility phase ---------------------------------------------------

    def on_visibility_update(self, cycle):
        """Visibility phase, invoked on the triggers documented above.

        Overriders must uphold the event contract: any state that would
        have to advance on the *next* cycle as well (a budget-limited
        release queue, a broadcast delay line still lagging) must be
        booked with ``self.core.schedule_scheme_wake(cycle + 1)`` —
        un-booked cycles are skipped, both by the dispatcher and by the
        idle-cycle fast-forward.
        """

    def extra_stats(self):
        """Scheme-specific counters merged into the run statistics."""
        return {}


class BaselineScheme(SchemeBase):
    """The unsafe baseline: an unmodified out-of-order core.

    Vulnerable to Spectre-style speculative side channels by
    construction — the attack tests assert exactly that.
    """

    name = "baseline"


register(SchemeSpec(
    name="baseline",
    factory=BaselineScheme,
    doc="Unsafe out-of-order baseline: no speculation defense.",
    ipc_anchor=1.0,
))
