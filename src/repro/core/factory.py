"""Scheme construction by name — registry-backed compatibility shim.

The scheme engine's single source of truth is
:mod:`repro.core.registry`; this module keeps the historical import
surface (``SCHEME_NAMES``, :func:`make_scheme`) alive for the pipeline,
harness, CLI, and external callers.
"""

from repro.core.registry import grid_scheme_names, make_scheme

#: Canonical evaluation order of the standard campaign grid (derived
#: from the registry; the paper's four schemes first, variants after).
SCHEME_NAMES = grid_scheme_names()

__all__ = ["SCHEME_NAMES", "make_scheme"]
