"""Scheme construction by name."""

from repro.core.plugin import BaselineScheme
from repro.core.nda import NDAScheme
from repro.core.stt_issue import STTIssueScheme
from repro.core.stt_rename import STTRenameScheme

#: Canonical evaluation order used throughout the paper's tables.
SCHEME_NAMES = ("baseline", "stt-rename", "stt-issue", "nda")


def make_scheme(name, **kwargs):
    """Build a secure-speculation scheme by name.

    Names: ``baseline``, ``stt-rename``, ``stt-issue``, ``nda``.
    ``stt-rename`` accepts ``split_store_taints=True`` for the
    Section 9.2 store-taint ablation.
    """
    name = name.lower()
    if name == "baseline":
        return BaselineScheme(**kwargs)
    if name in ("stt-rename", "stt_rename"):
        return STTRenameScheme(**kwargs)
    if name in ("stt-issue", "stt_issue"):
        return STTIssueScheme(**kwargs)
    if name == "nda":
        return NDAScheme(**kwargs)
    raise ValueError(
        "unknown scheme %r (choose from %s)" % (name, ", ".join(SCHEME_NAMES))
    )
