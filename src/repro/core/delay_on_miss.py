"""Delay-on-miss: defer broadcasts only for L1-missing loads.

A selective-delay variant in the style of Sakalis et al.'s
*Efficient Invisible Speculative Execution through Selective Delay and
Value Prediction* (ISCA 2019): speculative loads that **hit** in the L1
(or forward from the store queue) broadcast immediately — on-core
effects are considered invisible — while loads that **miss** get NDA's
treatment, their ready broadcast withheld until bound-to-commit.

Relative to NDA-Permissive this recovers most of the IPC loss on
miss-light workloads (the common case: hits broadcast at full speed)
at the cost of a weaker guarantee: the hit/miss *timing* of a
speculative access remains observable, so it blocks data leakage
through dependents of missing loads but not cache-occupancy channels.
The paper's threat-model discussion is exactly about this trade; the
variant exists to place that point on the same grid.

Mechanically this is NDA with one extra gate: the LSU records whether
a load's access missed the L1 (``uop.l1_miss``, set at address
generation), and :meth:`~DelayOnMissScheme.on_load_complete` lets
non-misses through.  Everything else — the seq-ordered pending queue,
the ``mem_width`` release budget, the event-scheduled release wakes —
is inherited from :class:`~repro.core.nda.NDAScheme`.  Speculative
L1-hit wakeups stay disabled like NDA's: a missing load must never
wake consumers early, and the removed kill/replay network is the same
timing/area credit.
"""

from repro.core.nda import NDAScheme
from repro.core.registry import SchemeSpec, SchemeTiming, register
from repro.timing.area import YROT_TAG_BITS, spec_hit_luts
from repro.timing.critpath import spec_hit_bypass_delay
from repro.timing.power import E_BROADCAST


class DelayOnMissScheme(NDAScheme):
    """NDA's delayed broadcast, applied only to L1-missing loads."""

    name = "delay-on-miss"
    delay_label = "delay-on-miss-defer"

    def on_load_complete(self, uop, cycle):
        if not uop.l1_miss or self.core.is_load_safe(uop.seq):
            self.immediate += 1
            return True
        self._defer(uop)
        return False

    def extra_stats(self):
        return {
            "dom_deferred": self.deferred,
            "dom_immediate": self.immediate,
        }


# -- timing-model contributions -------------------------------------------

#: NDA's split write/broadcast mux plus the hit/miss gate.
_LSU_MUX_PS = 180.0


def _stage_deltas(cfg):
    return {
        "lsu": _LSU_MUX_PS,
        "regread_bypass": -spec_hit_bypass_delay(cfg),
    }


def _area_ffs(cfg):
    # Staging only for misses: the release queue is provisioned for the
    # outstanding-miss window rather than the whole LDQ.
    tag = YROT_TAG_BITS
    return (
        cfg.ldq_entries * (tag + 2)
        + cfg.ldq_entries * 16
        + cfg.mem_width * 64
    )


def _area_luts(cfg):
    return (
        cfg.ldq_entries * 9             # release scan
        + cfg.mem_width * 140           # split mux + hit/miss gate
        - spec_hit_luts(cfg)            # removed replay logic
    )


def _power(stats):
    return E_BROADCAST * stats.deferred_broadcasts


register(SchemeSpec(
    name="delay-on-miss",
    factory=DelayOnMissScheme,
    doc="Selective delay (Sakalis et al. style): only L1-missing"
        " speculative loads defer their broadcast; hits run at full"
        " speed.",
    timing=SchemeTiming(
        stage_deltas=_stage_deltas,
        area_luts=_area_luts,
        area_ffs=_area_ffs,
        power=_power,
    ),
    ipc_anchor=0.85,
))
