"""Speculative shadow tracking (Section 6; Ghost Loads terminology).

A *shadow* marks a source of speculation; every younger instruction is
speculative until the shadow resolves.  This work, like the paper,
tracks:

* **C-shadows** — unresolved control flow: conditional branches and
  indirect jumps, cast at rename, resolved when the branch executes.
* **D-shadows** — potential store-to-load forwarding errors: stores
  whose address is not yet known, cast at rename, resolved at address
  generation.

The *visibility point* is the oldest active shadow; instructions older
than it are bound-to-commit (non-speculative).  Shadows resolve in any
order but the visibility point only advances monotonically within one
speculation epoch (squashes can remove younger shadows).
"""

C_SHADOW = "C"
D_SHADOW = "D"


class ShadowTracker:
    """Active speculation shadows and the visibility point."""

    def __init__(self):
        # seq -> shadow kind.  Small (bounded by in-flight branches +
        # stores), so min() scans are cheap.
        self._active = {}
        self._vp_cache = None
        self._vp_dirty = True
        self.shadows_cast = 0
        self.shadows_resolved = 0

    def cast(self, seq, kind):
        """Register a new shadow for the instruction with ``seq``."""
        self._active[seq] = kind
        self._vp_dirty = True
        self.shadows_cast += 1

    def resolve(self, seq):
        """Resolve a shadow (branch executed / store address known)."""
        if seq in self._active:
            del self._active[seq]
            self._vp_dirty = True
            self.shadows_resolved += 1

    def squash_younger(self, seq):
        """Drop shadows cast by squashed instructions (younger than seq)."""
        active = self._active
        if not active:
            return
        stale = [s for s in active if s > seq]
        if stale:
            for s in stale:
                del active[s]
            self._vp_dirty = True

    def clear(self):
        """Full-pipeline flush: no in-flight instructions, no shadows."""
        if self._active:
            self._active.clear()
            self._vp_dirty = True

    def visibility_point(self):
        """Sequence number of the oldest active shadow, or None.

        ``None`` means no speculation is in flight: everything renamed
        so far is bound-to-commit.
        """
        if self._vp_dirty:
            self._vp_cache = min(self._active) if self._active else None
            self._vp_dirty = False
        return self._vp_cache

    def is_safe(self, seq):
        """True if the instruction with ``seq`` is bound-to-commit.

        An instruction is safe when no *older* shadow is active.  A
        shadow source is itself safe with respect to its own shadow.
        """
        vp = self.visibility_point()
        return vp is None or seq <= vp

    def active_count(self):
        return len(self._active)

    def active_shadows(self):
        """Snapshot of (seq, kind) pairs, oldest first (for debugging)."""
        return sorted(self._active.items())


def root_is_safe(root, vp):
    """Shared YRoT-safety predicate against a visibility point value.

    ``root`` is a load sequence number or None (untainted); ``vp`` is a
    visibility point (oldest active shadow seq) or None (no shadows).
    A taint root is safe once the root load is bound-to-commit.
    """
    return root is None or vp is None or root <= vp
