"""Self-describing speculation-scheme registry.

One :class:`SchemeSpec` per scheme is the *single* place a scheme's
identity lives: its canonical name, constructor, kwargs schema,
membership in the standard campaign grid, one-line description, and its
timing-model parameters (area / power / critical-path contributions).
Everything else derives from here —

* ``repro.core.factory.SCHEME_NAMES`` and :func:`make_scheme` (the
  construction seam used by the pipeline, the campaign engine, and the
  cluster wire format);
* ``repro.harness.experiments.SCHEMES`` (the secure schemes evaluated
  in every table/figure);
* the ``python -m repro`` CLI's ``--scheme``/``--schemes`` choices and
  the ``schemes`` listing subcommand;
* :func:`repro.timing.area.estimate_area`,
  :func:`repro.timing.power.estimate_power`, and
  :meth:`repro.timing.critpath.CriticalPathModel.delays_for_scheme`,
  which apply each spec's :class:`SchemeTiming` contributions on top of
  the baseline substrate models.

Adding a scheme is therefore a one-file change: write the scheme
module (strategy class + a ``register(SchemeSpec(...))`` call carrying
its timing parameters) and list the module in :data:`SCHEME_MODULES`.
See :mod:`repro.core.fence` for the smallest complete example.

Scheme modules import this module; this module imports scheme modules
only lazily (inside :func:`_ensure_loaded`), so there is no circular
import at module-body time.
"""

import importlib
from dataclasses import dataclass, field


def _no_stage_deltas(config):
    """Baseline timing: no per-stage delay contributions."""
    return {}


def _no_area(config):
    """Baseline area: no LUT/FF contributions."""
    return 0.0


def _no_power(stats):
    """Baseline power: no extra dynamic energy."""
    return 0.0


@dataclass(frozen=True)
class KwargSpec:
    """Schema entry for one scheme constructor keyword argument."""

    type: type
    default: object
    doc: str = ""


@dataclass(frozen=True)
class SchemeTiming:
    """A scheme's contributions to the synthesis-substitute models.

    All callables take the structural configuration record (the same
    ``CoreConfig`` the IPC simulator uses) except ``power``, which takes
    a run's :class:`~repro.pipeline.stats.SimStats`:

    * ``stage_deltas(config)`` — picoseconds added to (or, negative,
      removed from) named pipeline stages; applied on top of
      :meth:`~repro.timing.critpath.CriticalPathModel.baseline_delays`.
    * ``area_luts(config)`` / ``area_ffs(config)`` — combinational-term
      and state-bit proxies added to the baseline census (negative
      values model removed logic).
    * ``power(stats)`` — extra dynamic energy for one run, in the
      same arbitrary units as :mod:`repro.timing.power`'s event terms.
    """

    stage_deltas: callable = _no_stage_deltas
    area_luts: callable = _no_area
    area_ffs: callable = _no_area
    power: callable = _no_power


@dataclass(frozen=True)
class SchemeSpec:
    """Registry entry: everything the stack needs to know of a scheme."""

    #: Canonical name (lower-case, dash-separated).  Underscored
    #: spellings are accepted as aliases everywhere.
    name: str
    #: Strategy class; ``factory(**kwargs)`` builds an instance.
    factory: type
    #: One-line description (CLI listings, docs).
    doc: str = ""
    #: Constructor keyword schema: kwarg name -> :class:`KwargSpec`.
    kwargs: dict = field(default_factory=dict)
    #: Member of the standard campaign grid (``SCHEME_NAMES``)?
    grid: bool = True
    #: Timing-model parameters.
    timing: SchemeTiming = field(default_factory=SchemeTiming)
    #: Behavioural generation of the scheme's model, exchanged in the
    #: cluster handshake: a coordinator refuses workers whose version
    #: for any shared scheme differs, so one host running stale scheme
    #: code can never poison a distributed campaign with results the
    #: content-addressed keys would wrongly trust.  Bump on any change
    #: that alters simulated behaviour (not on pure refactors).
    wire_version: int = 1
    #: Paper anchor: the scheme's suite-mean IPC normalized to baseline
    #: on the Mega configuration (Figure 6's arithmetic mean; ``None``
    #: for schemes the paper does not plot).  Approximate by nature —
    #: consumed for *relative ordering* validation (the campaign smoke
    #: test asserts measured cells respect the anchors' ordering), not
    #: as a point target.
    ipc_anchor: float = None


#: Modules registering scheme specs, in canonical evaluation order
#: (baseline first, then the paper's schemes, then later variants).
#: This is the registry's loading manifest — the one list to extend
#: when a new scheme module lands.
SCHEME_MODULES = (
    "repro.core.plugin",
    "repro.core.stt_rename",
    "repro.core.stt_issue",
    "repro.core.nda",
    "repro.core.fence",
    "repro.core.delay_on_miss",
)

_SPECS = {}
_LOADED = False


def register(spec):
    """Register (or idempotently re-register) one scheme spec."""
    if not isinstance(spec, SchemeSpec):
        raise TypeError("register() takes a SchemeSpec")
    _SPECS[spec.name] = spec
    return spec


def _ensure_loaded():
    global _LOADED
    if not _LOADED:
        for module in SCHEME_MODULES:
            importlib.import_module(module)
        _LOADED = True


def canonical_name(name):
    """Canonical spelling of a scheme name (underscores -> dashes).

    Pure string normalisation — no registry lookup — so it is usable
    as an ``argparse`` ``type=`` callable ahead of ``choices``
    validation.
    """
    return str(name).strip().lower().replace("_", "-")


def get_spec(name):
    """Spec for ``name`` (aliases accepted); raises ValueError if unknown."""
    _ensure_loaded()
    spec = _SPECS.get(canonical_name(name))
    if spec is None:
        raise ValueError(
            "unknown scheme %r (choose from %s)"
            % (name, ", ".join(scheme_names()))
        )
    return spec


def iter_specs():
    """All registered specs, in canonical evaluation order."""
    _ensure_loaded()
    return tuple(_SPECS.values())


def scheme_names(grid_only=False):
    """Registered scheme names, in canonical evaluation order."""
    _ensure_loaded()
    return tuple(
        spec.name for spec in _SPECS.values()
        if spec.grid or not grid_only
    )


def grid_scheme_names():
    """Schemes belonging to the standard campaign grid."""
    return scheme_names(grid_only=True)


def scheme_wire_versions():
    """``{name: wire_version}`` for every registered scheme.

    The cluster handshake payload: a worker sends its map in ``hello``
    and the coordinator refuses the connection unless the worker's
    version matches for every scheme the coordinator itself knows
    (extra schemes on the worker side are harmless — the coordinator
    never asks for them).
    """
    _ensure_loaded()
    return {spec.name: spec.wire_version for spec in _SPECS.values()}


def secure_scheme_names():
    """Grid schemes excluding the unsafe baseline — the table columns."""
    return tuple(n for n in grid_scheme_names() if n != "baseline")


def make_scheme(name, **kwargs):
    """Build a secure-speculation scheme by name.

    Keyword arguments are validated against the spec's kwargs schema:
    unknown names and wrong types raise ``TypeError`` before the
    constructor runs, so a typo'ed campaign fails fast instead of
    simulating the default configuration under the intended key.
    """
    spec = get_spec(name)
    schema = spec.kwargs
    for key, value in kwargs.items():
        entry = schema.get(key)
        if entry is None:
            raise TypeError(
                "scheme %r takes no kwarg %r (schema: %s)"
                % (spec.name, key, ", ".join(sorted(schema)) or "none")
            )
        if not isinstance(value, entry.type):
            raise TypeError(
                "scheme %r kwarg %r expects %s, got %r"
                % (spec.name, key, entry.type.__name__, value)
            )
    return spec.factory(**kwargs)
