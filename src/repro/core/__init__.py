"""The paper's primary contribution: in-core secure speculation schemes.

This package is a *speculation-scheme engine*: pluggable strategies
over the out-of-order substrate in :mod:`repro.pipeline`, described by
a self-describing registry and driven by the kernel's event machinery.

Scheme contract (see :class:`~repro.core.plugin.SchemeBase` for the
full hook list):

* **Issue-side policy** — ``blocks_issue`` masks ready signals,
  ``on_issue`` may waste the slot (nop), ``on_load_complete`` may
  withhold a ready broadcast.
* **Event-scheduled releases** — there is no per-cycle polling.  The
  visibility hook (``on_visibility_update``) runs only when the
  visibility point moved, a memory-dependence speculation resolved, or
  the scheme booked the cycle via
  ``core.schedule_scheme_wake(cycle)``; schemes with multi-cycle
  behaviour (NDA's budgeted release queue, STT's one-cycle broadcast
  lag) book exactly the cycles they need.  "No booked wake" is also
  the kernel's fast-forward quiescence condition, so idle windows skip
  in O(1) regardless of the active scheme.
* **Self-description** — every scheme registers a
  :class:`~repro.core.registry.SchemeSpec`: canonical name, kwargs
  schema, grid membership, doc line, and timing-model parameters
  (critical-path stage deltas, LUT/FF area contributions, power
  terms).  ``SCHEME_NAMES``, the experiment tables, the CLI choices,
  and the :mod:`repro.timing` models all derive from the registry —
  adding a scheme is one module plus one line in
  :data:`~repro.core.registry.SCHEME_MODULES`
  (:mod:`repro.core.fence` is the smallest complete example).

Registered schemes:

* :class:`~repro.core.stt_rename.STTRenameScheme` — Speculative Taint
  Tracking with taint computation during register rename (Section 4.1),
  including the same-cycle YRoT dependency chain and taint-RAT
  checkpointing (Section 4.2) and the unified-store partial-issue
  behaviour (Section 9.2).
* :class:`~repro.core.stt_issue.STTIssueScheme` — the paper's novel
  STT-Issue design (Section 4.3): tainting delayed to the issue stage,
  physical-register taint table, wasted-slot nops, and ready-mask
  back-propagation.
* :class:`~repro.core.nda.NDAScheme` — NDA-Permissive (Section 5):
  split data-write / broadcast with delayed broadcasts for speculative
  loads, no speculative L1-hit scheduling.
* :class:`~repro.core.fence.FenceScheme` — conservative delay-all
  baseline bracketing the design space from below.
* :class:`~repro.core.delay_on_miss.DelayOnMissScheme` — selective
  delay: only L1-missing speculative loads defer their broadcast.

The :class:`~repro.core.shadows.ShadowTracker` implements Section 6's
speculation tracking (C and D shadows, visibility point).
"""

from repro.core.shadows import ShadowTracker
from repro.core.plugin import BaselineScheme, SchemeBase
from repro.core.registry import (
    KwargSpec,
    SchemeSpec,
    SchemeTiming,
    get_spec,
    iter_specs,
    register,
    scheme_names,
    secure_scheme_names,
)
from repro.core.stt_rename import STTRenameScheme
from repro.core.stt_issue import STTIssueScheme
from repro.core.nda import NDAScheme
from repro.core.fence import FenceScheme
from repro.core.delay_on_miss import DelayOnMissScheme
from repro.core.factory import SCHEME_NAMES, make_scheme

__all__ = [
    "ShadowTracker",
    "SchemeBase",
    "BaselineScheme",
    "STTRenameScheme",
    "STTIssueScheme",
    "NDAScheme",
    "FenceScheme",
    "DelayOnMissScheme",
    "SchemeSpec",
    "SchemeTiming",
    "KwargSpec",
    "register",
    "get_spec",
    "iter_specs",
    "scheme_names",
    "secure_scheme_names",
    "SCHEME_NAMES",
    "make_scheme",
]
