"""The paper's primary contribution: in-core secure speculation schemes.

This package implements the three evaluated microarchitectures as
pluggable strategies over the out-of-order substrate in
:mod:`repro.pipeline`:

* :class:`~repro.core.stt_rename.STTRenameScheme` — Speculative Taint
  Tracking with taint computation during register rename (Section 4.1),
  including the same-cycle YRoT dependency chain and taint-RAT
  checkpointing (Section 4.2) and the unified-store partial-issue
  behaviour (Section 9.2).
* :class:`~repro.core.stt_issue.STTIssueScheme` — the paper's novel
  STT-Issue design (Section 4.3): tainting delayed to the issue stage,
  physical-register taint table, wasted-slot nops, and ready-mask
  back-propagation.
* :class:`~repro.core.nda.NDAScheme` — NDA-Permissive (Section 5):
  split data-write / broadcast with delayed broadcasts for speculative
  loads, no speculative L1-hit scheduling.

The :class:`~repro.core.shadows.ShadowTracker` implements Section 6's
speculation tracking (C and D shadows, visibility point).
"""

from repro.core.shadows import ShadowTracker
from repro.core.plugin import BaselineScheme, SchemeBase
from repro.core.stt_rename import STTRenameScheme
from repro.core.stt_issue import STTIssueScheme
from repro.core.nda import NDAScheme
from repro.core.factory import SCHEME_NAMES, make_scheme

__all__ = [
    "ShadowTracker",
    "SchemeBase",
    "BaselineScheme",
    "STTRenameScheme",
    "STTIssueScheme",
    "NDAScheme",
    "SCHEME_NAMES",
    "make_scheme",
]
