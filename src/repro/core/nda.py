"""NDA-Permissive: delayed broadcast for speculative loads (Section 5).

NDA decouples a load's *data write* from its *broadcast* (Figure 5):
when a speculative load completes, its value is written to the physical
register file but the ready broadcast — the signal that lets dependent
instructions issue — is withheld until the load is bound-to-commit.
Dependents simply never see the operand as ready, so no speculative
load data propagates anywhere, observable or not.

Two structural notes from the paper:

* The number of delayed broadcasts released per cycle is limited to the
  core's memory width (the broadcast bus is provisioned for the LSU's
  normal bandwidth).
* NDA's configuration removes speculative L1-hit scheduling, which the
  paper credits for NDA's baseline-or-better synthesis timing
  (``allows_spec_hit_wakeup = False``; the registered area/critpath
  contributions credit the removed logic).

Releases are *event-scheduled*: a withheld broadcast's gate (the
visibility point reaching the load, its memory-dependence speculation
resolving) only ever moves on core events, so the core invokes
:meth:`~NDAScheme.on_visibility_update` exactly when one of those
triggers fires, and the scheme books one wake per following cycle only
while a releasable load is stuck behind the per-cycle ``mem_width``
budget.  Idle windows with only un-releasable pending loads cost
nothing and fast-forward freely.

Budget-blocked drains are *batch-scheduled*: when one trigger exposes
more releasable loads than one cycle's budget (a long shadow resolving
over a pile of completed loads — the shadowed-miss regime), the scheme
partitions the whole backlog once, releases the first budget's worth,
and precomputes the remaining releases as per-cycle batches, each
carrying its own release cycle.  Subsequent wakes validate a
``(visibility point, d_version)`` stamp and, while it matches, pop the
due batch in O(budget) instead of rescanning the backlog — the
release *cadence* (budget per cycle, age order) is untouched, so
results stay byte-identical; any gate movement invalidates the stamp
and the next wake rebuilds from scratch.

The mechanism depends only on *whether* a load is speculative, never on
the loaded value, so it introduces no new leakage.
"""

from collections import deque

from repro.core.plugin import SchemeBase
from repro.core.registry import SchemeSpec, SchemeTiming, register
from repro.timing.area import YROT_TAG_BITS, spec_hit_luts
from repro.timing.critpath import spec_hit_bypass_delay
from repro.timing.power import E_BROADCAST


class NDAScheme(SchemeBase):
    """Non-speculative Data Access (permissive mode)."""

    name = "nda"
    allows_spec_hit_wakeup = False
    uses_taint_checkpoints = False
    delay_label = "nda-budget-block"

    def __init__(self):
        super().__init__()
        # Completed loads whose broadcast is withheld, kept seq-sorted.
        self._pending = []
        # Precomputed release batches: (cycle, [uop, ...]) in age order,
        # one budget's worth per cycle, valid only while _stamp matches
        # the core's (vp_now, d_version) — see the module docstring.
        self._sched = deque()
        self._stamp = None
        self.deferred = 0
        self.immediate = 0

    def attach(self, core):
        super().attach(core)
        self._pending = []
        self._sched = deque()
        self._stamp = None

    # -- memory -----------------------------------------------------------

    def on_load_complete(self, uop, cycle):
        if self.core.is_load_safe(uop.seq):
            self.immediate += 1
            return True
        self._defer(uop)
        return False

    def _defer(self, uop):
        self._pending.append(uop)
        self._pending.sort(key=lambda u: u.seq)
        self.deferred += 1
        self.core.stats.deferred_broadcasts += 1

    def delay_subcause(self, uop):
        """Observability probe: is a source's broadcast withheld?"""
        withheld = {u.prd for u in self._pending
                    if not u.killed and u.prd is not None}
        for _due, batch in self._sched:
            for u in batch:
                if not u.killed and u.prd is not None:
                    withheld.add(u.prd)
        if withheld and (uop.prs1 in withheld or uop.prs2 in withheld):
            return self.delay_label
        return None

    # -- visibility phase ---------------------------------------------------

    def on_visibility_update(self, cycle):
        """Release broadcasts for loads now bound-to-commit.

        At most ``mem_width`` broadcasts per cycle (Section 5.1), in
        age order — matching the in-order advance of the visibility
        point over the ROB.  A backlog larger than one budget is
        partitioned *once* into per-cycle batches that release on the
        stamp-validated fast path below; when nothing remains
        scheduled, the pending loads are inert until the next
        visibility or memory-dependence event and need no further
        calls.
        """
        core = self.core
        stamp = (core.vp_now, core.d_version)
        sched = self._sched
        if sched and stamp == self._stamp:
            # Fast path: no release gate moved since the schedule was
            # built, so the due batch drains as precomputed — O(budget)
            # instead of a backlog rescan.
            while sched and sched[0][0] <= cycle:
                _due, batch = sched.popleft()
                for uop in batch:
                    if not uop.killed:
                        self._release(uop, cycle)
            if sched:
                core.schedule_scheme_wake(sched[0][0])
            return
        if sched:
            # A gate moved under a live schedule: fold the unreleased
            # batches back and repartition against the new stamp.
            pending = self._pending
            for _due, batch in sched:
                pending.extend(batch)
            sched.clear()
            pending.sort(key=lambda u: u.seq)
        self._stamp = stamp
        if not self._pending:
            return
        vp = core.vp_now
        budget = core.config.mem_width
        d_pending = core.d_pending
        releasable = []
        remaining = []
        for uop in self._pending:
            if uop.killed:
                continue
            if uop.seq <= vp and uop.seq not in d_pending:
                releasable.append(uop)
            else:
                remaining.append(uop)
        self._pending = remaining
        for uop in releasable[:budget]:
            self._release(uop, cycle)
        if len(releasable) > budget:
            # One future batch per cycle, each carrying its own release
            # cycle — identical cadence and age order to releasing
            # budget-at-a-time from a rescanned backlog.
            for i in range(budget, len(releasable), budget):
                sched.append((cycle + i // budget, releasable[i:i + budget]))
            core.schedule_scheme_wake(cycle + 1)

    def _release(self, uop, cycle):
        if (uop.committed
                and self.core.rename.arch_rat[uop.instr.rd] != uop.prd):
            # The load committed and a younger writer of the same
            # architectural register has since committed too, freeing
            # this physical register — which may already belong to a
            # younger in-flight uop.  No live consumer can still name
            # it (any waiting consumer would have had to commit before
            # that younger writer, which requires this very broadcast),
            # so the withheld wake is dead: releasing it now would be a
            # use-after-free of the register.
            return
        self.core.prf.set_ready(uop.prd)
        completed_at = uop.complete_cycle if uop.complete_cycle is not None else cycle
        self.core.stats.deferred_broadcast_cycles += max(0, cycle - completed_at)

    # -- recovery ------------------------------------------------------------

    def on_checkpoint_restore(self, uop, checkpoint):
        pending = self._pending
        if self._sched:
            # Scheduled batches may hold squashed loads: fold everything
            # back and let the next wake rebuild against fresh gates.
            for _due, batch in self._sched:
                pending.extend(batch)
            self._sched.clear()
            pending.sort(key=lambda u: u.seq)
        self._stamp = None
        self._pending = [u for u in pending if not u.killed]

    def on_flush_all(self):
        """Full flush: the pipeline empties, so every surviving pending
        load is by definition bound-to-commit — release immediately so
        later consumers (renamed against the architectural RAT) do not
        wait forever on a broadcast that would otherwise never come."""
        pending = self._pending
        if self._sched:
            for _due, batch in self._sched:
                pending.extend(batch)
            self._sched.clear()
            pending.sort(key=lambda u: u.seq)
        self._stamp = None
        for uop in pending:
            if not uop.killed:
                self.core.prf.set_ready(uop.prd)
        self._pending = []

    def extra_stats(self):
        return {
            "nda_deferred": self.deferred,
            "nda_immediate": self.immediate,
        }


# -- timing-model contributions (Section 5) -------------------------------

#: Split data-write/broadcast mux in the LSU writeback path.
_LSU_MUX_PS = 150.0


def _stage_deltas(cfg):
    """Adds a small LSU mux; removes spec-hit logic from the bypass."""
    return {
        "lsu": _LSU_MUX_PS,
        "regread_bypass": -spec_hit_bypass_delay(cfg),
    }


def _area_ffs(cfg):
    """Delayed-broadcast state: per-LDQ flags + release queue."""
    tag = YROT_TAG_BITS
    return (
        cfg.ldq_entries * (tag + 2)
        # Completion metadata held until the broadcast is released
        # (Figure 5b's decoupled data-write / broadcast staging).
        + cfg.ldq_entries * 30
        + cfg.mem_width * 64
    )


def _area_luts(cfg):
    return (
        cfg.ldq_entries * 9             # release scan
        + cfg.mem_width * 120           # split write/broadcast mux
        - spec_hit_luts(cfg)            # removed replay logic
    )


def _power(stats):
    return E_BROADCAST * stats.deferred_broadcasts


register(SchemeSpec(
    name="nda",
    factory=NDAScheme,
    doc="NDA-Permissive (Section 5): delayed ready broadcasts for"
        " speculative loads; removes speculative L1-hit scheduling.",
    timing=SchemeTiming(
        stage_deltas=_stage_deltas,
        area_luts=_area_luts,
        area_ffs=_area_ffs,
        power=_power,
    ),
    ipc_anchor=0.79,
))
