"""NDA-Permissive: delayed broadcast for speculative loads (Section 5).

NDA decouples a load's *data write* from its *broadcast* (Figure 5):
when a speculative load completes, its value is written to the physical
register file but the ready broadcast — the signal that lets dependent
instructions issue — is withheld until the load is bound-to-commit.
Dependents simply never see the operand as ready, so no speculative
load data propagates anywhere, observable or not.

Two structural notes from the paper:

* The number of delayed broadcasts released per cycle is limited to the
  core's memory width (the broadcast bus is provisioned for the LSU's
  normal bandwidth).
* NDA's configuration removes speculative L1-hit scheduling, which the
  paper credits for NDA's baseline-or-better synthesis timing
  (``allows_spec_hit_wakeup = False``; the timing model credits the
  removed logic).

The mechanism depends only on *whether* a load is speculative, never on
the loaded value, so it introduces no new leakage.
"""

from repro.core.plugin import SchemeBase


class NDAScheme(SchemeBase):
    """Non-speculative Data Access (permissive mode)."""

    name = "nda"
    allows_spec_hit_wakeup = False
    uses_taint_checkpoints = False

    def __init__(self):
        super().__init__()
        # Completed loads whose broadcast is withheld, kept seq-sorted.
        self._pending = []
        self.deferred = 0
        self.immediate = 0

    def attach(self, core):
        super().attach(core)
        self._pending = []

    # -- memory -----------------------------------------------------------

    def on_load_complete(self, uop, cycle):
        if self.core.is_load_safe(uop.seq):
            self.immediate += 1
            return True
        self._pending.append(uop)
        self._pending.sort(key=lambda u: u.seq)
        self.deferred += 1
        self.core.stats.deferred_broadcasts += 1
        return False

    # -- per-cycle -------------------------------------------------------------

    def on_visibility_update(self, cycle):
        """Release broadcasts for loads now bound-to-commit.

        At most ``mem_width`` broadcasts per cycle (Section 5.1), in
        age order — matching the in-order advance of the visibility
        point over the ROB.
        """
        if not self._pending:
            return
        vp = self.core.vp_now
        budget = self.core.config.mem_width
        released = 0
        remaining = []
        d_pending = self.core.d_pending
        for uop in self._pending:
            if uop.killed:
                continue
            if released < budget and uop.seq <= vp and uop.seq not in d_pending:
                self._release(uop, cycle)
                released += 1
            else:
                remaining.append(uop)
        self._pending = remaining

    def ff_quiescent(self):
        """Idle-cycle fast-forward is legal unless a deferred broadcast
        is releasable *now*: releases are budgeted per cycle and their
        wait-time counter is attributed per release cycle, so the core
        must step through them one cycle at a time.  Un-releasable
        pending loads are inert — their release gate (visibility point,
        D-shadow set) only moves via scheduled events."""
        if not self._pending:
            return True
        vp = self.core.vp_now
        d_pending = self.core.d_pending
        for uop in self._pending:
            if uop.killed:
                continue
            if uop.seq <= vp and uop.seq not in d_pending:
                return False
        return True

    def _release(self, uop, cycle):
        self.core.prf.set_ready(uop.prd)
        completed_at = uop.complete_cycle if uop.complete_cycle is not None else cycle
        self.core.stats.deferred_broadcast_cycles += max(0, cycle - completed_at)

    # -- recovery ------------------------------------------------------------

    def on_checkpoint_restore(self, uop, checkpoint):
        self._pending = [u for u in self._pending if not u.killed]

    def on_flush_all(self):
        """Full flush: the pipeline empties, so every surviving pending
        load is by definition bound-to-commit — release immediately so
        later consumers (renamed against the architectural RAT) do not
        wait forever on a broadcast that would otherwise never come."""
        for uop in self._pending:
            if not uop.killed:
                self.core.prf.set_ready(uop.prd)
        self._pending = []

    def extra_stats(self):
        return {
            "nda_deferred": self.deferred,
            "nda_immediate": self.immediate,
        }
