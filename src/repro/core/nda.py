"""NDA-Permissive: delayed broadcast for speculative loads (Section 5).

NDA decouples a load's *data write* from its *broadcast* (Figure 5):
when a speculative load completes, its value is written to the physical
register file but the ready broadcast — the signal that lets dependent
instructions issue — is withheld until the load is bound-to-commit.
Dependents simply never see the operand as ready, so no speculative
load data propagates anywhere, observable or not.

Two structural notes from the paper:

* The number of delayed broadcasts released per cycle is limited to the
  core's memory width (the broadcast bus is provisioned for the LSU's
  normal bandwidth).
* NDA's configuration removes speculative L1-hit scheduling, which the
  paper credits for NDA's baseline-or-better synthesis timing
  (``allows_spec_hit_wakeup = False``; the registered area/critpath
  contributions credit the removed logic).

Releases are *event-scheduled*: a withheld broadcast's gate (the
visibility point reaching the load, its memory-dependence speculation
resolving) only ever moves on core events, so the core invokes
:meth:`~NDAScheme.on_visibility_update` exactly when one of those
triggers fires, and the scheme books one wake per following cycle only
while a releasable load is stuck behind the per-cycle ``mem_width``
budget.  Idle windows with only un-releasable pending loads cost
nothing and fast-forward freely.

The mechanism depends only on *whether* a load is speculative, never on
the loaded value, so it introduces no new leakage.
"""

from repro.core.plugin import SchemeBase
from repro.core.registry import SchemeSpec, SchemeTiming, register
from repro.timing.area import YROT_TAG_BITS, spec_hit_luts
from repro.timing.critpath import spec_hit_bypass_delay
from repro.timing.power import E_BROADCAST


class NDAScheme(SchemeBase):
    """Non-speculative Data Access (permissive mode)."""

    name = "nda"
    allows_spec_hit_wakeup = False
    uses_taint_checkpoints = False

    def __init__(self):
        super().__init__()
        # Completed loads whose broadcast is withheld, kept seq-sorted.
        self._pending = []
        self.deferred = 0
        self.immediate = 0

    def attach(self, core):
        super().attach(core)
        self._pending = []

    # -- memory -----------------------------------------------------------

    def on_load_complete(self, uop, cycle):
        if self.core.is_load_safe(uop.seq):
            self.immediate += 1
            return True
        self._defer(uop)
        return False

    def _defer(self, uop):
        self._pending.append(uop)
        self._pending.sort(key=lambda u: u.seq)
        self.deferred += 1
        self.core.stats.deferred_broadcasts += 1

    # -- visibility phase ---------------------------------------------------

    def on_visibility_update(self, cycle):
        """Release broadcasts for loads now bound-to-commit.

        At most ``mem_width`` broadcasts per cycle (Section 5.1), in
        age order — matching the in-order advance of the visibility
        point over the ROB.  When the budget leaves a releasable load
        behind, the next cycle is booked as a scheme wake; otherwise
        the remaining pending loads are inert until the next visibility
        or memory-dependence event and need no further calls.
        """
        if not self._pending:
            return
        vp = self.core.vp_now
        budget = self.core.config.mem_width
        released = 0
        budget_blocked = False
        remaining = []
        d_pending = self.core.d_pending
        for uop in self._pending:
            if uop.killed:
                continue
            if uop.seq <= vp and uop.seq not in d_pending:
                if released < budget:
                    self._release(uop, cycle)
                    released += 1
                    continue
                budget_blocked = True
            remaining.append(uop)
        self._pending = remaining
        if budget_blocked:
            self.core.schedule_scheme_wake(cycle + 1)

    def _release(self, uop, cycle):
        if (uop.committed
                and self.core.rename.arch_rat[uop.instr.rd] != uop.prd):
            # The load committed and a younger writer of the same
            # architectural register has since committed too, freeing
            # this physical register — which may already belong to a
            # younger in-flight uop.  No live consumer can still name
            # it (any waiting consumer would have had to commit before
            # that younger writer, which requires this very broadcast),
            # so the withheld wake is dead: releasing it now would be a
            # use-after-free of the register.
            return
        self.core.prf.set_ready(uop.prd)
        completed_at = uop.complete_cycle if uop.complete_cycle is not None else cycle
        self.core.stats.deferred_broadcast_cycles += max(0, cycle - completed_at)

    # -- recovery ------------------------------------------------------------

    def on_checkpoint_restore(self, uop, checkpoint):
        self._pending = [u for u in self._pending if not u.killed]

    def on_flush_all(self):
        """Full flush: the pipeline empties, so every surviving pending
        load is by definition bound-to-commit — release immediately so
        later consumers (renamed against the architectural RAT) do not
        wait forever on a broadcast that would otherwise never come."""
        for uop in self._pending:
            if not uop.killed:
                self.core.prf.set_ready(uop.prd)
        self._pending = []

    def extra_stats(self):
        return {
            "nda_deferred": self.deferred,
            "nda_immediate": self.immediate,
        }


# -- timing-model contributions (Section 5) -------------------------------

#: Split data-write/broadcast mux in the LSU writeback path.
_LSU_MUX_PS = 150.0


def _stage_deltas(cfg):
    """Adds a small LSU mux; removes spec-hit logic from the bypass."""
    return {
        "lsu": _LSU_MUX_PS,
        "regread_bypass": -spec_hit_bypass_delay(cfg),
    }


def _area_ffs(cfg):
    """Delayed-broadcast state: per-LDQ flags + release queue."""
    tag = YROT_TAG_BITS
    return (
        cfg.ldq_entries * (tag + 2)
        # Completion metadata held until the broadcast is released
        # (Figure 5b's decoupled data-write / broadcast staging).
        + cfg.ldq_entries * 30
        + cfg.mem_width * 64
    )


def _area_luts(cfg):
    return (
        cfg.ldq_entries * 9             # release scan
        + cfg.mem_width * 120           # split write/broadcast mux
        - spec_hit_luts(cfg)            # removed replay logic
    )


def _power(stats):
    return E_BROADCAST * stats.deferred_broadcasts


register(SchemeSpec(
    name="nda",
    factory=NDAScheme,
    doc="NDA-Permissive (Section 5): delayed ready broadcasts for"
        " speculative loads; removes speculative L1-hit scheduling.",
    timing=SchemeTiming(
        stage_deltas=_stage_deltas,
        area_luts=_area_luts,
        area_ffs=_area_ffs,
        power=_power,
    ),
    ipc_anchor=0.79,
))
