"""STT-Rename: taint tracking during register renaming (Section 4.1/4.2).

Taints live in a *taint RAT* indexed by architectural register.  A
micro-op's YRoT (youngest root of taint) is the youngest root among its
source registers' taints; renaming a group computes YRoTs strictly in
program order so same-cycle dependencies chain through the group — the
serial dependency chain of Figure 3, whose single-cycle requirement is
what costs STT-Rename timing on wide cores (the registered
``stage_deltas`` charge for that chain; this module models its
*behaviour*).

Untainting is a broadcast: when the visibility point advances past a
root, issue-queue entries observe it one cycle later (the scheme keeps
a one-cycle-delayed copy of the visibility point for ready-masking).
This is the one-cycle disadvantage versus STT-Issue of Section 9.1.
The delay line is *event-scheduled*: the core invokes
:meth:`~STTRenameScheme.on_visibility_update` when the visibility
point changes, and the scheme books exactly one catch-up wake for the
following cycle while the broadcast still lags — stable cycles cost
nothing and never block idle-cycle fast-forward.

Checkpointing (Section 4.2): every branch checkpoint carries a copy of
the taint RAT.  Restored entries may be stale — roots may have become
non-speculative since the checkpoint — which the hardware handles with
a validity sweep; the model gets the same effect by re-validating
roots against the live visibility point on every read.

The ``split_store_taints`` flag enables the Section 9.2 optimisation:
two taints per store (address and data operand) so that address
generation is not blocked by a tainted data operand.
"""

from repro.core.plugin import SchemeBase
from repro.core.registry import KwargSpec, SchemeSpec, SchemeTiming, register
from repro.isa.registers import NUM_ARCH_REGS
from repro.pipeline.uop import ADDR, DATA, WHOLE
from repro.timing.area import YROT_TAG_BITS
from repro.timing.power import E_BROADCAST


class STTRenameScheme(SchemeBase):
    """Speculative Taint Tracking with rename-time taint computation."""

    name = "stt-rename"
    allows_spec_hit_wakeup = True
    uses_taint_checkpoints = True
    delay_label = "stt-taint-not-cleared"

    def __init__(self, split_store_taints=False):
        super().__init__()
        self.split_store_taints = split_store_taints
        self._taint_rat = [None] * NUM_ARCH_REGS
        # Visibility point as last *broadcast* to the issue queue: lags
        # the live value by one cycle.  Roots are sequence numbers, so
        # -1 means "no untaint broadcast seen yet".
        self._broadcast_vp = -1
        self._prev_vp = -1
        self.taints_applied = 0
        self.loads_tainted = 0

    def attach(self, core):
        super().attach(core)
        self._taint_rat = [None] * NUM_ARCH_REGS
        self._broadcast_vp = -1
        self._prev_vp = -1

    # -- taint reads ------------------------------------------------------

    def _live_root(self, arch_reg):
        """Current taint root of an architectural register, or None.

        Roots that have become non-speculative self-invalidate (the
        RTL's checkpoint-restore validity sweep, expressed as a
        read-time check against the live visibility point).
        """
        root = self._taint_rat[arch_reg]
        if root is None:
            return None
        if root <= self.core.vp_now and root not in self.core.d_pending:
            self._taint_rat[arch_reg] = None
            return None
        return root

    @staticmethod
    def _youngest(roots):
        live = [r for r in roots if r is not None]
        return max(live) if live else None

    # -- rename hooks --------------------------------------------------------

    def on_rename_group(self, uops):
        """Group-rename taint computation: one pass over the taint RAT.

        The paper's Section 4.2 structure made explicit: YRoTs for a
        whole fetch group are computed in a single in-order sweep —
        younger members observe older members' taint writes through the
        shared taint RAT (Figure 3's serial chain), and each branch's
        checkpoint copies the taint RAT exactly mid-sweep, after older
        members' writes and before younger ones.  Behaviourally
        identical to the per-uop hooks in program order; the win is one
        dispatch and one set of hoisted lookups per *group* instead of
        per micro-op.
        """
        core = self.core
        taint_rat = self._taint_rat
        vp_now = core.vp_now
        d_pending = core.d_pending
        rename = core.rename
        shadows_vp = core.shadows.visibility_point()
        youngest = self._youngest
        for uop in uops:
            checkpoint_id = uop.checkpoint_id
            if checkpoint_id is not None:
                rename.get_checkpoint(checkpoint_id).scheme_state = (
                    list(taint_rat))
            instr = uop.instr
            if instr.is_store:
                uop.yrot_addr = self._youngest(
                    self._live_root(r) for r in instr.address_source_regs
                )
                uop.yrot_data = self._youngest(
                    self._live_root(r) for r in instr.data_source_regs
                )
                uop.yrot = youngest((uop.yrot_addr, uop.yrot_data))
                continue

            # Inlined _live_root over the sources (hot path): a root is
            # live unless it became bound-to-commit, in which case it
            # self-invalidates, exactly like the single-uop read.
            yrot = None
            for reg in instr.source_regs:
                root = taint_rat[reg]
                if root is None:
                    continue
                if root <= vp_now and root not in d_pending:
                    taint_rat[reg] = None
                    continue
                if yrot is None or root > yrot:
                    yrot = root
            uop.yrot = yrot

            if uop.writes_reg:
                if instr.is_load:
                    seq = uop.seq
                    speculative = not (shadows_vp is None
                                      or seq <= shadows_vp)
                    dest_root = seq if speculative else None
                    if speculative:
                        self.loads_tainted += 1
                else:
                    dest_root = yrot
                taint_rat[instr.rd] = dest_root
                if dest_root is not None:
                    self.taints_applied += 1

    def on_rename_uop(self, uop):
        instr = uop.instr
        if instr.is_store:
            uop.yrot_addr = self._youngest(
                self._live_root(r) for r in instr.address_source_regs
            )
            uop.yrot_data = self._youngest(
                self._live_root(r) for r in instr.data_source_regs
            )
            # Unified micro-op taint covering both operands (Section 9.2).
            uop.yrot = self._youngest((uop.yrot_addr, uop.yrot_data))
            return

        yrot = self._youngest(self._live_root(r) for r in instr.source_regs)
        uop.yrot = yrot

        if uop.writes_reg:
            if instr.is_load:
                speculative = not self.core.shadows.is_safe(uop.seq)
                dest_root = uop.seq if speculative else None
                if speculative:
                    self.loads_tainted += 1
            else:
                dest_root = yrot
            self._taint_rat[instr.rd] = dest_root
            if dest_root is not None:
                self.taints_applied += 1

    # -- checkpoints --------------------------------------------------------

    def on_checkpoint_create(self, uop, checkpoint):
        checkpoint.scheme_state = list(self._taint_rat)

    def on_checkpoint_restore(self, uop, checkpoint):
        self._taint_rat = list(checkpoint.scheme_state)

    def on_flush_all(self):
        self._taint_rat = [None] * NUM_ARCH_REGS

    # -- issue-side blocking --------------------------------------------------

    def blocks_issue(self, uop, half):
        if not uop.is_transmitter:
            return False
        if uop.is_store:
            if self.split_store_taints:
                # Split taints: only address generation is observable.
                root = uop.yrot_addr if half == ADDR else None
            else:
                root = uop.yrot
        else:
            root = uop.yrot
        if root is None:
            return False
        return root > self._broadcast_vp or root in self.core.d_pending

    def delay_subcause(self, uop):
        if uop.op_is_store:
            if not uop.addr_issued and self.blocks_issue(uop, ADDR):
                return self.delay_label
            if not uop.data_issued and self.blocks_issue(uop, DATA):
                return self.delay_label
            return None
        return self.delay_label if self.blocks_issue(uop, WHOLE) else None

    # -- visibility phase ---------------------------------------------------

    def on_visibility_update(self, cycle):
        # Promote last cycle's visibility point to "broadcast" status:
        # the issue queue observes untaints one cycle after resolution.
        # Invoked when the visibility point moves; while the broadcast
        # still lags, one catch-up wake keeps the delay line ticking —
        # the cycle after that, state is stable and needs no calls.
        self._broadcast_vp = self._prev_vp
        vp = self.core.vp_now
        self._prev_vp = vp
        if self._broadcast_vp != vp:
            self.core.schedule_scheme_wake(cycle + 1)

    def extra_stats(self):
        return {
            "taints_applied": self.taints_applied,
            "loads_tainted": self.loads_tainted,
        }


# -- timing-model contributions (Sections 4.1/4.2, Figure 3) -------------

# Rename-path additions: serial YRoT comparator+mux chain.
_CHAIN_FLAT = 1500.0   # taint-RAT access
_CHAIN_LINK = 1268.0   # serial comparator+mux per older slot
_CHAIN_PORT = 520.0    # port/wiring growth, quadratic in chain length
# Untaint broadcast loading on every issue slot.
_BCAST_FLAT = 300.0
_BCAST_PER_ENTRY = 30.0
# Per-event energies.
_E_TAINT_RENAME = 0.05   # taint RAT read/write per rename
_E_CHECKPOINT = 0.3      # taint-RAT checkpoint copy per branch


def _stage_deltas(cfg):
    """Serial YRoT chain in rename; broadcast loading in issue."""
    links = cfg.width - 1
    return {
        "rename": _CHAIN_FLAT + _CHAIN_LINK * links + _CHAIN_PORT * links * links,
        "issue": _BCAST_FLAT + _BCAST_PER_ENTRY * cfg.iq_entries,
    }


def _area_ffs(cfg):
    """Taint RAT + a full copy per checkpoint (the FF surplus)."""
    tag = YROT_TAG_BITS
    return (
        32 * tag                       # taint RAT
        + cfg.max_branches * 32 * tag  # taint-RAT checkpoints
        + cfg.iq_entries * tag         # YRoT field per entry
    )


def _area_luts(cfg):
    """Serial chain comparators/muxes + broadcast compare + gating."""
    return (
        cfg.width * (cfg.width + 1) * 30  # chain comparators/muxes
        + 32 * 7                          # taint-RAT read/update
        + cfg.iq_entries * 9              # broadcast compare
        + cfg.width * 40                  # transmitter gating
    )


def _power(stats):
    """Every rename touches the taint RAT; every branch copies it."""
    return (
        _E_TAINT_RENAME * stats.fetched_instructions
        + _E_CHECKPOINT * stats.committed_branches
        + E_BROADCAST * stats.committed_loads
    )


register(SchemeSpec(
    name="stt-rename",
    factory=STTRenameScheme,
    doc="Speculative Taint Tracking, taints computed at rename"
        " (Section 4.1); serial YRoT chain costs timing on wide cores.",
    kwargs={
        "split_store_taints": KwargSpec(
            bool, False,
            "Two taints per store (address/data) so address generation"
            " is not blocked by tainted data (Section 9.2).",
        ),
    },
    timing=SchemeTiming(
        stage_deltas=_stage_deltas,
        area_luts=_area_luts,
        area_ffs=_area_ffs,
        power=_power,
    ),
    ipc_anchor=0.89,
))
