"""Fence: the conservative delay-all baseline.

The bluntest point in the defense space (the hardware analogue of
compiling with a fence after every branch): *every* transmitter — load,
store address generation, branch, indirect jump — is held in the issue
queue until it is bound-to-commit, i.e. until no older speculation
shadow is active.  No taint tracking, no delayed broadcasts; just a
sequence-number comparison against the live visibility point in the
ready mask.  Store *data* latching stays unobservable and is never
blocked, matching the other schemes.

The scheme exists for scenario diversity: it brackets the paper's
designs from below (STT and NDA recover most of the IPC this scheme
gives up) while costing almost nothing in timing, area, or power —
which is exactly the trade the paper's Figure 1 performance story is
about.  It is also the smallest complete example of adding a scheme
through the registry: one strategy class, one ``register`` call, all
in this file (plus a line in
:data:`repro.core.registry.SCHEME_MODULES`).

Implementation notes: the scheme keeps *no* per-cycle state — it never
overrides the visibility hook, so it schedules no wakes, and idle-cycle
fast-forward is never vetoed on its account.  Blocking is purely the
``blocks_issue`` ready mask, evaluated against the live visibility
point.  Progress is guaranteed because the oldest unresolved shadow's
caster is always safe with respect to its own shadow: branches resolve
in age order, advancing the visibility point past the blocked
transmitters behind them.
"""

from repro.core.plugin import SchemeBase
from repro.core.registry import KwargSpec, SchemeSpec, SchemeTiming, register
from repro.pipeline.uop import ADDR, DATA, WHOLE


class FenceScheme(SchemeBase):
    """Delay every transmitter until it is bound-to-commit.

    With ``loads_only=True`` the fence narrows to loads: store address
    generation, branches, and indirect jumps issue freely, and only
    load execution waits for bound-to-commit.  This is the conservative
    point for a Spectre-v1-only threat model (the universal gadget's
    transmitter is the dependent *load*), trading back much of the IPC
    the full fence gives up while still closing the cache-load channel.
    """

    name = "fence"
    allows_spec_hit_wakeup = True
    uses_taint_checkpoints = False

    #: Class default; an instance constructed with ``loads_only=True``
    #: shadows it and swaps in the narrowed ready mask below (keeping
    #: the full-fence hot path free of any per-call mode check —
    #: ``blocks_issue`` runs once per blocked ready entry per cycle).
    loads_only = False
    delay_label = "fence-bound-to-commit"

    def __init__(self, loads_only=False):
        super().__init__()
        if loads_only:
            self.loads_only = True
            self.blocks_issue = self._blocks_issue_loads_only

    def blocks_issue(self, uop, half):
        if not uop.is_transmitter:
            return False
        if uop.op_is_store and half == DATA:
            return False  # latching store data is unobservable
        core = self.core
        seq = uop.seq
        return seq > core.vp_now or seq in core.d_pending

    def delay_subcause(self, uop):
        # self.blocks_issue resolves the loads_only instance swap.
        if uop.op_is_store:
            if uop.addr_issued or not self.blocks_issue(uop, ADDR):
                return None  # the data half is never fence-blocked
            return self.delay_label
        return self.delay_label if self.blocks_issue(uop, WHOLE) else None

    def _blocks_issue_loads_only(self, uop, half):
        """Spectre-v1-only point: fence loads alone; everything else
        (store address generation, branches, jumps) issues freely."""
        if not uop.op_is_load:
            return False
        core = self.core
        seq = uop.seq
        return seq > core.vp_now or seq in core.d_pending


# -- timing-model contributions -------------------------------------------

#: One sequence comparator against the broadcast visibility point per
#: issue-queue entry, plus transmitter gating per select port.
_ISSUE_FLAT_PS = 120.0
_ISSUE_PER_ENTRY_PS = 3.0
#: Energy per blocked (re-examined) ready entry.
_E_BLOCKED = 0.02


def _stage_deltas(cfg):
    return {"issue": _ISSUE_FLAT_PS + _ISSUE_PER_ENTRY_PS * cfg.iq_entries}


def _area_ffs(cfg):
    # A "safe" latch per issue-queue entry.
    return cfg.iq_entries * 2.0


def _area_luts(cfg):
    # Sequence comparator per entry + per-slot gating.
    return cfg.iq_entries * 6.0 + cfg.width * 25.0


def _power(stats):
    return _E_BLOCKED * stats.taint_blocked_issues


register(SchemeSpec(
    name="fence",
    factory=FenceScheme,
    doc="Conservative delay-all baseline: every transmitter waits"
        " until bound-to-commit (fence-after-every-branch analogue).",
    kwargs={
        "loads_only": KwargSpec(
            bool, False,
            "Fence only loads (Spectre-v1-only conservative point):"
            " stores, branches, and jumps issue freely.",
        ),
    },
    timing=SchemeTiming(
        stage_deltas=_stage_deltas,
        area_luts=_area_luts,
        area_ffs=_area_ffs,
        power=_power,
    ),
    ipc_anchor=0.45,
))
