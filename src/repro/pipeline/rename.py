"""Register renaming: RAT, free list, and branch checkpoints.

The paper's Figure 2 walkthrough is implemented here, *group at a
time*: :meth:`RenameUnit.rename_group` renames one fetch group in a
single in-order pass — source registers are translated through the
register alias table (RAT), destinations receive physical registers
sliced in bulk off the free list, and same-cycle dependencies resolve
because younger group members read the RAT *after* older members'
allocations have been written into it (the serial intra-group chain
whose hardware cost Figure 2/Figure 3 is about).

Checkpoints are allocated inside the same pass: a branch (or indirect
jump) snapshots the RAT *mid-group* — including its own and all older
group members' allocations, excluding younger ones — exactly the
state a misprediction must restore.  The caller guarantees capacity
(free registers, free checkpoints) before submitting the group; the
admission gates live in ``OoOCore._rename_block``.

The per-uop entry points (:meth:`RenameUnit.rename_sources`,
:meth:`RenameUnit.rename_dest`) remain as the single-uop primitive —
``rename_group`` is behaviourally exactly their in-order composition —
and stay in use by unit tests and tools.

A misprediction restores the checkpoint and returns the physical
registers allocated by squashed micro-ops to the free list.  Secure
schemes can stash extra state in the checkpoint via the
``scheme_state`` slot — STT-Rename keeps its taint-RAT copy there
(the paper's Section 4.2 checkpointing cost).
"""

from collections import deque

from repro.isa.registers import NUM_ARCH_REGS


class Checkpoint:
    """Snapshot taken at a branch for single-cycle recovery."""

    __slots__ = ("checkpoint_id", "rat", "ghr", "scheme_state", "branch_seq")

    def __init__(self, checkpoint_id, rat, ghr, branch_seq):
        self.checkpoint_id = checkpoint_id
        self.rat = rat
        self.ghr = ghr
        self.branch_seq = branch_seq
        self.scheme_state = None


class RenameUnit:
    """RAT + free list + checkpoint pool."""

    def __init__(self, num_phys_regs, max_branches):
        self.num_phys_regs = num_phys_regs
        self.max_branches = max_branches
        # Identity map for x0..x31 initially; p0 stays the canonical
        # zero register and is never allocated.
        self.rat = list(range(NUM_ARCH_REGS))
        self.free_list = deque(range(NUM_ARCH_REGS, num_phys_regs))
        # Architectural (committed) RAT for full-flush recovery.
        self.arch_rat = list(range(NUM_ARCH_REGS))
        self._checkpoints = {}
        self._next_checkpoint_id = 0

    # -- capacity queries ----------------------------------------------

    def free_regs(self):
        return len(self.free_list)

    def free_checkpoints(self):
        return self.max_branches - len(self._checkpoints)

    def occupancy(self):
        """Physical registers currently mapped or in flight (not free)."""
        return self.num_phys_regs - len(self.free_list)

    # -- renaming -------------------------------------------------------

    def lookup(self, arch_reg):
        """Current physical mapping of an architectural register."""
        return self.rat[arch_reg]

    def rename_sources(self, uop):
        """Fill prs1/prs2 from the RAT (x0 reads stay None)."""
        info = uop.instr.info
        if info.reads_rs1 and uop.instr.rs1 != 0:
            uop.prs1 = self.rat[uop.instr.rs1]
        if info.reads_rs2 and uop.instr.rs2 != 0:
            uop.prs2 = self.rat[uop.instr.rs2]

    def rename_dest(self, uop):
        """Allocate a destination physical register; returns it or None."""
        if not uop.writes_reg:
            return None
        preg = self.free_list.popleft()
        uop.stale_prd = self.rat[uop.instr.rd]
        uop.prd = preg
        self.rat[uop.instr.rd] = preg
        return preg

    def rename_group(self, uops, reg_state=None):
        """Rename one fetch group in a single in-order RAT pass.

        Equivalent to per-uop ``rename_sources`` + ``rename_dest`` +
        ``create_checkpoint`` in program order, with the bookkeeping
        batched into one sweep: destinations consume the free list in
        exactly the sequential pop order (identical allocations), and
        younger group members naturally observe older members' RAT
        writes — the paper's same-cycle dependency resolution.
        Branch/JALR micro-ops get their checkpoint mid-pass from
        ``uop.ghr_at_predict`` (set at group build).  The caller must
        have verified capacity: enough free physical registers for the
        group's writers and enough checkpoints for its branches.

        ``reg_state``, when given, is the physical register file's
        readiness list: each allocated destination is marked not-ready
        (0) in the same pass — the hardware truth that allocation
        clears the ready bit — sparing the core a separate
        ``mark_alloc_group`` sweep.  In-group consumers only read the
        state after the whole pass, so fusing the marks is equivalent.
        """
        rat = self.rat
        popleft = self.free_list.popleft
        for uop in uops:
            instr = uop.instr
            info = instr.info
            if info.reads_rs1 and instr.rs1 != 0:
                uop.prs1 = rat[instr.rs1]
            if info.reads_rs2 and instr.rs2 != 0:
                uop.prs2 = rat[instr.rs2]
            if instr.writes_rd:
                preg = popleft()
                uop.stale_prd = rat[instr.rd]
                uop.prd = preg
                rat[instr.rd] = preg
                if reg_state is not None:
                    reg_state[preg] = 0  # NOT_READY
            if info.casts_c_shadow:
                self.create_checkpoint(uop, uop.ghr_at_predict)

    def rename_solo(self, uop, reg_state=None):
        """Rename a single micro-op: the 1-wide slice of
        :meth:`rename_group`, without the group iteration overhead.

        Behaviourally identical to ``rename_group([uop], reg_state)`` —
        the core's dispatch stage takes this path for 1-uop groups (the
        steady state of low-IPC cells, e.g. under the fence scheme,
        where almost every cycle renames at most one instruction).
        """
        instr = uop.instr
        info = instr.info
        rat = self.rat
        if info.reads_rs1 and instr.rs1 != 0:
            uop.prs1 = rat[instr.rs1]
        if info.reads_rs2 and instr.rs2 != 0:
            uop.prs2 = rat[instr.rs2]
        if instr.writes_rd:
            preg = self.free_list.popleft()
            uop.stale_prd = rat[instr.rd]
            uop.prd = preg
            rat[instr.rd] = preg
            if reg_state is not None:
                reg_state[preg] = 0  # NOT_READY
        if info.casts_c_shadow:
            self.create_checkpoint(uop, uop.ghr_at_predict)

    # -- checkpoints ------------------------------------------------------

    def create_checkpoint(self, uop, ghr):
        """Snapshot the RAT for a branch being renamed; returns it."""
        if len(self._checkpoints) >= self.max_branches:
            raise RuntimeError("no free checkpoints (caller must stall)")
        checkpoint_id = self._next_checkpoint_id
        self._next_checkpoint_id += 1
        checkpoint = Checkpoint(checkpoint_id, list(self.rat), ghr, uop.seq)
        self._checkpoints[checkpoint_id] = checkpoint
        uop.checkpoint_id = checkpoint_id
        return checkpoint

    def get_checkpoint(self, checkpoint_id):
        return self._checkpoints[checkpoint_id]

    def release_checkpoint(self, checkpoint_id):
        """Branch retired (or squashed): drop its snapshot."""
        self._checkpoints.pop(checkpoint_id, None)

    def restore_checkpoint(self, checkpoint_id, squashed_uops):
        """Misprediction recovery: restore the RAT and reclaim registers.

        ``squashed_uops`` are all micro-ops younger than the branch, in
        any order; their destination registers return to the free list.
        Checkpoints younger than the branch are discarded.  Returns the
        restored checkpoint (for predictor/scheme recovery).
        """
        checkpoint = self._checkpoints.pop(checkpoint_id)
        self.rat = list(checkpoint.rat)
        for uop in squashed_uops:
            if uop.prd is not None:
                self.free_list.append(uop.prd)
        stale_ids = [
            cid
            for cid, cp in self._checkpoints.items()
            if cp.branch_seq > checkpoint.branch_seq
        ]
        for cid in stale_ids:
            del self._checkpoints[cid]
        return checkpoint

    # -- commit / flush -------------------------------------------------

    def commit(self, uop):
        """Retire a micro-op: update the architectural RAT, free the
        previous mapping of its destination register."""
        if uop.prd is not None:
            self.arch_rat[uop.instr.rd] = uop.prd
            if uop.stale_prd is not None and uop.stale_prd >= NUM_ARCH_REGS:
                self.free_list.append(uop.stale_prd)
            elif uop.stale_prd is not None and uop.stale_prd != uop.prd:
                # Initial identity mappings (p1..p31) become free once
                # their architectural register is renamed away.
                self.free_list.append(uop.stale_prd)

    def flush_all(self):
        """Full-pipeline flush (ordering violation at the ROB head):
        rebuild speculative state from the architectural RAT."""
        self.rat = list(self.arch_rat)
        live = set(self.arch_rat)
        live.add(0)
        self.free_list = deque(
            preg for preg in range(1, self.num_phys_regs) if preg not in live
        )
        self._checkpoints.clear()

    # -- invariants (used by property tests) -----------------------------

    def check_invariants(self):
        """Raise AssertionError if rename state is inconsistent."""
        mapped = [preg for preg in self.rat]
        if len(set(mapped)) != len(mapped):
            raise AssertionError("two architectural registers share a preg")
        free = set(self.free_list)
        if len(free) != len(self.free_list):
            raise AssertionError("duplicate entries in free list")
        overlap = free.intersection(mapped)
        if overlap:
            raise AssertionError("free list contains mapped registers: %s" % overlap)
        if self.rat[0] != 0:
            raise AssertionError("x0 must stay mapped to p0")
