"""Load-store unit: queues, forwarding, memory-dependence speculation.

Loads execute optimistically: once their address is generated they
search the store queue for the youngest older store with a matching
known address.  A match with ready data forwards; a match without data
waits; no match goes to memory *even if older stores have unknown
addresses* — that is memory-dependence speculation, tracked as a
D-shadow.  When a store's address later resolves and matches a younger
load that already obtained data from elsewhere, the load is flagged
with an ordering violation (a store-to-load forwarding error,
Section 9.2) and the pipeline flushes when it reaches the ROB head.

This optimistic policy is what makes STT-Rename's blocked store
address generation expensive: tainted stores keep their addresses out
of the store queue, so younger loads cannot forward and later flush —
the exchange2 anomaly of Section 8.1.
"""

from repro.isa.interp import to_unsigned64


class LoadStoreUnit:
    """LDQ + STQ with forwarding and violation detection."""

    def __init__(self, core):
        self.core = core
        self.config = core.config
        self.ldq = []
        self.stq = []

    # -- capacity ---------------------------------------------------------

    @property
    def ldq_full(self):
        return len(self.ldq) >= self.config.ldq_entries

    @property
    def stq_full(self):
        return len(self.stq) >= self.config.stq_entries

    def add_load(self, uop):
        self.ldq.append(uop)

    def add_store(self, uop):
        self.stq.append(uop)

    # -- load execution -----------------------------------------------------

    def load_agen(self, uop, cycle):
        """Address generation completed: forward, wait, or access memory."""
        core = self.core
        base = core.prf.read(uop.prs1) if uop.prs1 is not None else 0
        address = to_unsigned64(base + uop.instr.imm)
        uop.address = address

        pending = {
            store.seq
            for store in self.stq
            if store.seq < uop.seq and not store.addr_done
        }
        if pending:
            uop.pending_stores = pending
            core.d_pending[uop.seq] = uop

        match = self._youngest_matching_store(uop.seq, address)
        if match is not None:
            if match.data_done:
                core.stats.store_forwards += 1
                uop.forwarded_from = match.seq
                core.schedule_load_complete(
                    uop, cycle + self.config.mem.l1_latency, match.mem_value
                )
            else:
                uop.waiting_on_store = match.seq
            return

        latency, _level = core.hierarchy.access(address, pc=uop.pc)
        value = core.memory.get(address, 0)
        core.schedule_load_complete(uop, cycle + latency, value)
        hit_latency = self.config.mem.l1_latency
        if latency > hit_latency and core.scheme.allows_spec_hit_wakeup:
            core.schedule_spec_wakeup(uop, cycle + hit_latency)

    def _youngest_matching_store(self, load_seq, address):
        match = None
        for store in self.stq:
            if store.seq >= load_seq:
                break
            if store.addr_done and store.address == address:
                match = store
        return match

    # -- store execution ------------------------------------------------------

    def store_addr_ready(self, uop, cycle):
        """A store's address resolved: check younger loads for ordering
        violations (stale data read past this store), and clear this
        store from their memory-dependence speculation sets."""
        for load in self.ldq:
            if load.pending_stores and uop.seq in load.pending_stores:
                load.pending_stores.discard(uop.seq)
                if not load.pending_stores:
                    self.core.d_pending.pop(load.seq, None)
            if load.seq <= uop.seq or load.address != uop.address:
                continue
            if load.order_violation:
                continue
            if load.forwarded_from is not None and load.forwarded_from > uop.seq:
                continue  # forwarded from a store younger than this one
            if load.waiting_on_store is not None and load.waiting_on_store > uop.seq:
                continue  # will forward from a younger store
            if load.address is None:
                continue  # not yet executed: will see this store's address
            load.order_violation = True
            self.core.stats.stl_forward_errors += 1

    def store_data_ready(self, uop, cycle):
        """A store's data arrived: wake loads waiting to forward from it."""
        for load in self.ldq:
            if load.waiting_on_store == uop.seq:
                load.waiting_on_store = None
                load.forwarded_from = uop.seq
                self.core.stats.store_forwards += 1
                self.core.schedule_load_complete(
                    load, cycle + self.config.mem.l1_latency, uop.mem_value
                )

    # -- retirement / recovery ---------------------------------------------------

    def commit_load(self, uop):
        if self.ldq and self.ldq[0] is uop:
            self.ldq.pop(0)
        else:  # pragma: no cover - defensive; commits are in order
            self.ldq.remove(uop)

    def commit_store(self, uop):
        if self.stq and self.stq[0] is uop:
            self.stq.pop(0)
        else:  # pragma: no cover - defensive; commits are in order
            self.stq.remove(uop)

    def squash_younger(self, seq):
        self.ldq = [u for u in self.ldq if u.seq <= seq]
        self.stq = [u for u in self.stq if u.seq <= seq]

    def flush(self):
        self.ldq = []
        self.stq = []

    def occupancy(self):
        return len(self.ldq), len(self.stq)
