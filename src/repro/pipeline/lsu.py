"""Load-store unit: queues, forwarding, memory-dependence speculation.

Loads execute optimistically: once their address is generated they
search the store queue for the youngest older store with a matching
known address.  A match with ready data forwards; a match without data
waits; no match goes to memory *even if older stores have unknown
addresses* — that is memory-dependence speculation, tracked as a
D-shadow.  When a store's address later resolves and matches a younger
load that already obtained data from elsewhere, the load is flagged
with an ordering violation (a store-to-load forwarding error,
Section 9.2) and the pipeline flushes when it reaches the ROB head.

This optimistic policy is what makes STT-Rename's blocked store
address generation expensive: tainted stores keep their addresses out
of the store queue, so younger loads cannot forward and later flush —
the exchange2 anomaly of Section 8.1.

Both queues are age-ordered deques: commits retire from the front in
O(1), and squashes peel the killed suffix off the back.

Store-address resolution (``store_addr_ready``) used to rescan the
LDQ's whole younger suffix per store; it now runs off two indexes, so
its cost scales with the *relevant* loads rather than the LDQ size:

* ``_pending_store_waiters`` — store seq -> loads whose
  memory-dependence speculation names that store; resolution clears
  each waiter's entry (and its D-shadow when the set empties, bumping
  the core's ``d_version`` release trigger).
* ``_ldq_by_addr`` — executed address -> loads, consulted for the
  ordering-violation check.  Entries are removed eagerly at
  commit/squash/flush; the per-load liveness and address guards make
  any stale registration inert, exactly like the old scan's own
  guards.
"""

from collections import deque

from repro.isa.interp import to_unsigned64


class LoadStoreUnit:
    """LDQ + STQ with forwarding and violation detection."""

    def __init__(self, core):
        self.core = core
        self.config = core.config
        self.ldq = deque()
        self.stq = deque()
        self._l1_latency = core.config.mem.l1_latency
        #: store seq -> (load, gen) pairs waiting to forward from it
        #: (data pending).  Registrations are generation-stamped: a
        #: squash, replay, or pool recycle bumps the micro-op's ``gen``,
        #: so stale entries are inert at wake even though recycled uops
        #: no longer re-arm their memory-side slots eagerly.
        self._store_data_waiters = {}
        #: store seq -> (load, gen) pairs that speculated past it
        #: (memory-dependence speculation); drained when the store's
        #: address resolves.  Same generation-stamp discipline.
        self._pending_store_waiters = {}
        #: address -> executed loads at that address (violation index).
        self._ldq_by_addr = {}

    # -- capacity ---------------------------------------------------------

    @property
    def ldq_full(self):
        return len(self.ldq) >= self.config.ldq_entries

    @property
    def stq_full(self):
        return len(self.stq) >= self.config.stq_entries

    def occupancy(self):
        """Current ``(ldq, stq)`` entry counts."""
        return len(self.ldq), len(self.stq)

    def add_load(self, uop):
        self.ldq.append(uop)

    def add_store(self, uop):
        self.stq.append(uop)

    def admit_group(self, uops):
        """Queue one renamed fetch group's memory micro-ops (age order).

        Loads and stores land in their queues in program order in one
        call; non-memory micro-ops pass through untouched.  Capacity
        was checked by the dispatch gates before the group was built.
        This is the reference form of the admission the core's group
        build performs inline (hot path); tools and tests drive it
        directly.
        """
        ldq = self.ldq
        stq = self.stq
        for uop in uops:
            if uop.op_is_load:
                ldq.append(uop)
            elif uop.op_is_store:
                stq.append(uop)

    # -- load execution -----------------------------------------------------

    def load_agen(self, uop, cycle):
        """Address generation completed: forward, wait, or access memory."""
        core = self.core
        prs1 = uop.prs1
        pure = core._pure
        if (
            pure is not None
            and uop.trace_index >= 0
            and (prs1 is None or pure[prs1])
        ):
            # On-trace with a pure base: the recorded effective address
            # is exactly what the adder would produce.
            address = core._tr_addrs[uop.trace_index]
            uop.addr_pure = True
        else:
            base = core.prf.values[prs1] if prs1 is not None else 0
            address = to_unsigned64(base + uop.instr.imm)
        uop.address = address

        seq = uop.seq
        pending = None
        match = None
        impure_addr = False
        for store in self.stq:
            if store.seq >= seq:
                break
            if not store.addr_done:
                if pending is None:
                    pending = {store.seq}
                else:
                    pending.add(store.seq)
            else:
                if store.address == address:
                    match = store
                if not store.addr_pure:
                    # An impure resolved address could mask (or fake)
                    # aliasing relative to the architectural stream, so
                    # the load's value is no longer provably
                    # architectural (only meaningful under replay;
                    # without a trace val_pure is never consulted).
                    impure_addr = True
        if pending:
            uop.pending_stores = pending
            core.d_pending[seq] = uop
            waiters = self._pending_store_waiters
            entry = (uop, uop.gen)
            for store_seq in pending:
                bucket = waiters.get(store_seq)
                if bucket is None:
                    waiters[store_seq] = [entry]
                else:
                    bucket.append(entry)
            # Register in the violation index, regardless of how the
            # data arrives.  Only loads that executed past an
            # *unresolved* older store address can ever be flagged —
            # when every older store's address was already known here,
            # the forwarding search above saw it, and no later
            # ``store_addr_ready`` can concern this load (younger
            # stores never check older loads) — so store-free and
            # resolved-store paths pay nothing.
            bucket = self._ldq_by_addr.get(address)
            if bucket is None:
                self._ldq_by_addr[address] = [uop]
            else:
                bucket.append(uop)

        # A load's value is provably architectural only when its own
        # address is pure, no older store address is unresolved or
        # impure, and (below) its forwarding source's data, if any, is
        # itself pure.  Loads always take *values* from the live
        # machine; this flag only feeds the destination register's
        # purity bit.
        val_pure = uop.addr_pure and pending is None and not impure_addr

        if match is not None:
            if match.data_done:
                core.stats.store_forwards += 1
                uop.forwarded_from = match.seq
                uop.val_pure = val_pure and match.val_pure
                core.schedule_load_complete(
                    uop, cycle + self._l1_latency, match.mem_value
                )
            else:
                # Tentative: ANDed with the store's data purity when the
                # data arrives (store_data_ready).
                uop.val_pure = val_pure
                uop.waiting_on_store = match.seq
                self._store_data_waiters.setdefault(match.seq, []).append(
                    (uop, uop.gen)
                )
            return

        uop.val_pure = val_pure
        latency, _level = core.hierarchy.access(address, pc=uop.pc)
        value = core.memory.get(address, 0)
        core.schedule_load_complete(uop, cycle + latency, value)
        hit_latency = self._l1_latency
        uop.l1_miss = latency > hit_latency
        # A load with no destination (rd == x0) has no consumers to wake
        # speculatively — and no physical register to mark/revoke.
        if (
            uop.l1_miss
            and uop.prd is not None
            and core.scheme.allows_spec_hit_wakeup
        ):
            core.schedule_spec_wakeup(uop, cycle + hit_latency)

    # -- store execution ------------------------------------------------------

    def store_addr_ready(self, uop, cycle):
        """A store's address resolved: clear this store from the
        memory-dependence speculation sets of loads that ran past it,
        and check same-address younger loads for ordering violations
        (stale data read past this store).

        Both walks are index-driven (see the module docstring): the
        per-load guards reproduce the old younger-suffix LDQ scan's
        verdicts exactly, and the checks are order-independent, so the
        observable outcome — violation flags, error counts, D-shadow
        resolutions — is identical.
        """
        seq = uop.seq
        address = uop.address
        core = self.core

        waiting = self._pending_store_waiters.pop(seq, None)
        if waiting:
            for load, gen in waiting:
                if load.gen != gen:
                    continue  # squashed, replayed, or recycled since
                pending = load.pending_stores
                if not pending or seq not in pending:
                    continue  # replayed since registering
                pending.discard(seq)
                if not pending and core.d_pending.pop(load.seq, None) is not None:
                    # Resolution may make a withheld broadcast
                    # releasable: advance the scheme-hook trigger.
                    core.d_version += 1

        bucket = self._ldq_by_addr.get(address)
        if bucket:
            for load in bucket:
                if load.seq <= seq:
                    continue  # only younger loads can be affected
                if load.killed or load.committed:
                    continue  # stale index entry; removed eagerly soon
                if load.address != address:
                    continue  # replayed to a different address
                if load.order_violation:
                    continue
                if load.forwarded_from is not None and load.forwarded_from > seq:
                    continue  # forwarded from a store younger than this one
                if load.waiting_on_store is not None and load.waiting_on_store > seq:
                    continue  # will forward from a younger store
                load.order_violation = True
                core.stats.stl_forward_errors += 1

    def store_data_ready(self, uop, cycle):
        """A store's data arrived: wake loads waiting to forward from it.

        Waiters come from the store-indexed registry instead of an LDQ
        scan; age-sorting the handful of waiters reproduces the LDQ
        scan's oldest-first wake (and hence event) order exactly.
        """
        waiting = self._store_data_waiters.pop(uop.seq, None)
        if not waiting:
            return
        waiting.sort(key=lambda item: item[0].seq)
        for load, gen in waiting:
            if load.gen != gen or load.waiting_on_store != uop.seq:
                continue  # squashed, replayed, or recycled since
            load.waiting_on_store = None
            load.forwarded_from = uop.seq
            # Complete the tentative purity basis from load_agen with
            # the store data's own purity.
            load.val_pure = load.val_pure and uop.val_pure
            self.core.stats.store_forwards += 1
            self.core.schedule_load_complete(
                load, cycle + self._l1_latency, uop.mem_value
            )

    # -- violation-index bookkeeping --------------------------------------

    def _unindex_load(self, uop):
        """Drop a departing load from the violation index."""
        address = uop.address
        if address is None:
            return  # never executed: never indexed
        bucket = self._ldq_by_addr.get(address)
        if bucket is None:
            return
        try:
            bucket.remove(uop)
        except ValueError:  # pragma: no cover - defensive
            return
        if not bucket:
            del self._ldq_by_addr[address]

    # -- retirement / recovery ---------------------------------------------------

    def commit_load(self, uop):
        if self.ldq and self.ldq[0] is uop:
            self.ldq.popleft()
        else:  # pragma: no cover - defensive; commits are in order
            self.ldq.remove(uop)
        self._unindex_load(uop)

    def commit_store(self, uop):
        if self.stq and self.stq[0] is uop:
            self.stq.popleft()
        else:  # pragma: no cover - defensive; commits are in order
            self.stq.remove(uop)

    def squash_younger(self, seq):
        ldq = self.ldq
        while ldq and ldq[-1].seq > seq:
            self._unindex_load(ldq.pop())
        stq = self.stq
        while stq and stq[-1].seq > seq:
            stq.pop()
        for waiters in (self._store_data_waiters,
                        self._pending_store_waiters):
            if waiters:
                for store_seq in [s for s in waiters if s > seq]:
                    del waiters[store_seq]

    def flush(self):
        self.ldq.clear()
        self.stq.clear()
        self._store_data_waiters.clear()
        self._pending_store_waiters.clear()
        self._ldq_by_addr.clear()

    def occupancy(self):
        return len(self.ldq), len(self.stq)
