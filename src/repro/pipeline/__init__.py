"""The out-of-order core substrate (BOOM proxy).

This package implements the machine the secure-speculation schemes are
grafted onto: a parameterised superscalar out-of-order pipeline with

* register renaming (RAT, free list, branch checkpoints),
* an issue queue with wakeup/select, speculative L1-hit scheduling and
  replay,
* a load-store unit with store-to-load forwarding, memory-dependence
  speculation, and ordering-violation flushes,
* a reorder buffer with in-order commit,
* a decoupled front end with configurable branch prediction.

:class:`repro.pipeline.config.CoreConfig` defines the four BOOM-style
configurations evaluated by the paper (Small, Medium, Large, Mega);
:class:`repro.pipeline.core.OoOCore` is the simulator.
"""

from repro.pipeline.config import (
    CoreConfig,
    LARGE,
    MEDIUM,
    MEGA,
    SMALL,
    boom_config,
    named_configs,
)
from repro.pipeline.core import OoOCore, SimulationResult
from repro.pipeline.stats import SimStats

__all__ = [
    "CoreConfig",
    "SMALL",
    "MEDIUM",
    "LARGE",
    "MEGA",
    "boom_config",
    "named_configs",
    "OoOCore",
    "SimulationResult",
    "SimStats",
]
