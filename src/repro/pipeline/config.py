"""Core configurations, including the four BOOM-style presets (Table 1).

The Small/Medium/Large/Mega presets mirror the paper's Table 1: core
width 1/2/3/4, one memory port (two for Mega), and 32/64/96/128 ROB
entries; the remaining structure sizes follow SonicBOOM's published
configurations at the model's level of abstraction.
"""

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

from repro.memsys.hierarchy import MemConfig


@dataclass(frozen=True)
class CoreConfig:
    """All parameters of one core instance.

    Attributes mirror microarchitectural structure sizes; the timing,
    area, and power models consume the same record, so a configuration
    fully determines IPC *and* synthesis results.
    """

    name: str = "custom"
    #: Fetch/decode/rename/commit width (the paper's "core width").
    width: int = 4
    #: Maximum instructions selected for issue per cycle.
    issue_width: int = 4
    #: Memory ports: load/store micro-ops issued per cycle (Table 1).
    mem_width: int = 2
    rob_entries: int = 128
    iq_entries: int = 40
    ldq_entries: int = 32
    stq_entries: int = 32
    num_phys_regs: int = 128
    #: Maximum in-flight branches (rename checkpoints).
    max_branches: int = 16
    #: Cycles between fetch and rename availability (front-end depth).
    frontend_depth: int = 4
    #: Extra cycles to restart fetch after a mispredict redirect.
    redirect_penalty: int = 2
    #: Extra pipeline depth between issue and branch resolution (the
    #: register-read/execute/BRU stages a branch traverses before its
    #: C-shadow lifts and a misprediction is detected).
    branch_resolve_extra: int = 4
    fetch_buffer_entries: int = 16
    branch_predictor: str = "gshare"
    btb_entries: int = 256
    #: Number of pipelined multiply units / unpipelined divide units.
    mul_units: int = 1
    div_units: int = 1
    mem: MemConfig = field(default_factory=MemConfig)

    def validate(self):
        """Raise ValueError on inconsistent parameters."""
        if self.width < 1:
            raise ValueError("width must be >= 1")
        if self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if self.mem_width < 1:
            raise ValueError("mem_width must be >= 1")
        if self.rob_entries < self.width:
            raise ValueError("ROB must hold at least one rename group")
        if self.num_phys_regs < 32 + self.width:
            raise ValueError(
                "need at least 32 + width physical registers, got %d"
                % self.num_phys_regs
            )
        if self.max_branches < 1:
            raise ValueError("need at least one branch checkpoint")
        if self.iq_entries < self.width:
            raise ValueError("issue queue smaller than rename width")
        if self.ldq_entries < 1 or self.stq_entries < 1:
            raise ValueError("load/store queues must be non-empty")
        self.mem.validate()

    def scaled(self, **overrides):
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def to_dict(self):
        """Every parameter as a plain dict, nested MemConfig included."""
        return asdict(self)

    def fingerprint(self):
        """Stable content hash of every *simulation-relevant* parameter.

        The display ``name`` is excluded: it carries no identity, so
        two configurations that merely share a name (two ad-hoc
        ``CoreConfig(...)`` both called ``"custom"``) hash differently,
        while renaming a parameter-identical config hashes the same —
        caches keyed on the fingerprint neither alias the former nor
        needlessly resimulate the latter.
        """
        data = self.to_dict()
        data.pop("name")
        blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def config_from_dict(data):
    """Rebuild a :class:`CoreConfig` from :meth:`CoreConfig.to_dict` output.

    The inverse used wherever configurations travel as plain JSON —
    most importantly the cluster wire protocol, which ships each grid
    cell's full configuration to remote workers.  Unknown fields raise
    (a worker running a different model version must not silently
    simulate a truncated configuration), and the rebuilt config is
    validated before use.
    """
    data = dict(data)
    mem = data.pop("mem", None)
    config = CoreConfig(
        mem=MemConfig(**mem) if mem is not None else MemConfig(), **data
    )
    config.validate()
    return config


def boom_config(size):
    """Return one of the paper's four BOOM configurations by name.

    ``size`` is one of ``small``, ``medium``, ``large``, ``mega``
    (case-insensitive).
    """
    size = size.lower()
    if size not in _PRESETS:
        raise ValueError(
            "unknown BOOM config %r (choose from %s)" % (size, sorted(_PRESETS))
        )
    return _PRESETS[size]


SMALL = CoreConfig(
    name="small",
    width=1,
    issue_width=1,
    mem_width=1,
    rob_entries=32,
    iq_entries=10,
    ldq_entries=8,
    stq_entries=8,
    num_phys_regs=52,
    max_branches=6,
)

MEDIUM = CoreConfig(
    name="medium",
    width=2,
    issue_width=2,
    mem_width=1,
    rob_entries=64,
    iq_entries=20,
    ldq_entries=16,
    stq_entries=16,
    num_phys_regs=80,
    max_branches=10,
)

LARGE = CoreConfig(
    name="large",
    width=3,
    issue_width=3,
    mem_width=1,
    rob_entries=96,
    iq_entries=30,
    ldq_entries=24,
    stq_entries=24,
    num_phys_regs=100,
    max_branches=14,
)

MEGA = CoreConfig(
    name="mega",
    width=4,
    issue_width=4,
    mem_width=2,
    rob_entries=128,
    iq_entries=40,
    ldq_entries=32,
    stq_entries=32,
    num_phys_regs=128,
    max_branches=18,
)

_PRESETS = {
    "small": SMALL,
    "medium": MEDIUM,
    "large": LARGE,
    "mega": MEGA,
}


def named_configs():
    """The four paper configurations in ascending width order."""
    return [SMALL, MEDIUM, LARGE, MEGA]
