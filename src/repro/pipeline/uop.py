"""Dynamic micro-op record and the recycling pool.

A :class:`MicroOp` wraps one dynamic instance of a static
:class:`~repro.isa.instructions.Instruction` as it flows through the
pipeline.  Stores are a *single* micro-op with two issue halves
(address and data), mirroring BOOM's unified store micro-op whose
partial-issue interaction with STT the paper analyses in Section 9.2.

**Pooling.**  Micro-ops are the kernel's only steady-state allocation:
one per renamed instruction.  :class:`MicroOpPool` recycles them —
commit and squash return retired micro-ops to a free list, and rename
re-arms a recycled one via :meth:`MicroOp.reset` instead of
constructing afresh — so a long simulation allocates a bounded number
of objects (at most the in-flight maximum, ~ROB entries).

Recycling is safe against stale references because of two invariants:

* ``gen`` is *monotonic across reuses*: :meth:`MicroOp.reset` bumps it
  instead of zeroing it, so events scheduled against a previous life
  (which snapshot ``(uop, gen)``) can never match the recycled object.
* ``in_pool`` makes :meth:`MicroOpPool.release` idempotent: a micro-op
  can be handed back from several cleanup paths (commit sweep, squash
  sweep, scheme recovery) without ever entering the free list twice.

Lazily-discarded index registrations (issue-queue waiter sets, LSU
forward/violation indexes) may still name a recycled object; their
existing per-entry guards — status, ``killed``, generation, seq, and
address checks against the object's *current* life — make every such
stale entry inert, exactly as they did for departed-but-unrecycled
objects.  The one holder that outlives retirement is a
delayed-broadcast scheme (NDA family) whose budget-blocked load commits
before its broadcast releases; the core's commit sweep detects that
(the destination register is still not READY) and simply skips
recycling that one micro-op.

**Slot groups.**  Re-arming is split by read discipline so the rename
hot loop only touches fields that could actually leak between lives:

* :data:`HOT_SLOTS` — :meth:`MicroOp.reset` — fields some consumer may
  read before this life writes them (scheduler status, rename state,
  scheme taint state, control metadata).  Always re-armed.
* :data:`PREDICTION_SLOTS` — :meth:`MicroOp.reset_prediction` — the
  prediction/trace-position fields the rename dispatcher copies from
  the fetch entry immediately after every acquisition; re-armed only on
  the reference/tool path (:meth:`MicroOpPool.acquire`), dead stores
  otherwise.
* :data:`MEM_SLOTS` — :meth:`MicroOp.reset_mem` — fields only ever
  read under a load/store classification guard (LSQ state, purity
  flags, the store-half issue state, ``issue_cycle`` which only stores
  read-before-write).  The core re-arms them only for memory micro-ops;
  the LSU's waiter registries snapshot ``(uop, gen)`` so a recycled
  non-memory life can never satisfy a stale memory-side lookup.
* :data:`DEFERRED_SLOTS` — :meth:`MicroOp.reset_deferred` — fields
  every reader observes strictly after this life's writer (branch
  resolution results, completion results, commit timestamps).  The hot
  path skips them entirely; :meth:`MicroOpPool.acquire` (the reference
  and tool/test entry point) still performs the full three-group
  re-arm, so directly-driven micro-ops behave exactly like freshly
  constructed ones.

``tests/pipeline/test_uop_pool.py`` pins the partition structurally:
the three groups plus the pool-owned slots must cover ``__slots__``
exactly, and each ``reset*`` method must restore its whole group.
"""

# Issue "halves" for micro-ops.  Plain ops use WHOLE; stores issue
# ADDR and DATA independently.
WHOLE = "whole"
ADDR = "addr"
DATA = "data"

#: Slot partition (see the module docstring).  The structural test in
#: tests/pipeline/test_uop_pool.py asserts these four tuples cover
#: ``MicroOp.__slots__`` exactly and that each reset method restores
#: its whole group.
HOT_SLOTS = (
    "seq", "pc", "instr", "fetch_cycle",
    "op_is_load", "op_is_store", "op_is_branch", "op_is_transmitter",
    "op_is_div", "op_is_plain", "op_latency",
    "prs1", "prs2", "prd", "stale_prd", "checkpoint_id",
    "in_rob", "completed", "committed", "killed",
    "spec_deps", "iq_status", "order_violation",
    "yrot", "yrot_addr", "yrot_data", "stt_nop_issued",
    "complete_cycle",
)

#: Fields the rename dispatcher copies from the fetch entry on every
#: acquisition (prediction metadata plus the trace position): clearing
#: them in :meth:`MicroOp.reset` would be dead stores on the hot path,
#: so they form their own group, re-armed by
#: :meth:`MicroOp.reset_prediction` on the reference/tool path only.
PREDICTION_SLOTS = (
    "pred_taken", "pred_target", "ghr_at_predict", "trace_index",
)

MEM_SLOTS = (
    "address", "mem_value", "ldq_index", "stq_index",
    "forwarded_from", "waiting_on_store", "pending_stores",
    "addr_done", "data_done", "l1_miss",
    "addr_issued", "data_issued", "issue_cycle",
    "addr_pure", "val_pure",
)

DEFERRED_SLOTS = (
    "mispredicted", "result", "taken", "actual_target",
    "rename_cycle", "commit_cycle",
)

POOL_SLOTS = ("gen", "in_pool")


class MicroOp:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "seq",
        "pc",
        "instr",
        # Renaming.
        "prs1",
        "prs2",
        "prd",
        "stale_prd",
        "checkpoint_id",
        # Branch prediction state.
        "pred_taken",
        "pred_target",
        "ghr_at_predict",
        # Dynamic status.
        "in_rob",
        "addr_issued",
        "data_issued",
        "completed",
        "committed",
        "killed",
        "gen",
        "mispredicted",
        # Results.
        "result",
        "taken",
        "actual_target",
        # Memory.
        "address",
        "mem_value",
        "ldq_index",
        "stq_index",
        "forwarded_from",
        "order_violation",
        "addr_done",
        "data_done",
        # Did the load's memory access miss the L1?  Set at address
        # generation; drives spec-hit wakeups and the delay-on-miss
        # scheme's broadcast gate.
        "l1_miss",
        # Secure-speculation state.
        "yrot",
        "yrot_addr",
        "yrot_data",
        "stt_nop_issued",
        # Speculative-wakeup bookkeeping.
        "spec_deps",
        "waiting_on_store",
        # Scheduler state (see repro.pipeline.issue_queue: IQ_NONE /
        # IQ_WAITING / IQ_READY / IQ_ISSUED).
        "iq_status",
        # Older stores with unknown addresses this load executed past
        # (memory-dependence speculation; emptied as they resolve).
        "pending_stores",
        # Trace replay: position of this dynamic instruction in the
        # recorded trace (-1 = wrong path / no trace attached) and
        # purity of the generated address / loaded value — True iff the
        # value provably equals the architectural one, making recorded
        # outcomes substitutable downstream (see repro.pipeline.core).
        "trace_index",
        "addr_pure",
        "val_pure",
        # Timing bookkeeping.
        "fetch_cycle",
        "rename_cycle",
        "issue_cycle",
        "complete_cycle",
        "commit_cycle",
        # Cached classification (hot-path flags; see __init__).
        "op_is_load",
        "op_is_store",
        "op_is_branch",
        "op_is_transmitter",
        "op_is_div",
        # Plain-ALU classification: completion is a pure function of
        # register sources, making this the batch-replay candidate
        # class (see repro.pipeline.core).
        "op_is_plain",
        "op_latency",
        # Pool bookkeeping (see MicroOpPool): True while parked on the
        # free list, guarding against double release.
        "in_pool",
    )

    def __init__(self, seq, pc, instr, fetch_cycle=0):
        self.gen = 0
        self.in_pool = False
        self.reset(seq, pc, instr, fetch_cycle)
        self.reset_prediction()
        self.reset_mem()
        self.reset_deferred()

    def reset(self, seq, pc, instr, fetch_cycle=0):
        """Re-arm the hot slot group for a new dynamic instruction.

        Restores every :data:`HOT_SLOTS` field to its fresh-``__init__``
        state *except* ``gen``, which instead increments: events
        scheduled against the previous life snapshot the old generation
        and must never match the new one (``in_pool`` is pool-managed
        and not touched here).  The prediction group
        (:meth:`reset_prediction`) is excluded too: the rename
        dispatcher unconditionally overwrites all four fields from the
        fetch entry immediately after re-arming, so clearing them here
        would be dead stores on the hot path — any other caller pairs
        this with :meth:`reset_prediction` (see :meth:`MicroOpPool.acquire`).
        The memory group is re-armed separately (:meth:`reset_mem`,
        loads/stores only) and the deferred group not at all on the hot
        path — see the module docstring for why that is sound.
        """
        self.seq = seq
        self.pc = pc
        self.instr = instr
        info = instr.info
        self.op_is_load = info.is_load
        self.op_is_store = info.is_store
        self.op_is_branch = info.is_branch
        self.op_is_transmitter = info.is_transmitter
        self.op_is_div = info.is_div
        self.op_is_plain = info.is_plain_alu
        self.op_latency = info.latency
        self.prs1 = None
        self.prs2 = None
        self.prd = None
        self.stale_prd = None
        self.checkpoint_id = None
        self.in_rob = False
        self.completed = False
        self.committed = False
        self.killed = False
        self.gen += 1
        self.order_violation = False
        self.yrot = None
        self.yrot_addr = None
        self.yrot_data = None
        self.stt_nop_issued = False
        self.spec_deps = None
        self.iq_status = 0
        self.fetch_cycle = fetch_cycle
        self.complete_cycle = None

    def reset_prediction(self):
        """Re-arm the prediction/trace fields the rename dispatcher
        normally copies straight from the fetch entry (split out of
        :meth:`reset` so the hot path skips the dead stores)."""
        self.pred_taken = False
        self.pred_target = None
        self.ghr_at_predict = None
        self.trace_index = -1

    def reset_mem(self):
        """Re-arm the memory slot group (loads and stores only)."""
        self.address = None
        self.mem_value = None
        self.ldq_index = None
        self.stq_index = None
        self.forwarded_from = None
        self.waiting_on_store = None
        self.pending_stores = None
        self.addr_done = False
        self.data_done = False
        self.l1_miss = False
        self.addr_issued = False
        self.data_issued = False
        self.issue_cycle = None
        self.addr_pure = False
        self.val_pure = False

    def reset_deferred(self):
        """Re-arm the written-before-read slot group (reference path)."""
        self.mispredicted = False
        self.result = None
        self.taken = False
        self.actual_target = None
        self.rename_cycle = None
        self.commit_cycle = None

    # -- classification shortcuts -------------------------------------

    @property
    def is_load(self):
        return self.op_is_load

    @property
    def is_store(self):
        return self.op_is_store

    @property
    def is_branch(self):
        return self.op_is_branch

    @property
    def is_control(self):
        return self.instr.is_control

    @property
    def is_transmitter(self):
        return self.op_is_transmitter

    @property
    def writes_reg(self):
        return self.instr.writes_rd

    @property
    def fully_issued(self):
        """Both halves issued (stores) or the single half issued."""
        if self.op_is_store:
            return self.addr_issued and self.data_issued
        return self.addr_issued

    def kill(self):
        """Invalidate the micro-op and any scheduled events for it."""
        self.killed = True
        self.gen += 1

    def replay(self):
        """Return the micro-op to the not-issued state (wakeup replay).

        ``trace_index`` survives: a replay re-executes the *same*
        dynamic instruction.  The purity flags do not — the re-executed
        address/value derivation re-establishes them from scratch.
        """
        self.gen += 1
        self.addr_issued = False
        self.data_issued = False
        self.completed = False
        self.result = None
        self.spec_deps = None
        self.waiting_on_store = None
        self.pending_stores = None
        self.l1_miss = False
        self.addr_pure = False
        self.val_pure = False

    def __repr__(self):
        return "<uop #%d pc=%d %s%s>" % (
            self.seq,
            self.pc,
            self.instr,
            " KILLED" if self.killed else "",
        )


class MicroOpPool:
    """Free-list recycler for :class:`MicroOp` objects.

    One pool per core.  ``acquire`` re-arms a parked micro-op (or
    constructs one when the list is dry); ``release`` parks a retired
    or squashed micro-op, idempotently — double releases (commit sweep
    plus a scheme recovery path, say) are absorbed by the ``in_pool``
    flag rather than corrupting the free list.  The pool's size is
    naturally bounded by the in-flight maximum: only micro-ops that
    made it into the ROB ever come back.
    """

    __slots__ = ("_free", "allocated")

    def __init__(self):
        self._free = []
        #: Fresh constructions (pool was dry).  The recycling evidence:
        #: a steady-state run's ``allocated`` stays at the in-flight
        #: maximum while millions of micro-ops pass through.
        self.allocated = 0

    def __len__(self):
        return len(self._free)

    def acquire(self, seq, pc, instr, fetch_cycle=0):
        """A micro-op armed for ``(seq, pc, instr)``: recycled or new.

        Performs the *full* three-group re-arm, so a recycled micro-op
        is indistinguishable from a fresh construction.  The core's
        rename gather loop inlines a narrower form (hot group always,
        memory group for loads/stores only — see the module docstring);
        this method is the reference implementation and the tool/test
        entry point.
        """
        free = self._free
        if free:
            uop = free.pop()
            uop.in_pool = False
            uop.reset(seq, pc, instr, fetch_cycle)
            uop.reset_prediction()
            uop.reset_mem()
            uop.reset_deferred()
            return uop
        self.allocated += 1
        return MicroOp(seq, pc, instr, fetch_cycle)

    def release(self, uop):
        """Park a retired/squashed micro-op (no-op if already parked)."""
        if uop.in_pool:
            return
        uop.in_pool = True
        self._free.append(uop)

    def release_all(self, uops):
        for uop in uops:
            if not uop.in_pool:
                uop.in_pool = True
                self._free.append(uop)
