"""Dynamic micro-op record.

A :class:`MicroOp` wraps one dynamic instance of a static
:class:`~repro.isa.instructions.Instruction` as it flows through the
pipeline.  Stores are a *single* micro-op with two issue halves
(address and data), mirroring BOOM's unified store micro-op whose
partial-issue interaction with STT the paper analyses in Section 9.2.
"""

# Issue "halves" for micro-ops.  Plain ops use WHOLE; stores issue
# ADDR and DATA independently.
WHOLE = "whole"
ADDR = "addr"
DATA = "data"


class MicroOp:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "seq",
        "pc",
        "instr",
        # Renaming.
        "prs1",
        "prs2",
        "prd",
        "stale_prd",
        "checkpoint_id",
        # Branch prediction state.
        "pred_taken",
        "pred_target",
        "ghr_at_predict",
        # Dynamic status.
        "in_rob",
        "addr_issued",
        "data_issued",
        "completed",
        "committed",
        "killed",
        "gen",
        "mispredicted",
        # Results.
        "result",
        "taken",
        "actual_target",
        # Memory.
        "address",
        "mem_value",
        "ldq_index",
        "stq_index",
        "forwarded_from",
        "order_violation",
        "addr_done",
        "data_done",
        # Did the load's memory access miss the L1?  Set at address
        # generation; drives spec-hit wakeups and the delay-on-miss
        # scheme's broadcast gate.
        "l1_miss",
        # Secure-speculation state.
        "yrot",
        "yrot_addr",
        "yrot_data",
        "stt_nop_issued",
        # Speculative-wakeup bookkeeping.
        "spec_deps",
        "waiting_on_store",
        # Scheduler state (see repro.pipeline.issue_queue: IQ_NONE /
        # IQ_WAITING / IQ_READY / IQ_ISSUED).
        "iq_status",
        # Older stores with unknown addresses this load executed past
        # (memory-dependence speculation; emptied as they resolve).
        "pending_stores",
        # Timing bookkeeping.
        "fetch_cycle",
        "rename_cycle",
        "issue_cycle",
        "complete_cycle",
        "commit_cycle",
        # Cached classification (hot-path flags; see __init__).
        "op_is_load",
        "op_is_store",
        "op_is_branch",
        "op_is_transmitter",
        "op_is_div",
        "op_latency",
    )

    def __init__(self, seq, pc, instr, fetch_cycle=0):
        self.seq = seq
        self.pc = pc
        self.instr = instr
        info = instr.info
        self.op_is_load = info.is_load
        self.op_is_store = info.is_store
        self.op_is_branch = info.is_branch
        self.op_is_transmitter = info.is_transmitter
        self.op_is_div = info.is_div
        self.op_latency = info.latency
        self.prs1 = None
        self.prs2 = None
        self.prd = None
        self.stale_prd = None
        self.checkpoint_id = None
        self.pred_taken = False
        self.pred_target = None
        self.ghr_at_predict = None
        self.in_rob = False
        self.addr_issued = False
        self.data_issued = False
        self.completed = False
        self.committed = False
        self.killed = False
        self.gen = 0
        self.mispredicted = False
        self.result = None
        self.taken = False
        self.actual_target = None
        self.address = None
        self.mem_value = None
        self.ldq_index = None
        self.stq_index = None
        self.forwarded_from = None
        self.order_violation = False
        self.addr_done = False
        self.data_done = False
        self.l1_miss = False
        self.yrot = None
        self.yrot_addr = None
        self.yrot_data = None
        self.stt_nop_issued = False
        self.spec_deps = None
        self.waiting_on_store = None
        self.iq_status = 0
        self.pending_stores = None
        self.fetch_cycle = fetch_cycle
        self.rename_cycle = None
        self.issue_cycle = None
        self.complete_cycle = None
        self.commit_cycle = None

    # -- classification shortcuts -------------------------------------

    @property
    def is_load(self):
        return self.op_is_load

    @property
    def is_store(self):
        return self.op_is_store

    @property
    def is_branch(self):
        return self.op_is_branch

    @property
    def is_control(self):
        return self.instr.is_control

    @property
    def is_transmitter(self):
        return self.op_is_transmitter

    @property
    def writes_reg(self):
        return self.instr.writes_rd

    @property
    def fully_issued(self):
        """Both halves issued (stores) or the single half issued."""
        if self.op_is_store:
            return self.addr_issued and self.data_issued
        return self.addr_issued

    def kill(self):
        """Invalidate the micro-op and any scheduled events for it."""
        self.killed = True
        self.gen += 1

    def replay(self):
        """Return the micro-op to the not-issued state (wakeup replay)."""
        self.gen += 1
        self.addr_issued = False
        self.data_issued = False
        self.completed = False
        self.result = None
        self.spec_deps = None
        self.waiting_on_store = None
        self.pending_stores = None
        self.l1_miss = False

    def __repr__(self):
        return "<uop #%d pc=%d %s%s>" % (
            self.seq,
            self.pc,
            self.instr,
            " KILLED" if self.killed else "",
        )
