"""The out-of-order core simulator.

One :class:`OoOCore` executes one :class:`~repro.isa.program.Program`
under one :class:`~repro.core.plugin.SchemeBase` and one
:class:`~repro.pipeline.config.CoreConfig`.  The model is cycle-level
and *functional*: it computes real values, so its final architectural
state must (and, per the test suite, does) match the in-order
reference interpreter exactly, for every scheme, despite speculation,
squashes, replays, and ordering-violation flushes.

**Trace replay.**  Passing a recorded
:class:`~repro.isa.trace.DynamicTrace` (``trace=``) turns the core
into a timing replayer: on-trace micro-ops read their execution
outcome — ALU results, branch directions and targets, load/store
effective addresses — from the trace columns instead of evaluating
them, eliminating the per-uop functional work from the hot loop.
Replay is *opportunistic and bit-exact*, never approximate:

* The fetch unit tracks the stream's trace position
  (:class:`~repro.pipeline.fetch.FetchUnit`); each micro-op carries
  ``trace_index`` (-1 = wrong path).  Squash recovery re-enters the
  trace when the mispredicted branch was on-trace and its actual
  target matches the recorded successor; a full flush re-enters at the
  ROB head's own position.
* A per-physical-register *purity* bit tracks whether the register's
  current value provably equals the architectural value of its
  on-trace producer.  A recorded outcome substitutes only when the
  micro-op is on-trace AND every source register is pure; otherwise
  the in-line evaluator runs (the wrong-path fallback the trace
  design requires) and the destination is marked impure.  Purity is
  re-established exactly at value-write sites, which is sound because
  spec-wakeup kills (priority 0) precede every same-cycle
  completion/agen, so no handler ever reads an unwritten register.
* Loads never take *values* from the trace: the live memory image and
  store-queue forwarding remain authoritative, so stale-read
  transients (ordering violations, Section 9.2) reproduce exactly.  A
  load's value is pure only when its address is pure, no older store
  address is unresolved or impure (an impure address could mask real
  aliasing), and its forwarding source (if any) is itself pure.
* The recorded L1 hit/miss column is advisory only; the live
  :class:`~repro.memsys.hierarchy.MemoryHierarchy` decides latency
  (wrong-path pollution and prefetching are timing-relevant and
  scheme-visible).

With no trace attached the core is exactly the pre-replay functional
machine; with one attached, every stat, register, and memory word is
byte-identical (the golden fixture asserts this with replay on and
off).

**Batch replay.**  On top of per-uop replay, the issue stage coalesces
replay candidates into *batch events*: when several plain-ALU micro-ops
(``op_is_plain`` — register-writing, non-memory, non-control; their
outcome is a pure function of register sources) issue in one cycle,
are all on-trace, and complete on the same future cycle, the core
schedules ONE event carrying the whole stretch instead of one event
per uop, and the handler bulk-completes them straight from the trace
columns.  Legality rests on three invariants:

* *Squash-freedom is per-member, not assumed.*  Batch members snapshot
  ``(uop, gen)`` at issue; a squash or spec-wakeup replay between
  issue and completion bumps the generation, so the handler skips that
  member exactly as the event loop skips a dead singleton event.
  Spec-wakeup kills run at priority 0, strictly before any same-cycle
  batch, so no member is ever bulk-completed from a revoked input.
* *Purity is re-checked at dispatch, per member.*  The batch gate is
  the singleton gate — on-trace AND every source register pure — and a
  member that fails it falls back to the ordinary functional
  completion path (:meth:`_ev_complete_alu`), marking its destination
  impure.  Purity bits read by a batch member cannot be written by
  other completions in the same cycle bucket: a same-cycle producer's
  value was not usable when the member issued, so same-bucket
  completions are always independent — which is also why completing
  them in batch order instead of interleaved singleton order is
  unobservable (wakeups insert by sequence number, and distinct
  destination registers commute).
* *Ordering within the completion priority class is preserved.*  A
  non-batchable completion (branch, JALR, JAL, wrong-path ALU) bound
  for the same cycle closes any open batch first, so the cycle
  bucket's insertion order is exactly what per-uop scheduling would
  have produced.

Loads, stores, and control never batch — live memory, the store
queue, and control resolution remain authoritative — and batching
changes *when handlers run within a phase*, never what they compute:
simulated cycles, stats, and architectural state stay bit-identical
with batching on, off, or absent (``REPRO_NO_BATCH_REPLAY=1`` or
``batch_replay=False`` force it off; the CI smoke pins equivalence).
Engagement is observable via ``replay_batch_events`` /
``replay_batch_uops`` — core attributes, deliberately not SimStats
counters, exactly like ``ff_skipped_cycles``.

Per-cycle phase order (chosen so values flow like bypass networks):

1. **commit** — retire completed micro-ops in order; ordering
   violations at the head trigger a full flush.
2. **events** — scheduled completions: spec-wakeup kills first, then
   store address/data, completions, and finally load address
   generation (so loads observe same-cycle store updates).
3. **visibility** — recompute the visibility point; the scheme releases
   untaint broadcasts / NDA deferred broadcasts here.
4. **issue** — wakeup/select in the issue queue.
5. **rename/dispatch** — pull one *fetch group* from the fetch buffer
   into ROB/IQ/LSQ (see "Batched front end" below).
6. **fetch** — follow predicted control flow.
7. **squash** — process the oldest misprediction detected this cycle.

**Batched front end.**  The rename stage is group-at-a-time, not
one-uop-at-a-time.  Each cycle :meth:`_rename_dispatch` builds one
:class:`~repro.pipeline.fetch.FetchGroup` by popping admissible fetch
entries — the stall gates run against the live back-end occupancies
*plus* the group's own in-flight reservations, so the verdicts are
bit-identical to admitting sequentially — then processes the group in
whole-group steps:

1. :meth:`RenameUnit.rename_group <repro.pipeline.rename.RenameUnit.rename_group>`
   — one in-order RAT pass: sources translated, destinations bulk-sliced
   off the free list, branch checkpoints snapshotted mid-group, so
   same-cycle dependencies chain through the group (the paper's
   Figure 2 walkthrough).  The pass also marks every allocated
   destination not-ready (``PhysRegFile.mark_alloc_group`` fused in
   via the ``reg_state`` argument) before any member meets the issue
   queue.
2. Batched admission — one ``rob.extend`` and one
   ``IssueQueue.add_group``; C-shadow casts and LDQ/STQ appends ride
   the group-build loop itself (the inlined form of
   ``LoadStoreUnit.admit_group``).
3. The scheme's ``on_rename_group`` hook — one call per group; the
   default derives per-uop hook order (checkpoint hook then rename
   hook, program order), STT-Rename overrides it with a single
   taint-RAT pass (the paper's Section 4.2 rename-time computation).

Casting all of the group's C-shadows before the scheme hook (instead
of interleaved per uop) is safe: a *younger* shadow never changes an
older sequence number's safety verdict, because the visibility point
is the *minimum* active shadow.

Micro-ops are pooled (:class:`~repro.pipeline.uop.MicroOpPool`):
commit and the squash/flush paths return them to a free list, rename
re-arms recycled ones, and steady-state simulation allocates no
micro-op objects.  The safety argument (generation monotonicity,
idempotent release, guarded stale index entries, the one
delayed-broadcast exception) lives in :mod:`repro.pipeline.uop`.

Scheduled work lives in a single event heap ordered by
``(cycle, priority, insertion order)``; :meth:`next_event_cycle`
exposes the earliest pending wake-up, which powers the idle-cycle
fast-forward below.

**Idle-cycle fast-forward.**  :meth:`run` may jump ``self.cycle``
straight to the next wake-up instead of stepping through cycles in
which the machine provably does nothing.  Skipping the window
``[cycle, target)`` is legal only when every phase above is a no-op for
every cycle in it:

* *commit* — the ROB is empty or its head is incomplete; completion
  only ever arrives via a scheduled event, so the head stays incomplete
  until at least the next event cycle.
* *events* — ``target`` never exceeds :meth:`next_event_cycle` (dead
  events of killed micro-ops may bound it early; waking on one merely
  costs an ordinary idle step).
* *visibility* — no events, renames, or squashes occur, so the
  visibility point cannot move (checked: the recomputed point equals
  ``vp_now``), and the scheme's visibility hook would not run anywhere
  in the window: the hook is *event-scheduled* — it fires only when
  the phase-3 visibility point changed since the scheme last saw it,
  when a memory-dependence speculation resolved (``d_version``
  advanced), or on a cycle the scheme booked via
  :meth:`schedule_scheme_wake` (NDA books release cycles while a
  releasable broadcast is budget-blocked, STT books the one catch-up
  cycle of its broadcast delay line).  The first two triggers are
  checked directly (they also cannot arise inside an event-free
  window); the earliest booked wake bounds ``target``.
* *issue* — the issue queue's ready list is empty; entries only become
  ready through event-driven wakeups.
* *rename* — either the front end shows no rename-visible entry (any
  buffered entry becoming visible bounds ``target``), or its oldest
  visible entry is blocked on a full back-end resource; every such
  resource (ROB, IQ, LDQ/STQ, free physical registers, checkpoints) is
  freed only by events, so the blockage — and its stall counter — is
  constant across the window.
* *fetch* — the fetch side is inert
  (:meth:`~repro.pipeline.fetch.FetchUnit.fetch_wake_cycle`): halted,
  buffer-full (rename pops nothing in-window), or redirect-stalled
  (the resume cycle bounds ``target``).

Stall attribution is then exact, not approximate: exactly one stall
counter would tick in each skipped cycle — ``stall_frontend_empty``
when nothing is rename-visible, else the blocked resource's counter
per the dispatch check order — so the skip bulk-adds
``target - cycle`` to that one counter, keeping :class:`SimStats`
bit-identical to stepping — the golden fixture in
``tests/pipeline/test_kernel_equivalence.py`` pins this.  ``target`` is
additionally capped at the watchdog and ``max_cycles`` horizons so
error paths fire at the same cycle they would when stepping.
"""

import os
from collections import deque
from dataclasses import dataclass, field, replace
from heapq import heappop, heappush
from operator import itemgetter

from repro.core.factory import make_scheme
from repro.core.plugin import SchemeBase, overridden_hook, rename_group_hook
from repro.core.shadows import C_SHADOW, D_SHADOW, ShadowTracker
from repro.frontend.branch_predictor import BranchTargetBuffer, make_predictor
from repro.isa.instructions import Opcode
from repro.isa.interp import branch_taken, evaluate_alu, to_unsigned64
from repro.isa.registers import NUM_ARCH_REGS
from repro.memsys.hierarchy import MemoryHierarchy
from repro.pipeline.config import MEGA
from repro.pipeline.fetch import FetchGroup, FetchUnit
from repro.pipeline.issue_queue import IssueQueue
from repro.pipeline.lsu import LoadStoreUnit
from repro.pipeline.regfile import READY, PhysRegFile
from repro.pipeline.rename import RenameUnit
from repro.pipeline.stats import SimStats
from repro.pipeline.uop import ADDR, DATA, WHOLE, MicroOp, MicroOpPool

# Event priorities within one cycle.
_P_SPEC_KILL = 0
_P_STORE_ADDR = 1
_P_STORE_DATA = 2
_P_COMPLETE = 3
_P_LOAD_AGEN = 4

#: Sort key for one cycle's event bucket (stable: insertion order is
#: preserved within a priority class).
_event_priority = itemgetter(0)

# Event kinds: indices into the per-core dispatch table.
_K_COMPLETE_ALU = 0
_K_LOAD_AGEN = 1
_K_LOAD_COMPLETE = 2
_K_STORE_ADDR = 3
_K_STORE_DATA = 4
_K_SPEC_READY = 5
_K_SPEC_KILL = 6
_K_REPLAY_BATCH = 7


class _BatchToken:
    """Stand-in micro-op for batch events.

    The event loop's liveness check reads ``uop.killed`` / ``uop.gen``;
    the token is never killed and never regenerated, so a batch event
    always dispatches — per-member liveness is the handler's job (each
    member carries its own ``(uop, gen)`` snapshot).
    """

    __slots__ = ()
    killed = False
    gen = 0


_BATCH_TOKEN = _BatchToken()


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    program_name: str
    scheme_name: str
    config_name: str
    stats: SimStats
    regs: list
    memory: dict
    halted: bool
    cycles: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def ipc(self):
        return self.stats.ipc

    def to_dict(self):
        """JSON-serialisable form (see :meth:`from_dict` for the inverse).

        Memory addresses become string keys (JSON objects only have
        string keys); :meth:`from_dict` converts them back to ints.
        """
        return {
            "program_name": self.program_name,
            "scheme_name": self.scheme_name,
            "config_name": self.config_name,
            "stats": self.stats.to_dict(),
            "regs": list(self.regs),
            "memory": {str(addr): value for addr, value in self.memory.items()},
            "halted": self.halted,
            "cycles": self.cycles,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a result from :meth:`to_dict` output (e.g. JSON)."""
        return cls(
            program_name=data["program_name"],
            scheme_name=data["scheme_name"],
            config_name=data["config_name"],
            stats=SimStats.from_dict(data["stats"]),
            regs=list(data["regs"]),
            memory={int(addr): value for addr, value in data["memory"].items()},
            halted=data["halted"],
            cycles=data.get("cycles", 0),
            extra=dict(data.get("extra", {})),
        )


class OoOCore:
    """Cycle-level out-of-order core with pluggable secure schemes."""

    def __init__(
        self,
        program,
        config=None,
        scheme=None,
        max_cycles=5_000_000,
        watchdog_cycles=50_000,
        warm_caches=False,
        trace=None,
        batch_replay=None,
        account=None,
        tracer=None,
    ):
        self.program = program
        program.validate()
        self.config = config or MEGA
        self.config.validate()
        if scheme is None:
            scheme = make_scheme("baseline")
        elif isinstance(scheme, str):
            scheme = make_scheme(scheme)
        if not isinstance(scheme, SchemeBase):
            raise TypeError("scheme must be a SchemeBase or scheme name")
        self.scheme = scheme
        self.max_cycles = max_cycles
        self.watchdog_cycles = watchdog_cycles
        # Devirtualised scheme hooks (None = default no-op, skipped).
        # Rename-side hooks dispatch as one group call per cycle; the
        # resolver falls back to the derived per-uop loop when only the
        # per-uop hooks are overridden.
        self._scheme_on_rename_group = rename_group_hook(scheme)
        self._scheme_on_visibility_update = overridden_hook(
            scheme, "on_visibility_update")
        self._scheme_on_load_complete = overridden_hook(
            scheme, "on_load_complete")

        # Observability sinks (see repro.obs): devirtualised like the
        # scheme hooks — None means every call site is skipped and the
        # disabled path stays byte-identical to a sink-free build.
        self._obs_account = account
        self._obs_tracer = tracer

        cfg = self.config
        self.stats = SimStats()
        self.prf = PhysRegFile(cfg.num_phys_regs)
        for reg, value in program.initial_regs.items():
            if reg != 0:
                self.prf.values[reg] = value
        self.memory = {
            to_unsigned64(addr): value
            for addr, value in program.initial_memory.items()
        }
        self.hierarchy = MemoryHierarchy(cfg.mem)
        if warm_caches and self.memory:
            self.hierarchy.warm(self.memory.keys(), level="l2")
        self.rename = RenameUnit(cfg.num_phys_regs, cfg.max_branches)
        self.rob = deque()
        self.iq = IssueQueue(self)
        # The register file doubles as the wakeup bus: readiness
        # transitions drive the issue queue's scheduling index.
        self.prf.listener = self.iq
        self.lsu = LoadStoreUnit(self)
        self.shadows = ShadowTracker()
        self.predictor = make_predictor(cfg.branch_predictor)
        self.btb = BranchTargetBuffer(cfg.btb_entries)
        # Trace replay (see the module docstring): the recorded outcome
        # columns plus the per-physical-register purity bitmap.  All
        # None / absent when no trace is attached — every replay site
        # gates on ``self._pure is not None`` and costs the functional
        # machine nothing.
        if trace is not None:
            trace.check_program(program)
            pure = bytearray(cfg.num_phys_regs)
            for preg in range(NUM_ARCH_REGS):
                # Initial identity mappings hold architectural values.
                pure[preg] = 1
            self._pure = pure
            # Boxed list views: array subscripts re-box per read, and
            # these columns are read per replayed uop (see
            # DynamicTrace.replay_columns).
            tr_next, tr_results, tr_addrs = trace.replay_columns()
            self._tr_next = tr_next
            self._tr_results = tr_results
            self._tr_addrs = tr_addrs
            self._tr_taken = trace.taken
        else:
            self._pure = None
            self._tr_next = None
            self._tr_results = None
            self._tr_addrs = None
            self._tr_taken = None
        # Batch replay (see the module docstring): coalesce same-cycle
        # plain-ALU replay completions into one event.  Defaults on
        # whenever a trace is attached; REPRO_NO_BATCH_REPLAY=1 (or
        # batch_replay=False) forces the per-uop stepping path, which
        # must stay bit-identical — the CI smoke pins it.
        if batch_replay is None:
            batch_replay = not os.environ.get("REPRO_NO_BATCH_REPLAY")
        self._batch_replay = bool(batch_replay) and trace is not None
        self.fetch = FetchUnit(self, program, self.predictor, self.btb,
                               trace=trace)
        # Resolve the predictor-training entry points once instead of
        # re-dispatching via hasattr per committed branch.
        self._predictor_update = self.predictor.update
        self._predictor_update_with_history = getattr(
            self.predictor, "update_with_history", None
        )

        self.cycle = 0
        self.next_seq = 0
        self.vp_now = 0
        # Loads that executed past older stores with unknown addresses
        # (their data is unverified until those stores check aliasing).
        self.d_pending = {}
        #: Bumped on every d_pending *removal* (a resolution can make a
        #: withheld broadcast releasable); one of the scheme hook's
        #: three triggers.
        self.d_version = 0
        # Earliest scheme-booked visibility-hook cycle (None = no
        # booking) and the (visibility point, d_version) the scheme
        # last observed — the hook's other two triggers.  -1 never
        # equals a real visibility point, so the hook always fires on
        # cycle 0 exactly like the old polled dispatch did.
        self._scheme_wake_at = None
        self._scheme_seen_vp = -1
        self._scheme_seen_d = 0
        self.halted = False
        # Scheduled work: per-cycle buckets of (priority, kind, uop,
        # gen, payload) plus a min-heap of bucket cycles.  One heap push
        # per *distinct* wake-up cycle (not per event) keeps scheduling
        # cheap on busy cycles while next_event_cycle() stays O(1).
        self._event_buckets = {}
        self._event_cycles = []
        self._event_dispatch = (
            self._ev_complete_alu,
            self._ev_load_agen,
            self._ev_load_complete,
            self._ev_store_addr,
            self._ev_store_data,
            self._ev_spec_ready,
            self._ev_spec_kill,
            self._ev_replay_batch,
        )
        # Micro-op recycling and the reusable rename-group container
        # (cleared each cycle, never reallocated).
        self._uop_pool = MicroOpPool()
        self._group = FetchGroup()
        self._pending_squash = None
        self._div_busy_until = 0
        self._last_commit_cycle = 0
        self._instruction_limit = None
        #: Cycles elided by idle-cycle fast-forward (diagnostic only;
        #: deliberately not a SimStats counter so results stay
        #: bit-identical to pure stepping).
        self.ff_skipped_cycles = 0
        #: Batch-replay engagement (diagnostic only, same discipline):
        #: batch events dispatched, and members bulk-completed straight
        #: from the trace columns (fallback members are not counted).
        self.replay_batch_events = 0
        self.replay_batch_uops = 0

        if account is not None:
            account.attach(self)
        if tracer is not None:
            tracer.attach(self)
        scheme.attach(self)

    # ------------------------------------------------------------------
    # Public driving interface.
    # ------------------------------------------------------------------

    def run(self, max_instructions=None):
        """Simulate until the program halts; returns a SimulationResult.

        ``max_instructions`` optionally stops the run once that many
        instructions have committed (for fixed-work measurement runs).
        """
        self._instruction_limit = max_instructions
        while not self.halted:
            if self.cycle >= self.max_cycles:
                raise RuntimeError(
                    "simulation exceeded %d cycles (%s on %s/%s)"
                    % (
                        self.max_cycles,
                        self.program.name,
                        self.config.name,
                        self.scheme.name,
                    )
                )
            if self.cycle - self._last_commit_cycle > self.watchdog_cycles:
                raise RuntimeError(self._deadlock_report())
            self.step()
            if not self.halted:
                self._fast_forward()
        return self.result()

    def step(self):
        """Advance the machine by one clock cycle."""
        account = self._obs_account
        if account is None:
            self._commit()
        else:
            before = self.stats.committed_instructions
            self._commit()
            account.note_cycle(
                self, self.stats.committed_instructions - before)
        if self.halted:
            self.stats.cycles = self.cycle + 1
            return
        self._process_events()
        self._update_visibility()
        self._issue()
        self._rename_dispatch()
        self.fetch.do_cycle(self.cycle)
        self._process_squash()
        self.cycle += 1
        self.stats.cycles = self.cycle

    def result(self):
        """Snapshot the architectural state into a SimulationResult."""
        regs = [0] * NUM_ARCH_REGS
        for arch in range(1, NUM_ARCH_REGS):
            regs[arch] = self.prf.read(self.rename.arch_rat[arch])
        # Merge scheme/hierarchy counters into a snapshot copy: the live
        # self.stats stays untouched, so result() is idempotent.
        extra = dict(self.stats.extra)
        extra.update(self.scheme.extra_stats())
        extra.update(self.hierarchy.stats())
        if self._obs_account is not None:
            extra.update(self._obs_account.as_extra())
        stats = replace(self.stats, extra=extra)
        return SimulationResult(
            program_name=self.program.name,
            scheme_name=self.scheme.name,
            config_name=self.config.name,
            stats=stats,
            regs=regs,
            memory=dict(self.memory),
            halted=self.halted,
            cycles=stats.cycles,
        )

    # ------------------------------------------------------------------
    # Idle-cycle fast-forward.
    # ------------------------------------------------------------------

    def _fast_forward(self):
        """Jump over cycles in which every pipeline phase is a no-op.

        See the module docstring for the full legality argument.  Runs
        between :meth:`step` calls, so ``self.cycle`` is always at a
        clean cycle boundary.
        """
        rob = self.rob
        if rob and rob[0].completed:
            return  # commit (or an ordering-violation flush) has work
        if self.iq.has_ready():
            return  # select could issue, waste a slot, or count a block
        vp = self.shadows.visibility_point()
        if self.vp_now != (self.next_seq if vp is None else vp):
            return  # visibility point still moving this cycle
        scheme_wake = None
        if self._scheme_on_visibility_update is not None:
            if (self.vp_now != self._scheme_seen_vp
                    or self.d_version != self._scheme_seen_d):
                return  # the scheme's visibility hook would fire now
            scheme_wake = self._scheme_wake_at

        cycle = self.cycle
        fetch = self.fetch
        # Error horizons first, so deadlocks and runaway simulations
        # surface at exactly the cycle stepping would report.
        target = self._last_commit_cycle + self.watchdog_cycles + 1
        if self.max_cycles < target:
            target = self.max_cycles

        # Rename side: either the front end shows nothing (frontend
        # stall) or its oldest entry is blocked on a full back-end
        # resource — one that only an event-driven commit, squash, or
        # branch resolution can free, so it stays blocked (on the same
        # counter) for the whole window.
        entry = fetch.peek_ready(cycle)
        if entry is not None:
            stall_counter = self._rename_block(entry)
            if stall_counter is None:
                return  # rename would dispatch this cycle
        else:
            stall_counter = "stall_frontend_empty"
            if fetch.queue:
                # peek_ready returned None, so this lies in the future.
                visible_at = (fetch.queue[0].fetch_cycle
                              + self.config.frontend_depth)
                if visible_at < target:
                    target = visible_at

        # Fetch side must be inert for the whole window: halted or
        # buffer-full (no wake without rename pops, which cannot happen
        # in-window), or redirect-stalled (bounds the window).
        fetch_wake = fetch.fetch_wake_cycle(cycle)
        if fetch_wake is not None:
            if fetch_wake <= cycle:
                return  # fetch would fetch this cycle
            if fetch_wake < target:
                target = fetch_wake

        next_event = self.next_event_cycle()
        if next_event is not None:
            if next_event <= cycle:
                return  # an event is due this very cycle
            if next_event < target:
                target = next_event
        if scheme_wake is not None:
            if scheme_wake <= cycle:
                return  # a booked scheme wake is due this very cycle
            if scheme_wake < target:
                target = scheme_wake
        if target <= cycle:
            return

        skipped = target - cycle
        # The only per-cycle side effect of the skipped window: rename
        # charged one stall (renamed == 0) to the same cause each cycle.
        stats = self.stats
        setattr(stats, stall_counter,
                getattr(stats, stall_counter) + skipped)
        if self._obs_account is not None:
            # State is provably frozen across the window, so the
            # window-start classification holds for every skipped cycle.
            self._obs_account.note_skip(self, skipped)
        self.cycle = target
        stats.cycles = target
        self.ff_skipped_cycles += skipped

    def _rename_block(self, entry):
        """Stall counter blocking ``entry`` from dispatching this cycle,
        or ``None`` if it would dispatch.

        The reference form of the rename stall gates, probed by the
        idle-cycle fast-forward on the oldest visible entry: every
        named resource is freed only by events (commit, squash, branch
        resolution), so a blocked verdict holds, on the same counter,
        for a whole event-free window.

        :meth:`_rename_dispatch` applies these same gates inline, as
        *room counters*: each capacity below is read once at the start
        of the group build and decremented per admitted entry.  The two
        forms cannot diverge — nothing mutates any of these structures
        between the reads and the group's dispatch, so "live occupancy
        plus in-group reservations" is exactly "occupancy re-read after
        each sequential admission" — and for the fast-forward's probe
        (first entry, no reservations) the forms are identical by
        construction.  The golden fixture pins every stall counter
        across both paths.
        """
        cfg = self.config
        instr = entry.instr
        info = instr.info
        if len(self.rob) >= cfg.rob_entries:
            return "stall_rob_full"
        if len(self.iq.entries) >= cfg.iq_entries:
            return "stall_iq_full"
        if info.is_load and len(self.lsu.ldq) >= cfg.ldq_entries:
            return "stall_ldq_full"
        if info.is_store and len(self.lsu.stq) >= cfg.stq_entries:
            return "stall_stq_full"
        if instr.writes_rd and not self.rename.free_list:
            return "stall_no_phys_regs"
        if info.casts_c_shadow and self.rename.free_checkpoints() == 0:
            return "stall_no_checkpoint"
        return None

    # ------------------------------------------------------------------
    # Commit.
    # ------------------------------------------------------------------

    def _commit(self):
        rob = self.rob
        if not rob or not rob[0].completed:
            return
        committed = 0
        width = self.config.width
        stats = self.stats
        cycle = self.cycle
        prf_state = self.prf.state
        pool_free = self._uop_pool._free
        tracer = self._obs_tracer
        while rob and committed < width:
            head = rob[0]
            if not head.completed:
                break
            if head.order_violation:
                self._flush_all(head)
                return
            rob.popleft()
            head.committed = True
            head.commit_cycle = cycle
            self._last_commit_cycle = cycle
            committed += 1
            stats.committed_instructions += 1
            if tracer is not None:
                tracer.on_retire(head, cycle)

            if head.op_is_store:
                self.memory[head.address] = head.mem_value
                self.hierarchy.access(
                    head.address, pc=head.pc, is_write=True, train_prefetcher=False
                )
                self.lsu.commit_store(head)
                stats.committed_stores += 1
            elif head.op_is_load:
                self.lsu.commit_load(head)
                stats.committed_loads += 1
            elif head.op_is_branch:
                stats.committed_branches += 1
                self._train_predictor(head)
            else:
                op = head.instr.op
                if op is Opcode.JALR:
                    self.btb.update(head.pc, head.actual_target)
                elif op is Opcode.HALT:
                    self.rename.commit(head)
                    self.halted = True
                    return
            self.rename.commit(head)
            # Retired micro-op back to the pool (inlined release) —
            # unless its ready broadcast is still withheld by a
            # delayed-broadcast scheme (NDA family, budget-blocked past
            # commit: the one holder that outlives retirement; see
            # repro.pipeline.uop).
            if (head.prd is None or prf_state[head.prd] == READY) and (
                not head.in_pool
            ):
                head.in_pool = True
                pool_free.append(head)

            if (
                self._instruction_limit is not None
                and stats.committed_instructions >= self._instruction_limit
            ):
                self.halted = True
                return

    def _train_predictor(self, uop):
        update_with_history = self._predictor_update_with_history
        if update_with_history is not None and uop.ghr_at_predict is not None:
            update_with_history(uop.pc, uop.taken, uop.ghr_at_predict)
        else:
            self._predictor_update(uop.pc, uop.taken)

    # ------------------------------------------------------------------
    # Event machinery.
    # ------------------------------------------------------------------

    def _schedule(self, cycle, priority, kind, uop, payload=None):
        bucket = self._event_buckets.get(cycle)
        if bucket is None:
            self._event_buckets[cycle] = bucket = []
            heappush(self._event_cycles, cycle)
        bucket.append((priority, kind, uop, uop.gen, payload))

    def next_event_cycle(self):
        """Cycle of the earliest scheduled event, or ``None``.

        May name a dead event (killed or superseded micro-op): callers
        treating it as a wake-up bound merely wake to an idle cycle.
        """
        return self._event_cycles[0] if self._event_cycles else None

    def schedule_load_complete(self, uop, cycle, value):
        self._schedule(max(cycle, self.cycle + 1), _P_COMPLETE,
                       _K_LOAD_COMPLETE, uop, value)

    def schedule_spec_wakeup(self, uop, cycle):
        """A load that missed still wakes consumers at hit latency; the
        wakeup is killed one cycle later (replay penalty)."""
        self._schedule(cycle, _P_COMPLETE, _K_SPEC_READY, uop)
        self._schedule(cycle + 1, _P_SPEC_KILL, _K_SPEC_KILL, uop)

    def _process_events(self):
        cycles = self._event_cycles
        cycle = self.cycle
        if not cycles or cycles[0] > cycle:
            return
        # Snapshot this cycle's bucket before dispatching: handlers only
        # ever schedule strictly-future work, so the bucket is complete
        # when its cycle arrives.  (Past-cycle heap entries cannot
        # exist; draining any would match the old model, which never
        # revisited them.)
        while cycles and cycles[0] <= cycle:
            heappop(cycles)
        batch = self._event_buckets.pop(cycle, None)
        if not batch:
            return
        # Stable priority sort preserves scheduling order within one
        # priority class, exactly like the per-cycle bucket always did.
        batch.sort(key=_event_priority)
        dispatch = self._event_dispatch
        for _priority, kind, uop, gen, payload in batch:
            if uop.killed or uop.gen != gen:
                continue
            dispatch[kind](uop, payload)

    def _ev_complete_alu(self, uop, _payload=None):
        instr = uop.instr
        op = instr.op
        prs1 = uop.prs1
        prs2 = uop.prs2
        pure = self._pure
        if pure is not None:
            # Replay gate: on-trace with provably-architectural sources
            # means the recorded outcome is this uop's outcome.
            if (
                uop.trace_index >= 0
                and (prs1 is None or pure[prs1])
                and (prs2 is None or pure[prs2])
            ):
                self._replay_complete(uop, op, uop.trace_index)
                return

        values = self.prf.values
        a = values[prs1] if prs1 is not None else 0
        b = values[prs2] if prs2 is not None else 0

        if uop.op_is_branch:
            uop.taken = branch_taken(op, a, b)
            uop.actual_target = instr.imm if uop.taken else uop.pc + 1
            self._resolve_control(uop, uop.taken != uop.pred_taken)
        elif op is Opcode.JALR:
            uop.actual_target = to_unsigned64(a + instr.imm)
            uop.result = uop.pc + 1
            self._resolve_control(uop, uop.actual_target != uop.pred_target)
        elif op is Opcode.JAL:
            uop.result = uop.pc + 1
        elif op is Opcode.NOP or op is Opcode.HALT:
            uop.result = 0
        else:
            uop.result = evaluate_alu(op, a, b, instr.imm)

        if uop.prd is not None:
            if pure is not None:
                # Functional fallback ran: off-trace or impure inputs —
                # the value may differ from the trace column.
                pure[uop.prd] = 0
            self.prf.write(uop.prd, uop.result)
            self.iq.confirm_spec(uop.prd)
        uop.completed = True
        uop.complete_cycle = self.cycle

    def _replay_complete(self, uop, op, ti):
        """Complete an on-trace, pure-source uop from the trace columns.

        Bit-identical to the functional path by the purity invariant:
        the sources hold their architectural values, so the evaluator
        would compute exactly the recorded result / direction / target.
        Control resolution (and mis-speculation handling) is unchanged —
        only the *evaluation* is skipped.
        """
        if uop.op_is_branch:
            taken = self._tr_taken[ti] == 1
            uop.taken = taken
            uop.actual_target = self._tr_next[ti]
            self._resolve_control(uop, taken != uop.pred_taken)
        elif op is Opcode.JALR:
            uop.actual_target = self._tr_next[ti]
            uop.result = uop.pc + 1
            self._resolve_control(uop, uop.actual_target != uop.pred_target)
        elif op is Opcode.JAL:
            uop.result = uop.pc + 1
        elif op is Opcode.NOP or op is Opcode.HALT:
            uop.result = 0
        else:
            uop.result = self._tr_results[ti]

        prd = uop.prd
        if prd is not None:
            self._pure[prd] = 1
            self.prf.write(prd, uop.result)
            self.iq.confirm_spec(prd)
        uop.completed = True
        uop.complete_cycle = self.cycle

    def _ev_replay_batch(self, _token, members):
        """Bulk-complete one issued stretch of plain-ALU replay
        candidates from the trace columns.

        Each member is an issue-time ``(uop, gen)`` snapshot.  Dead
        members (squashed or wakeup-replayed since issue) are skipped
        exactly as the event loop skips dead singletons; members whose
        sources went impure since issue fall back to the singleton
        functional path.  See "Batch replay" in the module docstring
        for why batch order within the completion class is
        unobservable.
        """
        pure = self._pure
        results = self._tr_results
        write = self.prf.write
        confirm_spec = self.iq.confirm_spec
        cycle = self.cycle
        replayed = 0
        for uop, gen in members:
            if uop.killed or uop.gen != gen:
                continue
            prs1 = uop.prs1
            prs2 = uop.prs2
            ti = uop.trace_index
            if (
                ti >= 0
                and (prs1 is None or pure[prs1])
                and (prs2 is None or pure[prs2])
            ):
                uop.result = result = results[ti]
                prd = uop.prd
                if prd is not None:
                    pure[prd] = 1
                    write(prd, result)
                    confirm_spec(prd)
                uop.completed = True
                uop.complete_cycle = cycle
                replayed += 1
            else:
                self._ev_complete_alu(uop)
        self.replay_batch_events += 1
        self.replay_batch_uops += replayed

    def _ev_load_agen(self, uop, _payload=None):
        self.lsu.load_agen(uop, self.cycle)

    def _resolve_control(self, uop, mispredicted):
        self.shadows.resolve(uop.seq)
        if mispredicted:
            uop.mispredicted = True
            if (
                self._pending_squash is None
                or uop.seq < self._pending_squash.seq
            ):
                self._pending_squash = uop
        elif uop.checkpoint_id is not None:
            self.rename.release_checkpoint(uop.checkpoint_id)
            uop.checkpoint_id = None

    def _ev_store_addr(self, uop, _payload=None):
        prs1 = uop.prs1
        pure = self._pure
        if (
            pure is not None
            and uop.trace_index >= 0
            and (prs1 is None or pure[prs1])
        ):
            uop.address = self._tr_addrs[uop.trace_index]
            uop.addr_pure = True
        else:
            base = self.prf.values[prs1] if prs1 is not None else 0
            uop.address = to_unsigned64(base + uop.instr.imm)
        uop.addr_done = True
        self.lsu.store_addr_ready(uop, self.cycle)
        if uop.data_done:
            uop.completed = True
            uop.complete_cycle = self.cycle

    def _ev_store_data(self, uop, _payload=None):
        prs2 = uop.prs2
        # The stored value itself always comes from the register file —
        # stores feed the live memory image, which stays authoritative —
        # but its purity is tracked so forwarded loads know whether the
        # value they received is architectural.
        uop.mem_value = self.prf.values[prs2] if prs2 is not None else 0
        pure = self._pure
        if pure is not None:
            uop.val_pure = uop.trace_index >= 0 and (
                prs2 is None or pure[prs2] == 1)
        uop.data_done = True
        self.lsu.store_data_ready(uop, self.cycle)
        if uop.addr_done:
            uop.completed = True
            uop.complete_cycle = self.cycle

    def _ev_load_complete(self, uop, value):
        uop.mem_value = value
        uop.result = value
        uop.completed = True
        uop.complete_cycle = self.cycle
        if uop.prd is not None:
            pure = self._pure
            if pure is not None:
                # Loads never take values from the trace (stale-read
                # transients must reproduce); the LSU decided whether
                # this value is provably architectural.
                pure[uop.prd] = 1 if uop.val_pure else 0
            self.prf.write_value_only(uop.prd, value)
            hook = self._scheme_on_load_complete
            if hook is None or hook(uop, self.cycle):
                self.prf.set_ready(uop.prd)
                self.iq.confirm_spec(uop.prd)

    def _ev_spec_ready(self, uop, _payload=None):
        self.prf.set_spec_ready(uop.prd)

    def _ev_spec_kill(self, uop, _payload=None):
        self.prf.revoke_spec(uop.prd)
        replayed = self.iq.kill_spec(uop.prd)
        if replayed:
            self.stats.replayed_uops += len(replayed)
            self.stats.wasted_issue_slots += len(replayed)
        self.stats.spec_wakeup_kills += 1

    # ------------------------------------------------------------------
    # Visibility point.
    # ------------------------------------------------------------------

    def is_load_safe(self, seq):
        """Is the load with sequence ``seq`` bound-to-commit?

        Safe means: no older control shadow is active (Section 6's
        C-shadows) *and* the load's own memory-dependence speculation,
        if any, has been verified (its D-shadow; a load that executed
        past an older store with an unknown address stays speculative
        until every such store has checked for aliasing).
        """
        return seq <= self.vp_now and seq not in self.d_pending

    def schedule_scheme_wake(self, cycle):
        """Book the scheme's visibility hook for ``cycle`` (or sooner).

        Schemes call this from :meth:`on_visibility_update` when their
        state must advance again on a later cycle even if nothing else
        happens (NDA's budget-blocked releases, STT's broadcast
        catch-up).  Booked cycles also bound the idle-cycle
        fast-forward, so a wake is never skipped.

        Bookings coalesce into a single earliest-cycle slot: the hook
        is guaranteed to run *at or before* every booked cycle, and a
        scheme must re-derive its needs — and re-book — on every
        invocation (both built-in users recompute their release /
        catch-up state from scratch each call, so this costs nothing
        and keeps the per-cycle bookkeeping a lone integer).
        """
        current = self._scheme_wake_at
        if current is None or cycle < current:
            self._scheme_wake_at = cycle

    def _update_visibility(self):
        vp = self.shadows.visibility_point()
        self.vp_now = vp_now = self.next_seq if vp is None else vp
        hook = self._scheme_on_visibility_update
        if hook is None:
            return
        # Event-scheduled dispatch: run the hook only when one of its
        # triggers fired — a booked wake falling due, a visibility
        # point the scheme has not seen, or a memory-dependence
        # resolution since the last call.  Each call observes the same
        # (vp_now, d_pending) state the old per-cycle dispatch showed
        # it, so scheme behaviour is bit-identical; the skipped calls
        # are exactly the ones that were provable no-ops.
        wake = self._scheme_wake_at
        if wake is not None and wake <= self.cycle:
            self._scheme_wake_at = None
        elif (vp_now == self._scheme_seen_vp
                and self.d_version == self._scheme_seen_d):
            return
        self._scheme_seen_vp = vp_now
        self._scheme_seen_d = self.d_version
        hook(self.cycle)

    # ------------------------------------------------------------------
    # Issue.
    # ------------------------------------------------------------------

    def div_free(self, cycle):
        return cycle >= self._div_busy_until

    def _issue(self):
        issued = self.iq.select_and_issue(self.cycle)
        if not issued:
            return
        cycle = self.cycle
        buckets = self._event_buckets
        cycles_heap = self._event_cycles
        # A lone issued half can never form a batch of two; skip the
        # accumulator bookkeeping outright (singleton emission is
        # identical to batching off).
        batching = self._batch_replay and len(issued) > 1
        # Open batches for this issue pass: completion cycle -> ordered
        # (uop, gen) members.  Flushed before any non-batch completion
        # bound for the same cycle (order within the completion class
        # must match per-uop scheduling), and drained at the end.
        pending = None
        for uop, half in issued:
            # Inlined _schedule (hot path: one event per issued half).
            if uop.op_is_load:
                when = cycle + 1
                event = (_P_LOAD_AGEN, _K_LOAD_AGEN, uop, uop.gen, None)
            elif uop.op_is_store:
                when = cycle + 1
                if half == ADDR:
                    event = (_P_STORE_ADDR, _K_STORE_ADDR, uop, uop.gen, None)
                else:
                    event = (_P_STORE_DATA, _K_STORE_DATA, uop, uop.gen, None)
            else:
                # Every OPCODE_INFO latency is >= 1, so no clamp needed.
                latency = uop.op_latency
                if uop.op_is_div:
                    self._div_busy_until = cycle + latency
                if uop.op_is_branch or uop.instr.op is Opcode.JALR:
                    # Branches resolve deeper in the pipeline: their
                    # shadow stays open through regread/execute/BRU.
                    latency += self.config.branch_resolve_extra
                when = cycle + latency
                if batching and uop.op_is_plain and uop.trace_index >= 0:
                    # Replay candidate: accumulate instead of emitting
                    # an event now; same-completion-cycle candidates
                    # coalesce into one batch event.
                    if pending is None:
                        pending = {}
                    members = pending.get(when)
                    if members is None:
                        pending[when] = members = []
                    members.append((uop, uop.gen))
                    continue
                event = (_P_COMPLETE, _K_COMPLETE_ALU, uop, uop.gen, None)
                if pending is not None:
                    members = pending.pop(when, None)
                    if members is not None:
                        # A non-batch completion is joining the same
                        # cycle: emit the (older) open batch first so
                        # insertion order within the priority class is
                        # exactly the per-uop order.
                        self._emit_batch(when, members, buckets,
                                         cycles_heap)
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = bucket = []
                heappush(cycles_heap, when)
            bucket.append(event)
        if pending:
            for when, members in pending.items():
                self._emit_batch(when, members, buckets, cycles_heap)

    def _emit_batch(self, when, members, buckets, cycles_heap):
        """Schedule one issue pass's replay candidates for ``when``.

        A lone candidate goes out as the ordinary singleton completion
        event — identical to batching off — so batch machinery only
        ever engages for stretches of at least two.
        """
        if len(members) == 1:
            uop, gen = members[0]
            event = (_P_COMPLETE, _K_COMPLETE_ALU, uop, gen, None)
        else:
            event = (_P_COMPLETE, _K_REPLAY_BATCH, _BATCH_TOKEN, 0, members)
        bucket = buckets.get(when)
        if bucket is None:
            buckets[when] = bucket = []
            heappush(cycles_heap, when)
        bucket.append(event)

    # ------------------------------------------------------------------
    # Rename / dispatch.
    # ------------------------------------------------------------------

    def _rename_dispatch(self):
        cfg = self.config
        cycle = self.cycle
        stats = self.stats
        fetch = self.fetch
        queue = fetch.queue
        rename = self.rename
        lsu = self.lsu
        width = cfg.width
        depth = cfg.frontend_depth

        # Nothing rename-visible this cycle: charge the front-end stall
        # and skip the whole group setup (the common case for low-IPC
        # cells between fast-forward windows).
        if not queue or queue[0].fetch_cycle + depth > cycle:
            stats.stall_frontend_empty += 1
            return

        # ---- build the fetch group: pop admissible entries -----------
        # The stall gates are _rename_block's, inlined: checked against
        # a cycle-start occupancy snapshot plus the group's own
        # in-flight reservations (the counters below).  Nothing else
        # mutates ROB/IQ occupancy, the free list, or the checkpoint
        # pool until the group dispatches — and the LDQ/STQ, which *do*
        # grow inside the loop, are read live — so every verdict, and
        # every charged stall counter, matches sequential
        # one-uop-at-a-time admission (and the fast-forward's
        # _rename_block probe).  When every resource covers a
        # full-width group, the per-entry checks are skipped outright:
        # no entry consumes more than one unit of each.
        rob_len = len(self.rob)
        iq_len = len(self.iq.entries)
        regs_free = len(rename.free_list)
        cps_free = rename.max_branches - len(rename._checkpoints)
        ldq = lsu.ldq
        stq = lsu.stq
        gated = (rob_len + width > cfg.rob_entries
                 or iq_len + width > cfg.iq_entries
                 or len(ldq) + width > cfg.ldq_entries
                 or len(stq) + width > cfg.stq_entries
                 or regs_free < width or cps_free < width)
        group = self._group
        group.clear()
        pool = self._uop_pool
        pool_free = pool._free
        entry_pool = fetch._entry_pool
        shadows = self.shadows
        next_seq = self.next_seq
        n = 0
        n_dests = 0
        n_cps = 0
        while n < width:
            if n:
                # Inlined FetchUnit.peek_ready (the first entry's
                # visibility was checked above).
                if not queue or queue[0].fetch_cycle + depth > cycle:
                    break
            entry = queue[0]
            instr = entry.instr
            info = instr.info
            if gated:
                # _rename_block's gates, same check order (stall
                # attribution must match); each classification bit
                # derives just before the gate that consumes it.
                if rob_len + n >= cfg.rob_entries:
                    stats.stall_rob_full += 1
                    break
                if iq_len + n >= cfg.iq_entries:
                    stats.stall_iq_full += 1
                    break
                is_load = info.is_load
                is_store = info.is_store
                if is_load and len(ldq) >= cfg.ldq_entries:
                    stats.stall_ldq_full += 1
                    break
                if is_store and len(stq) >= cfg.stq_entries:
                    stats.stall_stq_full += 1
                    break
                needs_dest = instr.writes_rd
                if needs_dest and n_dests >= regs_free:
                    stats.stall_no_phys_regs += 1
                    break
                casts_c_shadow = info.casts_c_shadow
                if casts_c_shadow and n_cps >= cps_free:
                    stats.stall_no_checkpoint += 1
                    break
            else:
                is_load = info.is_load
                is_store = info.is_store
                needs_dest = instr.writes_rd
                casts_c_shadow = info.casts_c_shadow

            queue.popleft()
            # Inlined MicroOpPool.acquire (hot path: one per uop).
            if pool_free:
                uop = pool_free.pop()
                uop.in_pool = False
                uop.reset(next_seq, entry.pc, instr, entry.fetch_cycle)
                if is_load or is_store:
                    # Only memory uops read the cold memory-side slots;
                    # everything else skips their re-arm (see the slot
                    # partition in repro.pipeline.uop).
                    uop.reset_mem()
            else:
                uop = MicroOp(next_seq, entry.pc, instr, entry.fetch_cycle)
                pool.allocated += 1
            next_seq += 1
            uop.rename_cycle = cycle
            uop.in_rob = True
            uop.pred_taken = entry.pred_taken
            uop.pred_target = entry.pred_target
            uop.ghr_at_predict = entry.ghr_before
            uop.trace_index = entry.trace_index
            entry_pool.append(entry)
            group.append(uop)
            n += 1
            if is_load:
                # LDQ/STQ allocation folded into the group build (the
                # batched form of LoadStoreUnit.admit_group): program
                # order is preserved and nothing observes the queues
                # before the group dispatches.
                ldq.append(uop)
            elif is_store:
                stq.append(uop)
            if needs_dest:
                n_dests += 1
            if casts_c_shadow:
                # Casting the C-shadow at group build (rather than after
                # the RAT pass) is equivalent: nothing reads the shadow
                # set until the scheme hook, and a younger shadow never
                # changes an older seq's safety verdict.
                shadows.cast(uop.seq, C_SHADOW)
                n_cps += 1
        if not n:
            return  # first entry blocked: stall charged, nothing to do
        self.next_seq = next_seq

        # ---- one in-order RAT pass over the whole group --------------
        # The pass also marks the allocated destinations not-ready
        # (mark_alloc_group fused in via reg_state).  1-uop groups —
        # the steady state of low-IPC cells (fence serialisation,
        # chronic mispredicts) — take the dedicated solo path and skip
        # the group-iteration overhead entirely.
        if n == 1:
            solo = group[0]
            rename.rename_solo(solo, self.prf.state)
            self.rob.append(solo)
            self.iq.add(solo)
        else:
            rename.rename_group(group, self.prf.state)

            # ---- batched downstream admission ------------------------
            self.rob.extend(group)
            self.iq.add_group(group)

        # ---- scheme hook: one call per group -------------------------
        hook = self._scheme_on_rename_group
        if hook is not None:
            hook(group)

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------

    def _process_squash(self):
        uop = self._pending_squash
        self._pending_squash = None
        if uop is None or uop.killed:
            return
        if uop.is_branch:
            self.stats.branch_mispredicts += 1
        else:
            self.stats.jalr_mispredicts += 1

        seq = uop.seq
        # The ROB is age-ordered: peel the squashed suffix off the back
        # in one pass instead of partitioning the whole deque twice.
        rob = self.rob
        squashed = []
        while rob and rob[-1].seq > seq:
            victim = rob.pop()
            victim.kill()
            squashed.append(victim)
        squashed.reverse()  # oldest-first, as recovery consumers expect
        if self._obs_tracer is not None:
            # Capture before the issue queue destroys scheduler state.
            self._obs_tracer.on_squash_batch(squashed, self.cycle)
        self.iq.squash_younger(seq)
        self.lsu.squash_younger(seq)
        self.shadows.squash_younger(seq)
        stale_d = [k for k, u in self.d_pending.items() if u.killed]
        if stale_d:
            for stale in stale_d:
                del self.d_pending[stale]
            self.d_version += 1

        checkpoint = self.rename.restore_checkpoint(uop.checkpoint_id, squashed)
        uop.checkpoint_id = None
        self.predictor.restore(checkpoint.ghr)
        if uop.is_branch:
            self.predictor.push_history(uop.taken)
        self.scheme.on_checkpoint_restore(uop, checkpoint)

        # Trace re-entry: a squash recovers onto the trace only when the
        # mispredicting uop was itself on-trace and its resolved target
        # is the recorded architectural successor — then the next fetch
        # is provably the next trace step.  (The target check matters
        # for replayed control: an off-path resolution of an on-trace
        # branch would otherwise relabel wrong-path fetches.)
        pos = -1
        tr_next = self._tr_next
        if tr_next is not None:
            ti = uop.trace_index
            if (
                ti >= 0
                and ti + 1 < len(tr_next)
                and uop.actual_target == tr_next[ti]
            ):
                pos = ti + 1
        self.fetch.redirect(
            uop.actual_target, self.cycle + 1 + self.config.redirect_penalty,
            trace_pos=pos,
        )
        self.stats.squashed_uops += len(squashed)
        # The visibility point may have advanced (squashed shadows).
        vp = self.shadows.visibility_point()
        self.vp_now = self.next_seq if vp is None else vp
        # Squashed micro-ops back to the pool: every core-side index was
        # purged or is stale-guarded, and the scheme dropped its own
        # references in on_checkpoint_restore (see repro.pipeline.uop).
        self._uop_pool.release_all(squashed)

    def _flush_all(self, head):
        """Ordering violation at the ROB head: flush and refetch."""
        self.stats.order_violation_flushes += 1
        self.stats.squashed_uops += len(self.rob)
        victims = list(self.rob)
        for victim in victims:
            victim.kill()
        if self._obs_tracer is not None:
            # Capture before the issue queue destroys scheduler state.
            self._obs_tracer.on_squash_batch(victims, self.cycle)
        if self._obs_account is not None:
            self._obs_account.note_flush()
        self.rob.clear()
        self.iq.flush()
        self.lsu.flush()
        self.shadows.clear()
        if self.d_pending:
            self.d_pending.clear()
            self.d_version += 1
        self.rename.flush_all()
        self.scheme.on_flush_all()
        self._pending_squash = None
        # The flush refetches the (committed-state) head itself: its own
        # trace position, if any, is exactly where the stream re-enters.
        self.fetch.redirect(
            head.pc, self.cycle + 1 + self.config.redirect_penalty,
            trace_pos=head.trace_index if self._tr_next is not None else -1,
        )
        vp = self.shadows.visibility_point()
        self.vp_now = self.next_seq if vp is None else vp
        # Commit made no progress this cycle, but the flush is progress.
        self._last_commit_cycle = self.cycle
        # Flushed micro-ops back to the pool (the scheme released or
        # dropped its references in on_flush_all; the head refetches as
        # a fresh micro-op).
        self._uop_pool.release_all(victims)

    # ------------------------------------------------------------------
    # Diagnostics.
    # ------------------------------------------------------------------

    def _deadlock_report(self):
        lines = [
            "no commit for %d cycles at cycle %d (%s on %s/%s)"
            % (
                self.watchdog_cycles,
                self.cycle,
                self.program.name,
                self.config.name,
                self.scheme.name,
            )
        ]
        if self.rob:
            head = self.rob[0]
            lines.append(
                "ROB head: %r completed=%s addr_issued=%s data_issued=%s yrot=%s"
                % (head, head.completed, head.addr_issued, head.data_issued, head.yrot)
            )
        lines.append("shadows: %s" % self.shadows.active_shadows()[:8])
        lines.append("vp_now=%d next_seq=%d" % (self.vp_now, self.next_seq))
        lines.append("iq=%d rob=%d" % (len(self.iq), len(self.rob)))
        return "; ".join(lines)
