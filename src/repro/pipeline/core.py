"""The out-of-order core simulator.

One :class:`OoOCore` executes one :class:`~repro.isa.program.Program`
under one :class:`~repro.core.plugin.SchemeBase` and one
:class:`~repro.pipeline.config.CoreConfig`.  The model is cycle-level
and *functional*: it computes real values, so its final architectural
state must (and, per the test suite, does) match the in-order
reference interpreter exactly, for every scheme, despite speculation,
squashes, replays, and ordering-violation flushes.

Per-cycle phase order (chosen so values flow like bypass networks):

1. **commit** — retire completed micro-ops in order; ordering
   violations at the head trigger a full flush.
2. **events** — scheduled completions: spec-wakeup kills first, then
   store address/data, completions, and finally load address
   generation (so loads observe same-cycle store updates).
3. **visibility** — recompute the visibility point; the scheme releases
   untaint broadcasts / NDA deferred broadcasts here.
4. **issue** — wakeup/select in the issue queue.
5. **rename/dispatch** — pull from the fetch buffer into ROB/IQ/LSQ.
6. **fetch** — follow predicted control flow.
7. **squash** — process the oldest misprediction detected this cycle.
"""

from collections import deque
from dataclasses import dataclass, field, replace

from repro.core.factory import make_scheme
from repro.core.plugin import SchemeBase
from repro.core.shadows import C_SHADOW, D_SHADOW, ShadowTracker
from repro.frontend.branch_predictor import BranchTargetBuffer, make_predictor
from repro.isa.instructions import Opcode
from repro.isa.interp import branch_taken, evaluate_alu, to_unsigned64
from repro.isa.registers import NUM_ARCH_REGS
from repro.memsys.hierarchy import MemoryHierarchy
from repro.pipeline.config import MEGA
from repro.pipeline.fetch import FetchUnit
from repro.pipeline.issue_queue import IssueQueue
from repro.pipeline.lsu import LoadStoreUnit
from repro.pipeline.regfile import PhysRegFile
from repro.pipeline.rename import RenameUnit
from repro.pipeline.stats import SimStats
from repro.pipeline.uop import ADDR, DATA, WHOLE, MicroOp

# Event priorities within one cycle.
_P_SPEC_KILL = 0
_P_STORE_ADDR = 1
_P_STORE_DATA = 2
_P_COMPLETE = 3
_P_LOAD_AGEN = 4


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    program_name: str
    scheme_name: str
    config_name: str
    stats: SimStats
    regs: list
    memory: dict
    halted: bool
    cycles: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def ipc(self):
        return self.stats.ipc

    def to_dict(self):
        """JSON-serialisable form (see :meth:`from_dict` for the inverse).

        Memory addresses become string keys (JSON objects only have
        string keys); :meth:`from_dict` converts them back to ints.
        """
        return {
            "program_name": self.program_name,
            "scheme_name": self.scheme_name,
            "config_name": self.config_name,
            "stats": self.stats.to_dict(),
            "regs": list(self.regs),
            "memory": {str(addr): value for addr, value in self.memory.items()},
            "halted": self.halted,
            "cycles": self.cycles,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a result from :meth:`to_dict` output (e.g. JSON)."""
        return cls(
            program_name=data["program_name"],
            scheme_name=data["scheme_name"],
            config_name=data["config_name"],
            stats=SimStats.from_dict(data["stats"]),
            regs=list(data["regs"]),
            memory={int(addr): value for addr, value in data["memory"].items()},
            halted=data["halted"],
            cycles=data.get("cycles", 0),
            extra=dict(data.get("extra", {})),
        )


class OoOCore:
    """Cycle-level out-of-order core with pluggable secure schemes."""

    def __init__(
        self,
        program,
        config=None,
        scheme=None,
        max_cycles=5_000_000,
        watchdog_cycles=50_000,
        warm_caches=False,
    ):
        self.program = program
        program.validate()
        self.config = config or MEGA
        self.config.validate()
        if scheme is None:
            scheme = make_scheme("baseline")
        elif isinstance(scheme, str):
            scheme = make_scheme(scheme)
        if not isinstance(scheme, SchemeBase):
            raise TypeError("scheme must be a SchemeBase or scheme name")
        self.scheme = scheme
        self.max_cycles = max_cycles
        self.watchdog_cycles = watchdog_cycles

        cfg = self.config
        self.stats = SimStats()
        self.prf = PhysRegFile(cfg.num_phys_regs)
        for reg, value in program.initial_regs.items():
            if reg != 0:
                self.prf.values[reg] = value
        self.memory = {
            to_unsigned64(addr): value
            for addr, value in program.initial_memory.items()
        }
        self.hierarchy = MemoryHierarchy(cfg.mem)
        if warm_caches and self.memory:
            self.hierarchy.warm(self.memory.keys(), level="l2")
        self.rename = RenameUnit(cfg.num_phys_regs, cfg.max_branches)
        self.rob = deque()
        self.iq = IssueQueue(self)
        self.lsu = LoadStoreUnit(self)
        self.shadows = ShadowTracker()
        self.predictor = make_predictor(cfg.branch_predictor)
        self.btb = BranchTargetBuffer(cfg.btb_entries)
        self.fetch = FetchUnit(self, program, self.predictor, self.btb)

        self.cycle = 0
        self.next_seq = 0
        self.vp_now = 0
        # Loads that executed past older stores with unknown addresses
        # (their data is unverified until those stores check aliasing).
        self.d_pending = {}
        self.halted = False
        self._events = {}
        self._pending_squash = None
        self._div_busy_until = 0
        self._last_commit_cycle = 0
        self._instruction_limit = None

        scheme.attach(self)

    # ------------------------------------------------------------------
    # Public driving interface.
    # ------------------------------------------------------------------

    def run(self, max_instructions=None):
        """Simulate until the program halts; returns a SimulationResult.

        ``max_instructions`` optionally stops the run once that many
        instructions have committed (for fixed-work measurement runs).
        """
        self._instruction_limit = max_instructions
        while not self.halted:
            if self.cycle >= self.max_cycles:
                raise RuntimeError(
                    "simulation exceeded %d cycles (%s on %s/%s)"
                    % (
                        self.max_cycles,
                        self.program.name,
                        self.config.name,
                        self.scheme.name,
                    )
                )
            if self.cycle - self._last_commit_cycle > self.watchdog_cycles:
                raise RuntimeError(self._deadlock_report())
            self.step()
        return self.result()

    def step(self):
        """Advance the machine by one clock cycle."""
        self._commit()
        if self.halted:
            self.stats.cycles = self.cycle + 1
            return
        self._process_events()
        self._update_visibility()
        self._issue()
        self._rename_dispatch()
        self.fetch.do_cycle(self.cycle)
        self._process_squash()
        self.cycle += 1
        self.stats.cycles = self.cycle

    def result(self):
        """Snapshot the architectural state into a SimulationResult."""
        regs = [0] * NUM_ARCH_REGS
        for arch in range(1, NUM_ARCH_REGS):
            regs[arch] = self.prf.read(self.rename.arch_rat[arch])
        # Merge scheme/hierarchy counters into a snapshot copy: the live
        # self.stats stays untouched, so result() is idempotent.
        extra = dict(self.stats.extra)
        extra.update(self.scheme.extra_stats())
        extra.update(self.hierarchy.stats())
        stats = replace(self.stats, extra=extra)
        return SimulationResult(
            program_name=self.program.name,
            scheme_name=self.scheme.name,
            config_name=self.config.name,
            stats=stats,
            regs=regs,
            memory=dict(self.memory),
            halted=self.halted,
            cycles=stats.cycles,
        )

    # ------------------------------------------------------------------
    # Commit.
    # ------------------------------------------------------------------

    def _commit(self):
        committed = 0
        while self.rob and committed < self.config.width:
            head = self.rob[0]
            if not head.completed:
                break
            if head.order_violation:
                self._flush_all(head)
                return
            self.rob.popleft()
            head.committed = True
            head.commit_cycle = self.cycle
            self._last_commit_cycle = self.cycle
            committed += 1
            self.stats.committed_instructions += 1

            instr = head.instr
            if instr.is_store:
                self.memory[head.address] = head.mem_value
                self.hierarchy.access(
                    head.address, pc=head.pc, is_write=True, train_prefetcher=False
                )
                self.lsu.commit_store(head)
                self.stats.committed_stores += 1
            elif instr.is_load:
                self.lsu.commit_load(head)
                self.stats.committed_loads += 1
            elif instr.is_branch:
                self.stats.committed_branches += 1
                self._train_predictor(head)
            elif instr.op == Opcode.JALR:
                self.btb.update(head.pc, head.actual_target)
            elif instr.op == Opcode.HALT:
                self.rename.commit(head)
                self.halted = True
                return
            self.rename.commit(head)

            if (
                self._instruction_limit is not None
                and self.stats.committed_instructions >= self._instruction_limit
            ):
                self.halted = True
                return

    def _train_predictor(self, uop):
        predictor = self.predictor
        if hasattr(predictor, "update_with_history") and uop.ghr_at_predict is not None:
            predictor.update_with_history(uop.pc, uop.taken, uop.ghr_at_predict)
        else:
            predictor.update(uop.pc, uop.taken)

    # ------------------------------------------------------------------
    # Event machinery.
    # ------------------------------------------------------------------

    def _schedule(self, cycle, priority, kind, uop, payload=None):
        self._events.setdefault(cycle, []).append(
            (priority, kind, uop, uop.gen, payload)
        )

    def schedule_load_complete(self, uop, cycle, value):
        self._schedule(max(cycle, self.cycle + 1), _P_COMPLETE, "load_complete",
                       uop, value)

    def schedule_spec_wakeup(self, uop, cycle):
        """A load that missed still wakes consumers at hit latency; the
        wakeup is killed one cycle later (replay penalty)."""
        self._schedule(cycle, _P_COMPLETE, "spec_ready", uop)
        self._schedule(cycle + 1, _P_SPEC_KILL, "spec_kill", uop)

    def _process_events(self):
        events = self._events.pop(self.cycle, None)
        if not events:
            return
        events.sort(key=lambda item: item[0])
        for _priority, kind, uop, gen, payload in events:
            if uop.killed or uop.gen != gen:
                continue
            if kind == "complete_alu":
                self._ev_complete_alu(uop)
            elif kind == "load_agen":
                self.lsu.load_agen(uop, self.cycle)
            elif kind == "load_complete":
                self._ev_load_complete(uop, payload)
            elif kind == "store_addr":
                self._ev_store_addr(uop)
            elif kind == "store_data":
                self._ev_store_data(uop)
            elif kind == "spec_ready":
                self.prf.set_spec_ready(uop.prd)
            elif kind == "spec_kill":
                self._ev_spec_kill(uop)
            else:  # pragma: no cover - defensive
                raise RuntimeError("unknown event kind %r" % kind)

    def _read_operand(self, preg):
        return self.prf.read(preg) if preg is not None else 0

    def _ev_complete_alu(self, uop):
        instr = uop.instr
        op = instr.op
        a = self._read_operand(uop.prs1)
        b = self._read_operand(uop.prs2)

        if instr.is_branch:
            uop.taken = branch_taken(op, a, b)
            uop.actual_target = instr.imm if uop.taken else uop.pc + 1
            self._resolve_control(uop, uop.taken != uop.pred_taken)
        elif op == Opcode.JALR:
            uop.actual_target = to_unsigned64(a + instr.imm)
            uop.result = uop.pc + 1
            self._resolve_control(uop, uop.actual_target != uop.pred_target)
        elif op == Opcode.JAL:
            uop.result = uop.pc + 1
        elif op in (Opcode.NOP, Opcode.HALT):
            uop.result = 0
        else:
            uop.result = evaluate_alu(op, a, b, instr.imm)

        if uop.prd is not None:
            self.prf.write(uop.prd, uop.result)
            self.iq.confirm_spec(uop.prd)
        uop.completed = True
        uop.complete_cycle = self.cycle

    def _resolve_control(self, uop, mispredicted):
        self.shadows.resolve(uop.seq)
        if mispredicted:
            uop.mispredicted = True
            if (
                self._pending_squash is None
                or uop.seq < self._pending_squash.seq
            ):
                self._pending_squash = uop
        elif uop.checkpoint_id is not None:
            self.rename.release_checkpoint(uop.checkpoint_id)
            uop.checkpoint_id = None

    def _ev_store_addr(self, uop):
        base = self._read_operand(uop.prs1)
        uop.address = to_unsigned64(base + uop.instr.imm)
        uop.addr_done = True
        self.lsu.store_addr_ready(uop, self.cycle)
        if uop.data_done:
            uop.completed = True
            uop.complete_cycle = self.cycle

    def _ev_store_data(self, uop):
        uop.mem_value = self._read_operand(uop.prs2)
        uop.data_done = True
        self.lsu.store_data_ready(uop, self.cycle)
        if uop.addr_done:
            uop.completed = True
            uop.complete_cycle = self.cycle

    def _ev_load_complete(self, uop, value):
        uop.mem_value = value
        uop.result = value
        uop.completed = True
        uop.complete_cycle = self.cycle
        if uop.prd is not None:
            self.prf.write_value_only(uop.prd, value)
            if self.scheme.on_load_complete(uop, self.cycle):
                self.prf.set_ready(uop.prd)
                self.iq.confirm_spec(uop.prd)

    def _ev_spec_kill(self, uop):
        self.prf.revoke_spec(uop.prd)
        replayed = self.iq.kill_spec(uop.prd)
        if replayed:
            self.stats.replayed_uops += len(replayed)
            self.stats.wasted_issue_slots += len(replayed)
        self.stats.spec_wakeup_kills += 1

    # ------------------------------------------------------------------
    # Visibility point.
    # ------------------------------------------------------------------

    def is_load_safe(self, seq):
        """Is the load with sequence ``seq`` bound-to-commit?

        Safe means: no older control shadow is active (Section 6's
        C-shadows) *and* the load's own memory-dependence speculation,
        if any, has been verified (its D-shadow; a load that executed
        past an older store with an unknown address stays speculative
        until every such store has checked for aliasing).
        """
        return seq <= self.vp_now and seq not in self.d_pending

    def _update_visibility(self):
        vp = self.shadows.visibility_point()
        self.vp_now = self.next_seq if vp is None else vp
        self.scheme.on_visibility_update(self.cycle)

    # ------------------------------------------------------------------
    # Issue.
    # ------------------------------------------------------------------

    def div_free(self, cycle):
        return cycle >= self._div_busy_until

    def _issue(self):
        for uop, half in self.iq.select_and_issue(self.cycle):
            if uop.is_load:
                self._schedule(self.cycle + 1, _P_LOAD_AGEN, "load_agen", uop)
            elif uop.is_store:
                if half == ADDR:
                    self._schedule(self.cycle + 1, _P_STORE_ADDR, "store_addr", uop)
                else:
                    self._schedule(self.cycle + 1, _P_STORE_DATA, "store_data", uop)
            else:
                latency = max(1, uop.op_latency)
                if uop.op_is_div:
                    self._div_busy_until = self.cycle + latency
                if uop.op_is_branch or uop.instr.op == Opcode.JALR:
                    # Branches resolve deeper in the pipeline: their
                    # shadow stays open through regread/execute/BRU.
                    latency += self.config.branch_resolve_extra
                self._schedule(self.cycle + latency, _P_COMPLETE, "complete_alu", uop)

    # ------------------------------------------------------------------
    # Rename / dispatch.
    # ------------------------------------------------------------------

    def _rename_dispatch(self):
        cfg = self.config
        renamed = 0
        while renamed < cfg.width:
            entry = self.fetch.peek_ready(self.cycle)
            if entry is None:
                if renamed == 0:
                    self.stats.stall_frontend_empty += 1
                break
            instr = entry.instr
            if len(self.rob) >= cfg.rob_entries:
                self.stats.stall_rob_full += 1
                break
            if self.iq.is_full:
                self.stats.stall_iq_full += 1
                break
            if instr.is_load and self.lsu.ldq_full:
                self.stats.stall_ldq_full += 1
                break
            if instr.is_store and self.lsu.stq_full:
                self.stats.stall_stq_full += 1
                break
            needs_dest = instr.writes_rd and instr.rd != 0
            if needs_dest and self.rename.free_regs() == 0:
                self.stats.stall_no_phys_regs += 1
                break
            casts_c_shadow = instr.is_branch or instr.op == Opcode.JALR
            if casts_c_shadow and self.rename.free_checkpoints() == 0:
                self.stats.stall_no_checkpoint += 1
                break

            self.fetch.pop()
            uop = MicroOp(self.next_seq, entry.pc, instr, entry.fetch_cycle)
            self.next_seq += 1
            uop.rename_cycle = self.cycle
            uop.pred_taken = entry.pred_taken
            uop.pred_target = entry.pred_target
            uop.ghr_at_predict = entry.ghr_before

            self.rename.rename_sources(uop)
            if self.rename.rename_dest(uop) is not None:
                self.prf.mark_alloc(uop.prd)

            self.rob.append(uop)
            uop.in_rob = True
            self.iq.add(uop)

            if casts_c_shadow:
                checkpoint = self.rename.create_checkpoint(uop, entry.ghr_before)
                self.shadows.cast(uop.seq, C_SHADOW)
                self.scheme.on_checkpoint_create(uop, checkpoint)
            if instr.is_store:
                self.lsu.add_store(uop)
            elif instr.is_load:
                self.lsu.add_load(uop)

            self.scheme.on_rename_uop(uop)
            renamed += 1

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------

    def _process_squash(self):
        uop = self._pending_squash
        self._pending_squash = None
        if uop is None or uop.killed:
            return
        if uop.is_branch:
            self.stats.branch_mispredicts += 1
        else:
            self.stats.jalr_mispredicts += 1

        seq = uop.seq
        squashed = [u for u in self.rob if u.seq > seq]
        for victim in squashed:
            victim.kill()
        self.rob = deque(u for u in self.rob if u.seq <= seq)
        self.iq.squash_younger(seq)
        self.lsu.squash_younger(seq)
        self.shadows.squash_younger(seq)
        for stale in [k for k, u in self.d_pending.items() if u.killed]:
            del self.d_pending[stale]

        checkpoint = self.rename.restore_checkpoint(uop.checkpoint_id, squashed)
        uop.checkpoint_id = None
        self.predictor.restore(checkpoint.ghr)
        if uop.is_branch:
            self.predictor.push_history(uop.taken)
        self.scheme.on_checkpoint_restore(uop, checkpoint)

        self.fetch.redirect(
            uop.actual_target, self.cycle + 1 + self.config.redirect_penalty
        )
        self.stats.squashed_uops += len(squashed)
        # The visibility point may have advanced (squashed shadows).
        vp = self.shadows.visibility_point()
        self.vp_now = self.next_seq if vp is None else vp

    def _flush_all(self, head):
        """Ordering violation at the ROB head: flush and refetch."""
        self.stats.order_violation_flushes += 1
        self.stats.squashed_uops += len(self.rob)
        for victim in self.rob:
            victim.kill()
        self.rob.clear()
        self.iq.flush()
        self.lsu.flush()
        self.shadows.clear()
        self.d_pending.clear()
        self.rename.flush_all()
        self.scheme.on_flush_all()
        self._pending_squash = None
        self.fetch.redirect(head.pc, self.cycle + 1 + self.config.redirect_penalty)
        vp = self.shadows.visibility_point()
        self.vp_now = self.next_seq if vp is None else vp
        # Commit made no progress this cycle, but the flush is progress.
        self._last_commit_cycle = self.cycle

    # ------------------------------------------------------------------
    # Diagnostics.
    # ------------------------------------------------------------------

    def _deadlock_report(self):
        lines = [
            "no commit for %d cycles at cycle %d (%s on %s/%s)"
            % (
                self.watchdog_cycles,
                self.cycle,
                self.program.name,
                self.config.name,
                self.scheme.name,
            )
        ]
        if self.rob:
            head = self.rob[0]
            lines.append(
                "ROB head: %r completed=%s addr_issued=%s data_issued=%s yrot=%s"
                % (head, head.completed, head.addr_issued, head.data_issued, head.yrot)
            )
        lines.append("shadows: %s" % self.shadows.active_shadows()[:8])
        lines.append("vp_now=%d next_seq=%d" % (self.vp_now, self.next_seq))
        lines.append("iq=%d rob=%d" % (len(self.iq), len(self.rob)))
        return "; ".join(lines)
