"""Simulation statistics counters.

The paper extracts key performance indicators with TraceDoctor
(committed instructions, latencies, stalls and their causes,
store-to-load forwarding errors); these counters are the model's
equivalent and feed Section 9.2-style analyses directly.

Counters are normally incremented cycle by cycle, but the core's
idle-cycle fast-forward (see :mod:`repro.pipeline.core`) may *bulk*
increment a stall counter — adding ``skipped`` at once for a window it
proved would have charged that same counter once per cycle.  Totals
are therefore bit-identical to pure stepping (asserted by the golden
fixture in ``tests/pipeline/test_kernel_equivalence.py``); no counter
ever records that a window was fast-forwarded, by design.
"""

from dataclasses import dataclass, field


@dataclass
class SimStats:
    """Counters collected over one simulation run."""

    cycles: int = 0
    committed_instructions: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    committed_branches: int = 0

    branch_mispredicts: int = 0
    jalr_mispredicts: int = 0

    #: Store-to-load forwarding errors (memory ordering violations) —
    #: the Section 9.2 exchange2 counter.
    stl_forward_errors: int = 0
    order_violation_flushes: int = 0
    store_forwards: int = 0

    #: Loads replayed because a speculative L1-hit wakeup missed.
    spec_wakeup_kills: int = 0
    replayed_uops: int = 0

    #: Issue slots wasted by STT-Issue tainted-transmitter nops (4 in
    #: Figure 4) and by replays.
    wasted_issue_slots: int = 0

    #: Issue attempts blocked because a transmitter's YRoT was unsafe.
    taint_blocked_issues: int = 0
    #: NDA: load broadcasts deferred past completion.
    deferred_broadcasts: int = 0
    #: NDA: cycles a completed load waited for its broadcast.
    deferred_broadcast_cycles: int = 0

    #: Stores that issued address generation before data (partial issue).
    partial_store_issues: int = 0

    # Stall causes, counted per rename slot per cycle.
    stall_rob_full: int = 0
    stall_iq_full: int = 0
    stall_ldq_full: int = 0
    stall_stq_full: int = 0
    stall_no_phys_regs: int = 0
    stall_no_checkpoint: int = 0
    stall_frontend_empty: int = 0

    fetched_instructions: int = 0
    squashed_uops: int = 0

    extra: dict = field(default_factory=dict)

    @property
    def ipc(self):
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.committed_instructions / self.cycles

    @property
    def mpki(self):
        """Branch mispredicts per thousand committed instructions."""
        if self.committed_instructions == 0:
            return 0.0
        total = self.branch_mispredicts + self.jalr_mispredicts
        return 1000.0 * total / self.committed_instructions

    def as_dict(self):
        """Flatten to a plain dict (including derived rates).

        Extra counters are namespaced as ``extra.<name>`` so a scheme
        or hierarchy counter can never collide with (and silently
        clobber, or be clobbered by) a core counter field or the
        derived ``ipc``/``mpki`` rates.
        """
        data = {
            name: getattr(self, name)
            for name in self.__dataclass_fields__
            if name != "extra"
        }
        for name, value in self.extra.items():
            data["extra.%s" % name] = value
        data["ipc"] = self.ipc
        data["mpki"] = self.mpki
        return data

    def to_dict(self):
        """Lossless serialisation: raw fields only, ``extra`` nested."""
        data = {
            name: getattr(self, name)
            for name in self.__dataclass_fields__
            if name != "extra"
        }
        data["extra"] = dict(self.extra)
        return data

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValueError("unknown SimStats fields: %s" % sorted(unknown))
        kwargs = {k: v for k, v in data.items() if k != "extra"}
        return cls(extra=dict(data.get("extra", {})), **kwargs)

    def cycle_account(self):
        """The ``cycacct.``-namespaced extras (see :mod:`repro.obs`),
        with the prefix stripped; empty when accounting was disabled."""
        prefix = "cycacct."
        return {
            name[len(prefix):]: value
            for name, value in self.extra.items()
            if name.startswith(prefix)
        }

    def summary(self):
        """Short human-readable summary string."""
        return (
            "cycles=%d instructions=%d IPC=%.3f mispredicts=%d "
            "stl_errors=%d flushes=%d"
            % (
                self.cycles,
                self.committed_instructions,
                self.ipc,
                self.branch_mispredicts + self.jalr_mispredicts,
                self.stl_forward_errors,
                self.order_violation_flushes,
            )
        )
