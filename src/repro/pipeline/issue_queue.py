"""Issue queue: wakeup, select, speculative scheduling, replay.

Selection is oldest-first over entries whose operands are usable and
whose scheme-level ready mask is clear.  Three structural limits apply
per cycle: total issue width, memory ports (loads and store halves),
and the unpipelined divider.

Stores are single entries with two independently-issuing halves
(address and data) — BOOM's unified store micro-op.  If both operand
halves are ready the store issues once, performing both; otherwise it
partially issues (Section 9.2).

Speculative scheduling: loads that miss in the L1 still broadcast a
speculative wakeup at hit latency; consumers that issued on a
speculative operand stay in the queue until the operand confirms, and
are replayed (returned to the not-issued state) when the wakeup is
killed.  NDA's configuration disables speculative wakeups entirely.
"""

from repro.pipeline.uop import ADDR, DATA, WHOLE


class IssueQueue:
    """Out-of-order scheduler over in-flight micro-ops."""

    def __init__(self, core):
        self.core = core
        self.config = core.config
        self.entries = []

    def __len__(self):
        return len(self.entries)

    @property
    def is_full(self):
        return len(self.entries) >= self.config.iq_entries

    def add(self, uop):
        self.entries.append(uop)

    def squash_younger(self, seq):
        """Remove entries younger than ``seq`` (misprediction squash)."""
        self.entries = [u for u in self.entries if u.seq <= seq]

    def flush(self):
        self.entries = []

    # -- select -----------------------------------------------------------

    def select_and_issue(self, cycle):
        """Pick winners for this cycle and hand them to the core.

        Returns the list of (uop, half) pairs actually sent to execute.
        """
        core = self.core
        prf = core.prf
        state = prf.state
        scheme = core.scheme
        slots = self.config.issue_width
        mem_slots = self.config.mem_width
        issued = []
        done_entries = []
        div_granted = False

        for uop in self.entries:
            if slots <= 0:
                break
            if uop.op_is_store:
                slots, mem_slots = self._try_store(
                    uop, cycle, slots, mem_slots, issued
                )
                if uop.addr_issued and uop.data_issued and not uop.spec_deps:
                    done_entries.append(uop)
                continue

            if uop.addr_issued:
                continue  # waiting for a speculative source to confirm
            if uop.op_is_load and mem_slots <= 0:
                continue
            # Inline operand-usable check (hot path).
            prs1 = uop.prs1
            if prs1 is not None and state[prs1] == 0:
                continue
            prs2 = uop.prs2
            if prs2 is not None and state[prs2] == 0:
                continue
            if scheme.blocks_issue(uop, WHOLE):
                core.stats.taint_blocked_issues += 1
                continue
            if uop.op_is_div:
                # One unpipelined divider: a single grant per cycle,
                # and only once the previous division has drained.
                if div_granted or not core.div_free(cycle):
                    continue
                div_granted = True

            slots -= 1
            if not scheme.on_issue(uop, WHOLE, cycle):
                core.stats.wasted_issue_slots += 1
                continue

            if uop.op_is_load:
                mem_slots -= 1
            spec = self._spec_sources(uop)
            uop.spec_deps = spec if spec else None
            uop.addr_issued = True
            uop.issue_cycle = cycle
            issued.append((uop, WHOLE))
            if not spec:
                done_entries.append(uop)

        for uop in done_entries:
            self.entries.remove(uop)
        return issued

    def _try_store(self, uop, cycle, slots, mem_slots, issued):
        """Attempt (partial) issue of a store's address/data halves."""
        core = self.core
        state = core.prf.state
        scheme = core.scheme

        addr_ready = not uop.addr_issued and (
            uop.prs1 is None or state[uop.prs1] == 2
        )
        data_ready = not uop.data_issued and (
            uop.prs2 is None or state[uop.prs2] == 2
        )
        if addr_ready and scheme.blocks_issue(uop, ADDR):
            core.stats.taint_blocked_issues += 1
            addr_ready = False
        if data_ready and scheme.blocks_issue(uop, DATA):
            core.stats.taint_blocked_issues += 1
            data_ready = False
        if not addr_ready and not data_ready:
            return slots, mem_slots
        if mem_slots <= 0:
            return slots, mem_slots

        # One issue slot covers whichever halves fire this cycle
        # (unified micro-op: a single scheduler grant).
        slots -= 1
        mem_slots -= 1

        if addr_ready:
            if scheme.on_issue(uop, ADDR, cycle):
                uop.addr_issued = True
                if not uop.data_issued and not data_ready:
                    core.stats.partial_store_issues += 1
                issued.append((uop, ADDR))
            else:
                core.stats.wasted_issue_slots += 1
                return slots, mem_slots
        if data_ready:
            if scheme.on_issue(uop, DATA, cycle):
                uop.data_issued = True
                issued.append((uop, DATA))
            else:
                core.stats.wasted_issue_slots += 1
        if uop.issue_cycle is None and (uop.addr_issued or uop.data_issued):
            uop.issue_cycle = cycle
        return slots, mem_slots

    def _operands_usable(self, uop):
        prf = self.core.prf
        if uop.prs1 is not None and not prf.is_usable(uop.prs1):
            return False
        if uop.prs2 is not None and not prf.is_usable(uop.prs2):
            return False
        return True

    def _spec_sources(self, uop):
        prf = self.core.prf
        spec = set()
        if uop.prs1 is not None and prf.is_spec(uop.prs1):
            spec.add(uop.prs1)
        if uop.prs2 is not None and prf.is_spec(uop.prs2):
            spec.add(uop.prs2)
        return spec

    # -- speculative wakeup bookkeeping ------------------------------------

    def confirm_spec(self, preg):
        """A speculative wakeup proved correct: release entries whose
        only reason for staying was waiting on ``preg``."""
        survivors = []
        for uop in self.entries:
            if uop.spec_deps and preg in uop.spec_deps:
                uop.spec_deps.discard(preg)
                if not uop.spec_deps and uop.fully_issued:
                    uop.spec_deps = None
                    continue  # drop from queue: issue confirmed
                if not uop.spec_deps:
                    uop.spec_deps = None
            survivors.append(uop)
        self.entries = survivors

    def kill_spec(self, preg):
        """A speculative wakeup was wrong (L1 miss): replay consumers.

        Returns the replayed micro-ops (the core cancels their
        scheduled events via the generation bump in ``replay``).
        """
        replayed = []
        for uop in self.entries:
            if uop.spec_deps and preg in uop.spec_deps:
                uop.replay()
                replayed.append(uop)
        return replayed

    def occupancy(self):
        return len(self.entries)
