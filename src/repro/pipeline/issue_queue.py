"""Issue queue: wakeup-driven scheduling, select, replay.

Selection is oldest-first over entries whose operands are usable and
whose scheme-level ready mask is clear.  Three structural limits apply
per cycle: total issue width, memory ports (loads and store halves),
and the unpipelined divider.

Stores are single entries with two independently-issuing halves
(address and data) — BOOM's unified store micro-op.  If both operand
halves are ready the store issues once, performing both; otherwise it
partially issues (Section 9.2).

Scheduling is *wakeup-driven*: entries never sit in a scan loop waiting
for operands.  Each entry is in exactly one scheduler state:

* ``IQ_READY``   — every operand usable (stores: at least one unissued
  half fireable); on the age-ordered ready list the per-cycle select
  examines.  Ready entries are re-checked *live* each select pass, so
  scheme ready-masks, port limits, and the divider behave exactly as a
  full scan would.
* ``IQ_WAITING`` — registered in the preg -> waiting-consumers index
  (``_waiters``); promoted by the register file's wakeup notifications
  (:class:`~repro.pipeline.regfile.PhysRegFile` ``listener`` calls),
  demoted back here when a speculative wakeup is revoked.
* ``IQ_ISSUED``  — issued on a speculative operand; registered in the
  preg -> speculative-consumers index (``_spec_waiters``) until the
  operand confirms (entry leaves the queue) or is killed (entry is
  replayed and re-classified).

Speculative scheduling: loads that miss in the L1 still broadcast a
speculative wakeup at hit latency; consumers that issued on a
speculative operand stay in the queue until the operand confirms, and
are replayed (returned to the not-issued state) when the wakeup is
killed.  Schemes whose registry spec disables L1-hit speculation
(``allows_spec_hit_wakeup = False``: NDA, delay-on-miss) never
schedule these wakeups at all.

Scheme ready-masks (``blocks_issue``) are re-evaluated live on every
select pass over a ready entry, so schemes that gate on the broadcast
visibility point (STT) or directly on the live one (fence) need no
wakeup plumbing of their own — a masked entry simply keeps losing
selection until its gate opens.

Index bookkeeping is lazy where safe: squashed or departed entries may
linger in ``_waiters``/``_spec_waiters`` sets and are discarded on the
next notification for that register (state checks make them inert).
The ready list is pruned eagerly so ``has_ready`` — which gates the
core's idle-cycle fast-forward — never reports stale work.
"""

from bisect import insort

from repro.core.plugin import overridden_hook
from repro.pipeline.regfile import NOT_READY, READY
from repro.pipeline.uop import ADDR, DATA, WHOLE

# Scheduler states (stored on MicroOp.iq_status).
IQ_NONE = 0
IQ_WAITING = 1
IQ_READY = 2
IQ_ISSUED = 3


class IssueQueue:
    """Out-of-order scheduler over in-flight micro-ops."""

    def __init__(self, core):
        self.core = core
        self.config = core.config
        # Devirtualised scheme hooks: None means "default" (never
        # blocks / always issues), skipping a call per examined entry.
        self._blocks_issue = overridden_hook(core.scheme, "blocks_issue")
        self._on_issue = overridden_hook(core.scheme, "on_issue")
        #: seq -> uop, insertion-ordered (rename order == age order).
        self.entries = {}
        #: Age-sorted ``(seq, uop)`` pairs with status ``IQ_READY``.
        self._ready = []
        #: preg -> set of ``IQ_WAITING`` consumers.
        self._waiters = {}
        #: preg -> set of ``IQ_ISSUED`` speculative consumers.
        self._spec_waiters = {}

    def __len__(self):
        return len(self.entries)

    @property
    def is_full(self):
        return len(self.entries) >= self.config.iq_entries

    def has_ready(self):
        """Any entry the next select pass could examine?  (Used by the
        core's idle-cycle fast-forward: an empty ready list guarantees
        ``select_and_issue`` is a no-op.)"""
        return bool(self._ready)

    def add(self, uop):
        self.entries[uop.seq] = uop
        # Renamed micro-ops arrive in age order, so a ready newcomer
        # always belongs at the back of the ready list — append, don't
        # insort.  Fast path: every operand usable already
        # (state != NOT_READY == 0, i.e. truthy).
        state = self.core.prf.state
        if uop.op_is_store:
            if self._store_can_fire(uop, state):
                uop.iq_status = IQ_READY
                self._ready.append((uop.seq, uop))
                return
        else:
            prs1 = uop.prs1
            prs2 = uop.prs2
            if (prs1 is None or state[prs1]) and (
                prs2 is None or state[prs2]
            ):
                uop.iq_status = IQ_READY
                self._ready.append((uop.seq, uop))
                return
        self._classify(uop)

    def add_group(self, uops):
        """Insert one renamed fetch group (age order), as one call.

        Exactly :meth:`add` per micro-op with the hot lookups hoisted:
        the group arrives age-ordered, so ready newcomers append to the
        back of the ready list, and each member's readiness is judged
        against the live register state — which already carries the
        whole group's destination allocations, so an in-group consumer
        of an in-group producer correctly starts out waiting.
        """
        entries = self.entries
        ready = self._ready
        state = self.core.prf.state
        store_can_fire = self._store_can_fire
        classify = self._classify
        for uop in uops:
            entries[uop.seq] = uop
            if uop.op_is_store:
                if store_can_fire(uop, state):
                    uop.iq_status = IQ_READY
                    ready.append((uop.seq, uop))
                    continue
            else:
                prs1 = uop.prs1
                prs2 = uop.prs2
                if (prs1 is None or state[prs1]) and (
                    prs2 is None or state[prs2]
                ):
                    uop.iq_status = IQ_READY
                    ready.append((uop.seq, uop))
                    continue
            classify(uop)

    # -- scheduler-state transitions ---------------------------------------

    def _classify(self, uop):
        """Place ``uop`` into READY or WAITING from live operand state."""
        state = self.core.prf.state
        prs1 = uop.prs1
        prs2 = uop.prs2
        if uop.op_is_store:
            if self._store_can_fire(uop, state):
                self._mark_ready(uop)
                return
            uop.iq_status = IQ_WAITING
            waiters = self._waiters
            if not uop.addr_issued and prs1 is not None and state[prs1] != READY:
                _register(waiters, prs1, uop)
            if not uop.data_issued and prs2 is not None and state[prs2] != READY:
                _register(waiters, prs2, uop)
            return
        waiting = False
        if prs1 is not None and state[prs1] == NOT_READY:
            _register(self._waiters, prs1, uop)
            waiting = True
        if prs2 is not None and state[prs2] == NOT_READY:
            _register(self._waiters, prs2, uop)
            waiting = True
        if waiting:
            uop.iq_status = IQ_WAITING
        else:
            self._mark_ready(uop)

    def _mark_ready(self, uop):
        uop.iq_status = IQ_READY
        insort(self._ready, (uop.seq, uop))

    @staticmethod
    def _store_can_fire(uop, state):
        """Can at least one unissued store half issue (operand READY)?"""
        return (
            not uop.addr_issued
            and (uop.prs1 is None or state[uop.prs1] == READY)
        ) or (
            not uop.data_issued
            and (uop.prs2 is None or state[uop.prs2] == READY)
        )

    # -- wakeup bus (PhysRegFile listener interface) -----------------------

    def on_preg_usable(self, preg):
        """``NOT_READY -> SPEC_READY``: plain consumers may now issue;
        store halves require the full READY broadcast and re-register."""
        waiting = self._waiters.pop(preg, None)
        if not waiting:
            return
        keep = None
        for uop in waiting:
            if uop.iq_status != IQ_WAITING or uop.killed:
                continue  # departed entry; drop the stale registration
            if uop.op_is_store:
                if keep is None:
                    keep = set()
                keep.add(uop)
                continue
            self._classify(uop)
        if keep:
            existing = self._waiters.get(preg)
            if existing is None:
                self._waiters[preg] = keep
            else:
                existing.update(keep)

    def on_preg_ready(self, preg):
        """``* -> READY``: the architectural broadcast wakes everyone."""
        waiting = self._waiters.pop(preg, None)
        if not waiting:
            return
        for uop in waiting:
            if uop.iq_status != IQ_WAITING or uop.killed:
                continue
            self._classify(uop)

    def on_preg_revoked(self, preg):
        """``SPEC_READY -> NOT_READY``: demote ready consumers that were
        counting on the speculative value.  Store halves never treat
        SPEC_READY as usable, so only plain entries can be affected."""
        ready = self._ready
        if not ready:
            return
        demoted = [
            uop
            for _seq, uop in ready
            if not uop.op_is_store and (uop.prs1 == preg or uop.prs2 == preg)
        ]
        if not demoted:
            return
        drop = set(demoted)
        self._ready = [item for item in ready if item[1] not in drop]
        for uop in demoted:
            self._classify(uop)

    # -- recovery ----------------------------------------------------------

    def squash_younger(self, seq):
        """Remove entries younger than ``seq`` (misprediction squash)."""
        entries = self.entries
        if not entries:
            return
        stale = []
        for entry_seq in reversed(entries):
            if entry_seq <= seq:
                break
            stale.append(entry_seq)
        if not stale:
            return
        for entry_seq in stale:
            entries.pop(entry_seq).iq_status = IQ_NONE
        if self._ready:
            self._ready = [item for item in self._ready if item[0] <= seq]
        # _waiters/_spec_waiters registrations are discarded lazily: the
        # IQ_NONE status (and killed flag) makes them inert.

    def flush(self):
        for uop in self.entries.values():
            uop.iq_status = IQ_NONE
        self.entries = {}
        self._ready = []
        self._waiters = {}
        self._spec_waiters = {}

    # -- select -----------------------------------------------------------

    def select_and_issue(self, cycle):
        """Pick winners for this cycle and hand them to the core.

        Returns the list of (uop, half) pairs actually sent to execute.
        Only ready-list entries are examined — oldest first, identical
        to a full age-ordered scan, because an entry with an unusable
        operand could never win selection anyway.
        """
        ready = self._ready
        if not ready:
            return ()
        core = self.core
        prf = core.prf
        state = prf.state
        blocks_issue = self._blocks_issue
        on_issue = self._on_issue
        slots = self.config.issue_width
        mem_slots = self.config.mem_width
        issued = []
        dirty = False
        div_granted = False

        for seq, uop in ready:
            if slots <= 0:
                break
            if uop.iq_status != IQ_READY:  # pragma: no cover - defensive
                dirty = True
                continue
            if uop.op_is_store:
                slots, mem_slots = self._try_store(
                    uop, cycle, slots, mem_slots, issued
                )
                if uop.addr_issued and uop.data_issued:
                    del self.entries[seq]
                    uop.iq_status = IQ_NONE
                    dirty = True
                elif not self._store_can_fire(uop, state):
                    # The fireable half went out; wait for the rest.
                    self._classify(uop)
                    dirty = True
                continue

            if uop.op_is_load and mem_slots <= 0:
                continue
            # Live operand guard: the wakeup index keeps this in sync,
            # but a revoked operand must never slip through to execute.
            prs1 = uop.prs1
            prs2 = uop.prs2
            if (prs1 is not None and state[prs1] == NOT_READY) or (
                prs2 is not None and state[prs2] == NOT_READY
            ):  # pragma: no cover - defensive
                self._classify(uop)
                dirty = True
                continue
            if blocks_issue is not None and blocks_issue(uop, WHOLE):
                core.stats.taint_blocked_issues += 1
                if core._obs_account is not None:
                    core._obs_account.issue_blocked(core.scheme.delay_label)
                continue
            if uop.op_is_div:
                # One unpipelined divider: a single grant per cycle,
                # and only once the previous division has drained.
                if div_granted or not core.div_free(cycle):
                    continue
                div_granted = True

            slots -= 1
            if on_issue is not None and not on_issue(uop, WHOLE, cycle):
                core.stats.wasted_issue_slots += 1
                continue

            if uop.op_is_load:
                mem_slots -= 1
            # Inlined _spec_sources: no set allocated on the (common)
            # non-speculative path.
            spec = None
            if prs1 is not None and state[prs1] == 1:  # SPEC_READY
                spec = {prs1}
            if prs2 is not None and state[prs2] == 1:
                if spec is None:
                    spec = {prs2}
                else:
                    spec.add(prs2)
            uop.addr_issued = True
            uop.issue_cycle = cycle
            issued.append((uop, WHOLE))
            dirty = True
            if spec is not None:
                uop.spec_deps = spec
                uop.iq_status = IQ_ISSUED
                for preg in spec:
                    _register(self._spec_waiters, preg, uop)
            else:
                uop.spec_deps = None
                uop.iq_status = IQ_NONE
                del self.entries[seq]

        if dirty:
            self._ready = [item for item in self._ready
                           if item[1].iq_status == IQ_READY]
        return issued

    def _try_store(self, uop, cycle, slots, mem_slots, issued):
        """Attempt (partial) issue of a store's address/data halves."""
        core = self.core
        state = core.prf.state
        blocks_issue = self._blocks_issue
        on_issue = self._on_issue

        addr_ready = not uop.addr_issued and (
            uop.prs1 is None or state[uop.prs1] == READY
        )
        data_ready = not uop.data_issued and (
            uop.prs2 is None or state[uop.prs2] == READY
        )
        if blocks_issue is not None:
            account = core._obs_account
            if addr_ready and blocks_issue(uop, ADDR):
                core.stats.taint_blocked_issues += 1
                if account is not None:
                    account.issue_blocked(core.scheme.delay_label)
                addr_ready = False
            if data_ready and blocks_issue(uop, DATA):
                core.stats.taint_blocked_issues += 1
                if account is not None:
                    account.issue_blocked(core.scheme.delay_label)
                data_ready = False
        if not addr_ready and not data_ready:
            return slots, mem_slots
        if mem_slots <= 0:
            return slots, mem_slots

        # One issue slot covers whichever halves fire this cycle
        # (unified micro-op: a single scheduler grant).
        slots -= 1
        mem_slots -= 1

        if addr_ready:
            if on_issue is None or on_issue(uop, ADDR, cycle):
                uop.addr_issued = True
                if not uop.data_issued and not data_ready:
                    core.stats.partial_store_issues += 1
                issued.append((uop, ADDR))
            else:
                core.stats.wasted_issue_slots += 1
                return slots, mem_slots
        if data_ready:
            if on_issue is None or on_issue(uop, DATA, cycle):
                uop.data_issued = True
                issued.append((uop, DATA))
            else:
                core.stats.wasted_issue_slots += 1
        if uop.issue_cycle is None and (uop.addr_issued or uop.data_issued):
            uop.issue_cycle = cycle
        return slots, mem_slots

    # -- speculative wakeup bookkeeping ------------------------------------

    def confirm_spec(self, preg):
        """A speculative wakeup proved correct: release entries whose
        only reason for staying was waiting on ``preg``."""
        waiting = self._spec_waiters.pop(preg, None)
        if not waiting:
            return
        for uop in waiting:
            deps = uop.spec_deps
            if not deps or preg not in deps or uop.killed:
                continue  # replayed/departed since registering
            deps.discard(preg)
            if deps:
                continue
            uop.spec_deps = None
            if uop.iq_status == IQ_ISSUED:
                uop.iq_status = IQ_NONE
                self.entries.pop(uop.seq, None)

    def kill_spec(self, preg):
        """A speculative wakeup was wrong (L1 miss): replay consumers.

        Returns the replayed micro-ops (the core cancels their
        scheduled events via the generation bump in ``replay``).
        """
        waiting = self._spec_waiters.pop(preg, None)
        if not waiting:
            return []
        replayed = []
        for uop in waiting:
            deps = uop.spec_deps
            if not deps or preg not in deps or uop.killed:
                continue
            for other in deps:
                if other != preg:
                    others = self._spec_waiters.get(other)
                    if others is not None:
                        others.discard(uop)
            uop.replay()
            replayed.append(uop)
            # The revoked operand is NOT_READY again (revoke_spec runs
            # before kill_spec), so this re-registers the consumer.
            self._classify(uop)
        return replayed

    def occupancy(self):
        return len(self.entries)


def _register(index, preg, uop):
    consumers = index.get(preg)
    if consumers is None:
        index[preg] = {uop}
    else:
        consumers.add(uop)
