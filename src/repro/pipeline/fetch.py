"""Decoupled front end: fetch + predict into a fetch buffer.

Fetches up to ``width`` instructions per cycle, following predicted
control flow (a taken control instruction ends the fetch group).
Fetched entries become visible to rename ``frontend_depth`` cycles
later, modelling the fetch/decode pipeline depth; mispredict redirects
additionally pay ``redirect_penalty`` cycles before fetch resumes.

The rename stage drains the buffer a *group* at a time:
:class:`FetchGroup` is the ordered batch of micro-ops leaving the
buffer together in one cycle, built by the core's rename/dispatch
phase and handed whole to
:meth:`~repro.pipeline.rename.RenameUnit.rename_group` and the
scheme's ``on_rename_group`` hook (the paper's Figure 2 in-order group
walkthrough).  Fetch entries themselves are pooled — popped entries
return to a free list and are re-armed in place — so the steady-state
front end allocates nothing.

:meth:`FetchUnit.fetch_wake_cycle` exposes the fetch side's next
activity cycle to the core's idle-cycle fast-forward: cycles strictly
before it are guaranteed fetch no-ops.

**Trace-position tracking.**  When the core runs against a recorded
:class:`~repro.isa.trace.DynamicTrace`, the fetch unit labels every
fetched entry with its position in the trace (``trace_index``; -1 =
off-trace / wrong path).  The position advances with predicted control
flow: unconditional steps (plain ops, JAL) advance by construction;
predicted branches and JALRs advance only while the predicted successor
matches the trace's architectural successor, and drop to -1 at the
first divergence — the fetch stream beyond that point is wrong-path and
will be squashed.  :meth:`FetchUnit.redirect` accepts the recovery
position computed by the core's squash/flush handlers, which is how the
stream re-enters the trace after a misprediction.

Since trace-v2 the trace columns are typed arrays (``array('Q')`` etc.,
see :mod:`repro.isa.trace`); indexing them here still yields plain
``int``s, so the position-advance logic is layout-agnostic — the fetch
unit only ever compares ``next_pcs[pos]`` against its predicted PC.
"""

from collections import deque

from repro.isa.instructions import Opcode


class FetchGroup(list):
    """One rename group: micro-ops leaving the fetch buffer together.

    A plain ordered list, age order == program order.  The core keeps
    a single instance and clears it every cycle, so group dispatch
    allocates no containers; consumers (rename, issue queue, LSU,
    scheme hooks) treat it as an immutable snapshot for the duration
    of the rename phase.
    """

    __slots__ = ()


class FetchEntry:
    """One fetched instruction plus its prediction metadata."""

    __slots__ = (
        "pc",
        "instr",
        "fetch_cycle",
        "pred_taken",
        "pred_target",
        "ghr_before",
        "trace_index",
    )

    def __init__(self, pc, instr, fetch_cycle):
        self.reset(pc, instr, fetch_cycle)

    def reset(self, pc, instr, fetch_cycle):
        """Re-arm a recycled entry (identical to a fresh construction)."""
        self.pc = pc
        self.instr = instr
        self.fetch_cycle = fetch_cycle
        self.pred_taken = False
        self.pred_target = None
        self.ghr_before = None
        self.trace_index = -1


class FetchUnit:
    """Program counter, predictor interface, and the fetch buffer."""

    def __init__(self, core, program, predictor, btb, trace=None):
        self.core = core
        self.config = core.config
        self.program = program
        self.predictor = predictor
        self.btb = btb
        self.queue = deque()
        self.fetch_pc = program.entry
        self.stalled_until = 0
        self.halted = False
        # Recycled FetchEntry objects (bounded by the buffer size).
        self._entry_pool = []
        # Trace replay: architectural successor column and the current
        # fetch-stream position within the trace (-1 = off-trace).
        # Boxed list view: fetch reads one successor per on-trace
        # instruction, and array subscripts re-box per read (see
        # DynamicTrace.replay_columns).
        self._tr_next = (trace.replay_columns()[0]
                         if trace is not None else None)
        self.trace_pos = 0 if trace is not None else -1

    # -- per-cycle fetch -----------------------------------------------------

    def do_cycle(self, cycle):
        if self.halted or cycle < self.stalled_until:
            return
        budget = self.config.width
        program = self.program
        program_len = len(program)
        queue = self.queue
        buffer_limit = self.config.fetch_buffer_entries
        entry_pool = self._entry_pool
        tr_next = self._tr_next
        # PC, trace position, and the fetch counter live in locals for
        # the duration of the loop (one attribute write each at the
        # single exit point below instead of one per fetched entry).
        pos = self.trace_pos
        fetch_pc = self.fetch_pc
        fetched = 0
        while budget > 0 and len(queue) < buffer_limit:
            if not 0 <= fetch_pc < program_len:
                # Wrong-path fetch ran off the program; wait for the
                # inevitable squash to redirect us.
                self.halted = True
                break
            pc = fetch_pc
            instr = program[pc]
            if entry_pool:
                # Inlined FetchEntry.reset (hot path: one per fetch).
                entry = entry_pool.pop()
                entry.pc = pc
                entry.instr = instr
                entry.fetch_cycle = cycle
                entry.pred_taken = False
                entry.pred_target = None
                entry.ghr_before = None
            else:
                entry = FetchEntry(pc, instr, cycle)
            entry.trace_index = pos
            fetched += 1
            budget -= 1

            op = instr.op
            if op is Opcode.HALT:
                # The halt step never advances the position: the trace
                # parks there too (its successor is itself).
                queue.append(entry)
                self.halted = True
                break

            if instr.info.is_branch:
                entry.ghr_before = self.predictor.snapshot()
                taken = self.predictor.predict(pc)
                entry.pred_taken = taken
                entry.pred_target = instr.imm if taken else pc + 1
                queue.append(entry)
                fetch_pc = entry.pred_target
                if pos >= 0:
                    # Stay on-trace only while prediction matches the
                    # architectural successor; a divergence here is a
                    # misprediction-to-be — everything fetched beyond
                    # it is wrong path until the squash recovers us.
                    pos = pos + 1 if entry.pred_target == tr_next[pos] else -1
                if taken:
                    break  # taken control ends the fetch group
                continue

            if op is Opcode.JAL:
                entry.pred_taken = True
                entry.pred_target = instr.imm
                queue.append(entry)
                fetch_pc = instr.imm
                if pos >= 0:
                    pos += 1  # unconditional: predicted == architectural
                break

            if op is Opcode.JALR:
                entry.ghr_before = self.predictor.snapshot()
                predicted = self.btb.predict(pc)
                entry.pred_taken = True
                entry.pred_target = predicted if predicted is not None else pc + 1
                queue.append(entry)
                fetch_pc = entry.pred_target
                if pos >= 0:
                    pos = pos + 1 if entry.pred_target == tr_next[pos] else -1
                break

            queue.append(entry)
            fetch_pc = pc + 1
            if pos >= 0:
                pos += 1  # plain op: fall-through == architectural
        self.fetch_pc = fetch_pc
        self.trace_pos = pos
        if fetched:
            self.core.stats.fetched_instructions += fetched

    # -- rename-side interface ---------------------------------------------------

    def peek_ready(self, cycle):
        """Oldest entry old enough to have cleared the front end, or None."""
        if not self.queue:
            return None
        entry = self.queue[0]
        if entry.fetch_cycle + self.config.frontend_depth > cycle:
            return None
        return entry

    def redirect_stalled(self, cycle):
        """True while fetch is waiting out a squash/flush redirect."""
        return not self.halted and cycle < self.stalled_until

    def fetch_wake_cycle(self, cycle):
        """First cycle >= ``cycle`` at which the fetch side can fetch.

        Returns ``None`` when it cannot without external help: the unit
        is halted (ran off the program or fetched a halt), or the fetch
        buffer is full — only a rename-side pop frees space, and during
        an idle window rename pops nothing.  The core's idle-cycle
        fast-forward relies on the guarantee that every cycle strictly
        before the returned value (or every cycle at all, for ``None``)
        is a fetch no-op: no instructions fetched, no counters touched,
        no buffer entries added.
        """
        if self.halted or len(self.queue) >= self.config.fetch_buffer_entries:
            return None
        return cycle if cycle >= self.stalled_until else self.stalled_until

    def recycle_entry(self, entry):
        """Return a consumed (renamed) entry to the free list."""
        self._entry_pool.append(entry)

    # -- recovery ------------------------------------------------------------------

    def redirect(self, pc, resume_cycle, trace_pos=-1):
        """Squash the buffer and restart fetch at ``pc``.

        ``trace_pos`` is the trace position of the redirect target —
        the core's recovery paths compute it when the redirect provably
        re-enters the recorded stream, and pass -1 (off-trace) in every
        other case, including when no trace is attached.
        """
        queue = self.queue
        if queue:
            self._entry_pool.extend(queue)
            queue.clear()
        self.fetch_pc = pc
        self.stalled_until = resume_cycle
        self.halted = False
        self.trace_pos = trace_pos
