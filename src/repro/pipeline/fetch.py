"""Decoupled front end: fetch + predict into a fetch buffer.

Fetches up to ``width`` instructions per cycle, following predicted
control flow (a taken control instruction ends the fetch group).
Fetched entries become visible to rename ``frontend_depth`` cycles
later, modelling the fetch/decode pipeline depth; mispredict redirects
additionally pay ``redirect_penalty`` cycles before fetch resumes.
"""

from collections import deque


class FetchEntry:
    """One fetched instruction plus its prediction metadata."""

    __slots__ = (
        "pc",
        "instr",
        "fetch_cycle",
        "pred_taken",
        "pred_target",
        "ghr_before",
    )

    def __init__(self, pc, instr, fetch_cycle):
        self.pc = pc
        self.instr = instr
        self.fetch_cycle = fetch_cycle
        self.pred_taken = False
        self.pred_target = None
        self.ghr_before = None


class FetchUnit:
    """Program counter, predictor interface, and the fetch buffer."""

    def __init__(self, core, program, predictor, btb):
        self.core = core
        self.config = core.config
        self.program = program
        self.predictor = predictor
        self.btb = btb
        self.queue = deque()
        self.fetch_pc = program.entry
        self.stalled_until = 0
        self.halted = False

    # -- per-cycle fetch -----------------------------------------------------

    def do_cycle(self, cycle):
        if self.halted or cycle < self.stalled_until:
            return
        budget = self.config.width
        program_len = len(self.program)
        while budget > 0 and len(self.queue) < self.config.fetch_buffer_entries:
            if not 0 <= self.fetch_pc < program_len:
                # Wrong-path fetch ran off the program; wait for the
                # inevitable squash to redirect us.
                self.halted = True
                return
            pc = self.fetch_pc
            instr = self.program[pc]
            entry = FetchEntry(pc, instr, cycle)
            self.core.stats.fetched_instructions += 1
            budget -= 1

            if instr.op.value == "halt":
                self.queue.append(entry)
                self.halted = True
                return

            if instr.is_branch:
                entry.ghr_before = self.predictor.snapshot()
                taken = self.predictor.predict(pc)
                entry.pred_taken = taken
                entry.pred_target = instr.imm if taken else pc + 1
                self.queue.append(entry)
                self.fetch_pc = entry.pred_target
                if taken:
                    return  # taken control ends the fetch group
                continue

            if instr.op.value == "jal":
                entry.pred_taken = True
                entry.pred_target = instr.imm
                self.queue.append(entry)
                self.fetch_pc = instr.imm
                return

            if instr.op.value == "jalr":
                entry.ghr_before = self.predictor.snapshot()
                predicted = self.btb.predict(pc)
                entry.pred_taken = True
                entry.pred_target = predicted if predicted is not None else pc + 1
                self.queue.append(entry)
                self.fetch_pc = entry.pred_target
                return

            self.queue.append(entry)
            self.fetch_pc = pc + 1

    # -- rename-side interface ---------------------------------------------------

    def peek_ready(self, cycle):
        """Oldest entry old enough to have cleared the front end, or None."""
        if not self.queue:
            return None
        entry = self.queue[0]
        if entry.fetch_cycle + self.config.frontend_depth > cycle:
            return None
        return entry

    def pop(self):
        return self.queue.popleft()

    # -- recovery ------------------------------------------------------------------

    def redirect(self, pc, resume_cycle):
        """Squash the buffer and restart fetch at ``pc``."""
        self.queue.clear()
        self.fetch_pc = pc
        self.stalled_until = resume_cycle
        self.halted = False
