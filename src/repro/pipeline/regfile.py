"""Physical register file: values plus readiness state.

Readiness has three states to support speculative L1-hit scheduling:

* ``NOT_READY`` — producer has not broadcast.
* ``SPEC_READY`` — a load predicted to hit L1 broadcast a speculative
  wakeup; consumers may issue but can be replayed if the load misses.
* ``READY`` — the value is architecturally available.
"""

NOT_READY = 0
SPEC_READY = 1
READY = 2


class PhysRegFile:
    """Physical register values and ready bits."""

    def __init__(self, num_regs):
        if num_regs < 33:
            raise ValueError("need more than 32 physical registers")
        self.num_regs = num_regs
        self.values = [0] * num_regs
        self.state = [READY] * num_regs

    def mark_alloc(self, preg):
        """A freshly-allocated destination is not ready until written."""
        self.state[preg] = NOT_READY

    def write(self, preg, value):
        """Write a produced value and mark the register READY."""
        self.values[preg] = value
        self.state[preg] = READY

    def write_value_only(self, preg, value):
        """Write the value but keep the current readiness (NDA's split
        data-write / broadcast: data lands in the register file while
        the broadcast is withheld)."""
        self.values[preg] = value

    def set_spec_ready(self, preg):
        if self.state[preg] == NOT_READY:
            self.state[preg] = SPEC_READY

    def revoke_spec(self, preg):
        """A speculative wakeup turned out wrong (L1 miss)."""
        if self.state[preg] == SPEC_READY:
            self.state[preg] = NOT_READY

    def set_ready(self, preg):
        self.state[preg] = READY

    def is_ready(self, preg):
        return self.state[preg] == READY

    def is_usable(self, preg):
        """Ready or speculatively ready (issue may proceed)."""
        return self.state[preg] != NOT_READY

    def is_spec(self, preg):
        return self.state[preg] == SPEC_READY

    def read(self, preg):
        return self.values[preg]
