"""Physical register file: values plus readiness state.

Readiness has three states to support speculative L1-hit scheduling:

* ``NOT_READY`` — producer has not broadcast.
* ``SPEC_READY`` — a load predicted to hit L1 broadcast a speculative
  wakeup; consumers may issue but can be replayed if the load misses.
* ``READY`` — the value is architecturally available.

The register file is also the *wakeup broadcast bus*: every readiness
transition is pushed to an optional ``listener`` (the issue queue), so
the scheduler never re-scans its entries to discover that an operand
became usable.  The three notifications mirror the three edges of the
state machine:

* ``on_preg_usable``  — ``NOT_READY -> SPEC_READY`` (speculative wakeup;
  plain consumers may issue, store halves keep waiting for ``READY``);
* ``on_preg_ready``   — ``* -> READY`` (the architectural broadcast);
* ``on_preg_revoked`` — ``SPEC_READY -> NOT_READY`` (a speculative
  wakeup was wrong; consumers already marked ready must be demoted).

``write_value_only`` deliberately stays silent: the split data-write /
broadcast of the delayed-broadcast schemes (NDA, delay-on-miss) writes
the value while withholding the wakeup; the scheme releases it later
with ``set_ready`` from its event-scheduled visibility hook.
"""

NOT_READY = 0
SPEC_READY = 1
READY = 2


class PhysRegFile:
    """Physical register values, ready bits, and the wakeup bus."""

    def __init__(self, num_regs):
        if num_regs < 33:
            raise ValueError("need more than 32 physical registers")
        self.num_regs = num_regs
        self.values = [0] * num_regs
        self.state = [READY] * num_regs
        #: Wakeup consumer (the issue queue); optional so the register
        #: file stays usable standalone (unit tests, tools).
        self.listener = None

    def mark_alloc(self, preg):
        """A freshly-allocated destination is not ready until written.

        No notification: a new allocation cannot have consumers yet
        (consumers rename *after* the producer, in program order).
        """
        self.state[preg] = NOT_READY

    def mark_alloc_group(self, uops):
        """Batch :meth:`mark_alloc` for one renamed fetch group.

        Safe to run after the whole group's RAT pass: an in-group
        consumer of an in-group producer keys its readiness checks off
        these marks, and they land before the issue queue examines any
        group member.  The core's hot path fuses these marks into
        ``RenameUnit.rename_group`` (its ``reg_state`` argument); this
        method is the standalone form for callers composing the group
        steps themselves.
        """
        state = self.state
        for uop in uops:
            preg = uop.prd
            if preg is not None:
                state[preg] = NOT_READY

    def write(self, preg, value):
        """Write a produced value and mark the register READY."""
        self.values[preg] = value
        if self.state[preg] != READY:
            self.state[preg] = READY
            if self.listener is not None:
                self.listener.on_preg_ready(preg)

    def write_value_only(self, preg, value):
        """Write the value but keep the current readiness (NDA's split
        data-write / broadcast: data lands in the register file while
        the broadcast is withheld)."""
        self.values[preg] = value

    def set_spec_ready(self, preg):
        if self.state[preg] == NOT_READY:
            self.state[preg] = SPEC_READY
            if self.listener is not None:
                self.listener.on_preg_usable(preg)

    def revoke_spec(self, preg):
        """A speculative wakeup turned out wrong (L1 miss)."""
        if self.state[preg] == SPEC_READY:
            self.state[preg] = NOT_READY
            if self.listener is not None:
                self.listener.on_preg_revoked(preg)

    def set_ready(self, preg):
        if self.state[preg] != READY:
            self.state[preg] = READY
            if self.listener is not None:
                self.listener.on_preg_ready(preg)

    def is_ready(self, preg):
        return self.state[preg] == READY

    def is_usable(self, preg):
        """Ready or speculatively ready (issue may proceed)."""
        return self.state[preg] != NOT_READY

    def is_spec(self, preg):
        return self.state[preg] == SPEC_READY

    def read(self, preg):
        return self.values[preg]
