"""Activity-based power model (Table 4's power column).

Power = static + dynamic.  The static term is proportional to the area
census; the dynamic term charges per-event energies against activity
counters from a simulation run at the synthesis frequency (the paper
synthesizes at a fixed 50 MHz for the area/power comparison, so the
frequency cancels out of the *relative* numbers).

This module owns the substrate's event energies (commit, fetch, wasted
slots, kills, flushes, mispredicts).  Scheme-specific terms — taint-RAT
touches, taint-unit CAM lookups, delayed-broadcast releases — live with
the schemes: each :class:`~repro.core.registry.SchemeSpec` registers a
``power(stats)`` callable and :func:`estimate_power` adds its result to
the substrate energy.  :data:`E_BROADCAST` is exported for those
contributions (every broadcast-delaying scheme charges it).

The paper's Mega-configuration results this model aims to reproduce:
STT-Rename ~1.008x, STT-Issue ~1.026x, NDA ~0.936x baseline power.
The signs follow directly from activity: NDA executes strictly fewer
micro-ops per committed instruction (no wasted replays, no spec-hit
kills, fewer wrong-path executions after delayed branches) and removes
logic, while STT-Issue adds a taint-unit CAM lookup on *every* issue
plus wasted nop slots.
"""

from dataclasses import dataclass

from repro.core.registry import get_spec
from repro.timing.area import estimate_area

# Relative energy weights per event (arbitrary units).
_E_COMMIT = 1.0          # useful work per committed instruction
_E_FETCH = 0.35
_E_ISSUE_WASTED = 0.9    # replayed / nop'ed issue slots
_E_SPEC_KILL = 1.6       # kill broadcast + replay wakeups
_E_FLUSH = 18.0          # full-pipeline flush
_E_MISPREDICT = 9.0      # checkpoint restore
#: Untaint / delayed-broadcast event energy, shared by every
#: broadcast-delaying scheme's registered power contribution.
E_BROADCAST = 0.2
#: Static power per LUT/FF proxy unit.
_STATIC_PER_LUT = 0.000030
_STATIC_PER_FF = 0.000012


@dataclass(frozen=True)
class PowerReport:
    """Power estimate for one (config, scheme) simulation."""

    config_name: str
    scheme_name: str
    dynamic: float
    static: float

    @property
    def total(self):
        return self.dynamic + self.static

    def relative_to(self, baseline):
        return self.total / baseline.total


def estimate_power(config, scheme_name, stats):
    """Estimate power from a run's statistics.

    ``stats`` is the :class:`~repro.pipeline.stats.SimStats` of a
    simulation of the same scheme on the same configuration.  Returns
    a :class:`PowerReport`; meaningful only relative to a baseline
    report from the *same workload*.
    """
    cycles = max(1, stats.cycles)
    timing = get_spec(scheme_name).timing

    energy = 0.0
    energy += _E_COMMIT * stats.committed_instructions
    energy += _E_FETCH * stats.fetched_instructions
    energy += _E_ISSUE_WASTED * stats.wasted_issue_slots
    energy += _E_SPEC_KILL * stats.spec_wakeup_kills
    energy += _E_FLUSH * stats.order_violation_flushes
    energy += _E_MISPREDICT * (stats.branch_mispredicts + stats.jalr_mispredicts)
    energy += timing.power(stats)

    area = estimate_area(config, scheme_name)
    static = area.luts * _STATIC_PER_LUT + area.ffs * _STATIC_PER_FF
    return PowerReport(
        config_name=config.name,
        scheme_name=scheme_name,
        dynamic=energy / cycles,
        static=static,
    )
