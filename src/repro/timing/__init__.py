"""Synthesis substitute: structural timing, area, and power models.

The paper synthesizes BOOM RTL with Vitis for an Alveo U250 and reports
achieved frequency (Figure 9/10), LUT/FF area, and power (Table 4).
Offline, we substitute structural models over the same configuration
record the IPC simulator uses:

* :mod:`repro.timing.critpath` — per-stage delay equations in core
  width / issue-queue size / physical registers, with per-scheme
  deltas encoding exactly the paper's structural arguments: the serial
  YRoT chain on STT-Rename's rename path, the flat taint-unit +
  broadcast cost on STT-Issue's issue path, and the removed
  speculative-hit scheduling for NDA.
* :mod:`repro.timing.synthesis` — frequency search over the stage
  delays (the model's "timing closure").
* :mod:`repro.timing.area` — a structure census (state bits -> FF
  proxies, combinational terms -> LUT proxies).
* :mod:`repro.timing.power` — activity-based power fed by simulator
  statistics plus a static term from the area census.
"""

from repro.timing.critpath import (
    CriticalPathModel,
    StageDelays,
    scheme_stage_delays,
)
from repro.timing.synthesis import (
    SynthesisResult,
    achieved_frequency_mhz,
    relative_timing,
    synthesize,
)
from repro.timing.area import AreaReport, estimate_area
from repro.timing.power import PowerReport, estimate_power

__all__ = [
    "CriticalPathModel",
    "StageDelays",
    "scheme_stage_delays",
    "SynthesisResult",
    "achieved_frequency_mhz",
    "relative_timing",
    "synthesize",
    "AreaReport",
    "estimate_area",
    "PowerReport",
    "estimate_power",
]
