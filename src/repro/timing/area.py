"""Area census: LUT and FF proxies per microarchitectural structure.

The paper's Table 4 reports, for the Mega configuration synthesized at
50 MHz, the area of each scheme normalised to the unsafe baseline:

==========  =====  =====
scheme      LUTs   FFs
==========  =====  =====
STT-Rename  1.060  1.094
STT-Issue   1.059  1.039
NDA         0.980  1.027
==========  =====  =====

This module owns the *baseline substrate* census: state bits (FF
proxies) and combinational terms (LUT proxies) per structure of the
unprotected core.  Per-scheme additions live with the schemes
themselves — each :class:`~repro.core.registry.SchemeSpec` carries
``area_luts``/``area_ffs`` contribution callables in its
:class:`~repro.core.registry.SchemeTiming`, and :func:`estimate_area`
applies them on top of the baseline.  The registered contributions
mirror the paper's qualitative attribution: STT-Rename's FF surplus
comes from taint-RAT *checkpoints* (Section 4.2); STT-Issue trades
those FFs for a physical-register-indexed taint table; NDA adds a few
LSU flags but *removes* the speculative-hit scheduling logic
(:func:`spec_hit_luts`), giving it a LUT reduction.
"""

import math
from dataclasses import dataclass

from repro.core.registry import get_spec

#: Width of a YRoT tag (enough to index the in-flight load window).
#: Shared by every taint-tracking scheme's area contribution.
YROT_TAG_BITS = 7


@dataclass(frozen=True)
class AreaReport:
    """LUT/FF estimates for one (config, scheme) pair."""

    config_name: str
    scheme_name: str
    luts: float
    ffs: float

    def relative_to(self, baseline):
        return (self.luts / baseline.luts, self.ffs / baseline.ffs)


def _baseline_ffs(cfg):
    """State bits of the unprotected core."""
    preg_bits = math.ceil(math.log2(cfg.num_phys_regs))
    ffs = 0.0
    ffs += cfg.num_phys_regs * 64                 # physical register file
    ffs += cfg.rob_entries * 52                   # ROB payload
    ffs += cfg.iq_entries * 46                    # issue-queue payload + ready
    ffs += 32 * preg_bits                         # RAT
    ffs += cfg.max_branches * 32 * preg_bits      # RAT checkpoints
    ffs += cfg.ldq_entries * 86                   # LDQ (addr + state)
    ffs += cfg.stq_entries * 150                  # STQ (addr + data + state)
    ffs += 4096 * 2                               # direction predictor
    ffs += cfg.btb_entries * 34                   # BTB
    ffs += cfg.fetch_buffer_entries * 48          # fetch buffer
    ffs += cfg.width * 350                        # pipeline registers
    ffs += cfg.mem_width * 220                    # LSU pipeline registers
    return ffs


def _baseline_luts(cfg):
    """Combinational logic of the unprotected core."""
    w = cfg.width
    luts = 0.0
    luts += w * 900                               # ALUs
    luts += 1500 + 350 * w                        # MUL/DIV shared logic
    luts += w * w * 230                           # bypass network
    luts += w * w * 120                           # rename cross-compare
    luts += cfg.iq_entries * 2 * 9                # wakeup CAM
    luts += cfg.iq_entries * math.log2(max(2, cfg.iq_entries)) * 6  # select
    luts += (cfg.ldq_entries + cfg.stq_entries) * 26  # LSU search CAMs
    luts += cfg.mem_width * 700                   # LSU datapaths
    luts += 2200                                  # decode
    luts += 1400                                  # fetch / next-PC
    # Speculative L1-hit scheduling: kill/replay network (schemes that
    # disable speculative wakeups subtract spec_hit_luts()).
    luts += spec_hit_luts(cfg)
    return luts


def spec_hit_luts(cfg):
    """The speculative-hit scheduling (kill/replay) logic's LUTs.

    Part of the baseline census; schemes that remove speculative
    L1-hit wakeups (NDA, delay-on-miss) subtract this in their
    registered area contribution.
    """
    return cfg.iq_entries * 8 + cfg.width * 140


def estimate_area(config, scheme_name):
    """Area census for one scheme; returns an :class:`AreaReport`.

    Baseline substrate plus the scheme's registered LUT/FF
    contributions; unknown scheme names raise ``ValueError``.
    """
    timing = get_spec(scheme_name).timing
    return AreaReport(
        config_name=config.name,
        scheme_name=scheme_name,
        luts=_baseline_luts(config) + timing.area_luts(config),
        ffs=_baseline_ffs(config) + timing.area_ffs(config),
    )
