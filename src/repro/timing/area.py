"""Area census: LUT and FF proxies per microarchitectural structure.

The paper's Table 4 reports, for the Mega configuration synthesized at
50 MHz, the area of each scheme normalised to the unsafe baseline:

==========  =====  =====
scheme      LUTs   FFs
==========  =====  =====
STT-Rename  1.060  1.094
STT-Issue   1.059  1.039
NDA         0.980  1.027
==========  =====  =====

The census counts state bits (FF proxies) and combinational terms
(LUT proxies) per structure, with per-scheme additions that mirror the
paper's qualitative attribution: STT-Rename's FF surplus comes from
taint-RAT *checkpoints* (Section 4.2); STT-Issue trades those FFs for
a physical-register-indexed taint table; NDA adds a few LSU flags but
*removes* the speculative-hit scheduling logic, giving it a LUT
reduction.
"""

import math
from dataclasses import dataclass

#: Width of a YRoT tag (enough to index the in-flight load window).
YROT_TAG_BITS = 7


@dataclass(frozen=True)
class AreaReport:
    """LUT/FF estimates for one (config, scheme) pair."""

    config_name: str
    scheme_name: str
    luts: float
    ffs: float

    def relative_to(self, baseline):
        return (self.luts / baseline.luts, self.ffs / baseline.ffs)


def _baseline_ffs(cfg):
    """State bits of the unprotected core."""
    preg_bits = math.ceil(math.log2(cfg.num_phys_regs))
    ffs = 0.0
    ffs += cfg.num_phys_regs * 64                 # physical register file
    ffs += cfg.rob_entries * 52                   # ROB payload
    ffs += cfg.iq_entries * 46                    # issue-queue payload + ready
    ffs += 32 * preg_bits                         # RAT
    ffs += cfg.max_branches * 32 * preg_bits      # RAT checkpoints
    ffs += cfg.ldq_entries * 86                   # LDQ (addr + state)
    ffs += cfg.stq_entries * 150                  # STQ (addr + data + state)
    ffs += 4096 * 2                               # direction predictor
    ffs += cfg.btb_entries * 34                   # BTB
    ffs += cfg.fetch_buffer_entries * 48          # fetch buffer
    ffs += cfg.width * 350                        # pipeline registers
    ffs += cfg.mem_width * 220                    # LSU pipeline registers
    return ffs


def _baseline_luts(cfg):
    """Combinational logic of the unprotected core."""
    w = cfg.width
    luts = 0.0
    luts += w * 900                               # ALUs
    luts += 1500 + 350 * w                        # MUL/DIV shared logic
    luts += w * w * 230                           # bypass network
    luts += w * w * 120                           # rename cross-compare
    luts += cfg.iq_entries * 2 * 9                # wakeup CAM
    luts += cfg.iq_entries * math.log2(max(2, cfg.iq_entries)) * 6  # select
    luts += (cfg.ldq_entries + cfg.stq_entries) * 26  # LSU search CAMs
    luts += cfg.mem_width * 700                   # LSU datapaths
    luts += 2200                                  # decode
    luts += 1400                                  # fetch / next-PC
    # Speculative L1-hit scheduling: kill/replay network (NDA removes).
    luts += cfg.iq_entries * 8 + w * 140
    return luts


def _spec_hit_luts(cfg):
    """The speculative-hit scheduling logic NDA removes."""
    return cfg.iq_entries * 8 + cfg.width * 140


def estimate_area(config, scheme_name):
    """Area census for one scheme; returns an :class:`AreaReport`."""
    cfg = config
    name = scheme_name.lower()
    ffs = _baseline_ffs(cfg)
    luts = _baseline_luts(cfg)
    preg_tag = YROT_TAG_BITS

    if name in ("stt-rename", "stt_rename"):
        # Taint RAT + a full copy per checkpoint (the FF surplus).
        ffs += 32 * preg_tag
        ffs += cfg.max_branches * 32 * preg_tag
        ffs += cfg.iq_entries * preg_tag          # YRoT field per entry
        # Serial YRoT comparators and muxes in rename; untaint
        # broadcast comparators at every issue slot.
        luts += cfg.width * (cfg.width + 1) * 30  # chain comparators/muxes
        luts += 32 * 7                            # taint-RAT read/update
        luts += cfg.iq_entries * 9                # broadcast compare
        luts += cfg.width * 40                    # transmitter gating
    elif name in ("stt-issue", "stt_issue"):
        # Physical-register taint table (no checkpoints).
        ffs += cfg.num_phys_regs * (preg_tag + 1)  # table + valid bits
        ffs += cfg.iq_entries * (preg_tag + 2)     # YRoT field + ready mask
        ffs += cfg.issue_width * 90                # taint-unit pipeline regs
        luts += cfg.issue_width * 2 * 50          # taint-unit comparators
        luts += cfg.num_phys_regs * 3              # table read/update muxing
        luts += cfg.iq_entries * 9                 # broadcast compare
        luts += cfg.width * 40                     # nop conversion / gating
    elif name == "nda":
        # Delayed-broadcast state: per-LDQ flags + release queue.
        ffs += cfg.ldq_entries * (preg_tag + 2)
        # Completion metadata held until the broadcast is released
        # (Figure 5b's decoupled data-write / broadcast staging).
        ffs += cfg.ldq_entries * 30
        ffs += cfg.mem_width * 64
        luts += cfg.ldq_entries * 9               # release scan
        luts += cfg.mem_width * 120               # split write/broadcast mux
        luts -= _spec_hit_luts(cfg)               # removed replay logic
    elif name != "baseline":
        raise ValueError("unknown scheme %r" % scheme_name)

    return AreaReport(
        config_name=cfg.name, scheme_name=scheme_name, luts=luts, ffs=ffs
    )
