"""Frequency search over the critical-path model ("timing closure").

The paper's Figure 9 reports, per configuration and scheme, which
target frequencies met timing during synthesis.  The model equivalent:
the achieved frequency is the reciprocal of the slowest stage delay,
and a frequency target "meets timing" iff its period is at least that
delay.  :func:`synthesize` also reports the critical stage, which is
how the model exposes *why* a scheme slows down (rename for
STT-Rename, issue for STT-Issue).
"""

from dataclasses import dataclass, field

from repro.timing.critpath import CriticalPathModel


@dataclass(frozen=True)
class SynthesisResult:
    """Outcome of model "synthesis" for one (config, scheme) pair."""

    config_name: str
    scheme_name: str
    frequency_mhz: float
    critical_stage: str
    critical_delay_ps: float
    stage_delays: dict = field(default_factory=dict)

    def meets_timing(self, target_mhz):
        """Would this design close timing at ``target_mhz``?"""
        return target_mhz <= self.frequency_mhz + 1e-9


def synthesize(config, scheme_name):
    """Run model synthesis; returns a :class:`SynthesisResult`."""
    model = CriticalPathModel(config)
    delays = model.delays_for_scheme(scheme_name)
    stage, delay = delays.critical()
    return SynthesisResult(
        config_name=config.name,
        scheme_name=scheme_name,
        frequency_mhz=1e6 / delay,
        critical_stage=stage,
        critical_delay_ps=delay,
        stage_delays=delays.as_dict(),
    )


def achieved_frequency_mhz(config, scheme_name):
    """Highest frequency that closes timing, in MHz."""
    return synthesize(config, scheme_name).frequency_mhz


def relative_timing(config, scheme_name):
    """Scheme frequency normalised to the unsafe baseline (Figure 10)."""
    base = achieved_frequency_mhz(config, "baseline")
    return achieved_frequency_mhz(config, scheme_name) / base
