"""Structural critical-path model (the RTL-synthesis substitute).

Every pipeline stage gets a delay equation in the core's structural
parameters.  Delays are in picoseconds, calibrated so the unsafe
baseline lands in the BOOM-on-U250 frequency range of the paper's
Figure 9 (about 158 / 124 / 98 / 79 MHz for Small..Mega), with the
register-read + bypass network as the baseline-limiting stage — its
quadratic width term is what makes wider cores clock lower.

Scheme deltas implement the paper's structural arguments:

* **STT-Rename** (Section 4.1): the YRoT computation chains through
  the rename group — each slot's comparator+mux must see all older
  slots' results within the same cycle (Figure 3).  The delay has a
  flat taint-RAT access, a linear serial-chain term, and a quadratic
  port/wiring term, so the rename stage overtakes the baseline
  critical path for wide cores (~0.80x frequency at Mega).
* **STT-Issue** (Section 4.3): YRoT computations are independent, but
  the taint unit sits on the timing-sensitive issue path and the
  untaint broadcast loads every issue slot — a mostly-flat cost that
  bites once at Medium and grows slowly (Figure 10's "notable impact
  for the Medium configuration, but only slight increases for wider").
* **NDA** (Section 5): adds nearly nothing, and *removes* speculative
  L1-hit scheduling from the bypass network, so NDA clocks at or above
  the baseline.
"""

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class StageDelays:
    """Per-stage propagation delay in picoseconds."""

    fetch: float
    rename: float
    issue: float
    regread_bypass: float
    execute: float
    lsu: float
    writeback: float

    def as_dict(self):
        return {
            "fetch": self.fetch,
            "rename": self.rename,
            "issue": self.issue,
            "regread_bypass": self.regread_bypass,
            "execute": self.execute,
            "lsu": self.lsu,
            "writeback": self.writeback,
        }

    def critical(self):
        """(stage name, delay) of the slowest stage."""
        items = self.as_dict()
        stage = max(items, key=items.get)
        return stage, items[stage]


class CriticalPathModel:
    """Stage-delay equations for one core configuration."""

    # -- calibration constants (ps) ------------------------------------
    # Baseline: regread+bypass dominates; solved through the Figure 9
    # anchor points (158 / 124 / ~98 / 79 MHz for widths 1..4).
    _RB_BASE = 4650.0
    _RB_LIN = 1175.0
    _RB_QUAD = 187.0
    #: Speculative L1-hit scheduling contribution inside the bypass
    #: network (kill/replay selects); NDA removes it.
    _SPEC_HIT_COEFF = 60.0

    _FETCH_BASE = 2100.0
    _FETCH_LIN = 420.0

    _RENAME_BASE = 2200.0
    _RENAME_LIN = 600.0
    _RENAME_QUAD = 140.0

    _ISSUE_BASE = 2500.0
    _ISSUE_PER_ENTRY = 95.0
    _ISSUE_LIN = 330.0
    _ISSUE_SELECT = 240.0

    _EXEC_BASE = 3400.0
    _EXEC_LIN = 260.0

    _LSU_BASE = 3300.0
    _LSU_PER_ENTRY = 38.0

    _WB_BASE = 2300.0
    _WB_LIN = 300.0

    # STT-Rename rename-path additions (Section 4.1 chain).
    _STTR_FLAT = 1500.0   # taint-RAT access
    _STTR_LINK = 1268.0   # serial comparator+mux per older slot
    _STTR_PORT = 520.0    # port/wiring growth, quadratic in chain length

    # STT-Issue issue-path additions (taint unit + YRoT broadcast).
    _STTI_FLAT = 504.0
    _STTI_PER_ENTRY = 131.0
    #: Each memory pipe is an extra untaint-broadcast source the taint
    #: unit must arbitrate (bites only on the two-port Mega).
    _STTI_PER_MEM_PORT = 800.0

    # Shared untaint broadcast loading on the issue path (STT-Rename).
    _BCAST_FLAT = 300.0
    _BCAST_PER_ENTRY = 30.0

    # NDA: split data-write/broadcast mux in the LSU writeback path.
    _NDA_LSU_FLAT = 150.0

    def __init__(self, config):
        self.config = config

    # -- baseline stages -------------------------------------------------

    def fetch_delay(self):
        cfg = self.config
        return self._FETCH_BASE + self._FETCH_LIN * cfg.width + 9.0 * math.log2(
            max(2, cfg.btb_entries)
        )

    def rename_delay(self):
        w = self.config.width
        return self._RENAME_BASE + self._RENAME_LIN * w + self._RENAME_QUAD * w * w

    def issue_delay(self):
        cfg = self.config
        return (
            self._ISSUE_BASE
            + self._ISSUE_PER_ENTRY * cfg.iq_entries
            + self._ISSUE_LIN * cfg.issue_width
            + self._ISSUE_SELECT * math.log2(max(2, cfg.iq_entries))
        )

    def regread_bypass_delay(self, with_spec_hit=True):
        cfg = self.config
        w = cfg.width
        delay = (
            self._RB_BASE
            + self._RB_LIN * w
            + self._RB_QUAD * w * w
            + 45.0 * math.log2(max(2, cfg.num_phys_regs))
        )
        if with_spec_hit:
            delay += self._SPEC_HIT_COEFF * (w ** 1.5)
        return delay

    def execute_delay(self):
        return self._EXEC_BASE + self._EXEC_LIN * self.config.width

    def lsu_delay(self):
        cfg = self.config
        return self._LSU_BASE + self._LSU_PER_ENTRY * (
            cfg.ldq_entries + cfg.stq_entries
        ) / 2.0 + 120.0 * cfg.mem_width

    def writeback_delay(self):
        cfg = self.config
        return self._WB_BASE + self._WB_LIN * (cfg.width + cfg.mem_width)

    def baseline_delays(self):
        return StageDelays(
            fetch=self.fetch_delay(),
            rename=self.rename_delay(),
            issue=self.issue_delay(),
            regread_bypass=self.regread_bypass_delay(with_spec_hit=True),
            execute=self.execute_delay(),
            lsu=self.lsu_delay(),
            writeback=self.writeback_delay(),
        )

    # -- scheme deltas --------------------------------------------------------

    def stt_rename_chain_delay(self):
        """Extra rename delay from the single-cycle YRoT chain."""
        w = self.config.width
        links = w - 1
        return self._STTR_FLAT + self._STTR_LINK * links + self._STTR_PORT * links * links

    def stt_issue_taint_delay(self):
        """Extra issue delay from the taint unit + YRoT broadcast."""
        cfg = self.config
        return (
            self._STTI_FLAT
            + self._STTI_PER_ENTRY * cfg.iq_entries
            + self._STTI_PER_MEM_PORT * (cfg.mem_width - 1)
            + 20.0 * math.log2(max(2, cfg.num_phys_regs))
        )

    def broadcast_delay(self):
        """Untaint broadcast loading on every issue slot (both STTs)."""
        return self._BCAST_FLAT + self._BCAST_PER_ENTRY * self.config.iq_entries

    def delays_for_scheme(self, scheme_name):
        """Stage delays with one scheme's logic merged in."""
        base = self.baseline_delays()
        name = scheme_name.lower()
        if name == "baseline":
            return base
        if name in ("stt-rename", "stt_rename"):
            return StageDelays(
                fetch=base.fetch,
                rename=base.rename + self.stt_rename_chain_delay(),
                issue=base.issue + self.broadcast_delay(),
                regread_bypass=base.regread_bypass,
                execute=base.execute,
                lsu=base.lsu,
                writeback=base.writeback,
            )
        if name in ("stt-issue", "stt_issue"):
            return StageDelays(
                fetch=base.fetch,
                rename=base.rename,
                issue=base.issue + self.stt_issue_taint_delay(),
                regread_bypass=base.regread_bypass,
                execute=base.execute,
                lsu=base.lsu,
                writeback=base.writeback,
            )
        if name == "nda":
            return StageDelays(
                fetch=base.fetch,
                rename=base.rename,
                issue=base.issue,
                regread_bypass=self.regread_bypass_delay(with_spec_hit=False),
                execute=base.execute,
                lsu=base.lsu + self._NDA_LSU_FLAT,
                writeback=base.writeback,
            )
        raise ValueError("unknown scheme %r" % scheme_name)


def scheme_stage_delays(config, scheme_name):
    """Convenience wrapper: StageDelays for (config, scheme)."""
    return CriticalPathModel(config).delays_for_scheme(scheme_name)
