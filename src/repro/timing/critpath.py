"""Structural critical-path model (the RTL-synthesis substitute).

Every pipeline stage gets a delay equation in the core's structural
parameters.  Delays are in picoseconds, calibrated so the unsafe
baseline lands in the BOOM-on-U250 frequency range of the paper's
Figure 9 (about 158 / 124 / 98 / 79 MHz for Small..Mega), with the
register-read + bypass network as the baseline-limiting stage — its
quadratic width term is what makes wider cores clock lower.

This module owns only the *baseline* stage equations.  Per-scheme
delay contributions live with the schemes: each
:class:`~repro.core.registry.SchemeSpec` registers a
``stage_deltas(config)`` callable returning picosecond adjustments per
stage, and :meth:`CriticalPathModel.delays_for_scheme` applies them on
top of :meth:`CriticalPathModel.baseline_delays`.  The registered
deltas encode the paper's structural arguments — the serial YRoT chain
on STT-Rename's rename path (Section 4.1, Figure 3), the flat
taint-unit + broadcast cost on STT-Issue's issue path (Section 4.3),
and NDA's removed speculative-hit scheduling
(:func:`spec_hit_bypass_delay`), which lets NDA clock at or above the
baseline (Section 5).
"""

import math
from dataclasses import dataclass

from repro.core.registry import get_spec


@dataclass(frozen=True)
class StageDelays:
    """Per-stage propagation delay in picoseconds."""

    fetch: float
    rename: float
    issue: float
    regread_bypass: float
    execute: float
    lsu: float
    writeback: float

    def as_dict(self):
        return {
            "fetch": self.fetch,
            "rename": self.rename,
            "issue": self.issue,
            "regread_bypass": self.regread_bypass,
            "execute": self.execute,
            "lsu": self.lsu,
            "writeback": self.writeback,
        }

    def critical(self):
        """(stage name, delay) of the slowest stage."""
        items = self.as_dict()
        stage = max(items, key=items.get)
        return stage, items[stage]


#: Speculative L1-hit scheduling contribution inside the bypass network
#: (kill/replay selects).  Part of the baseline; schemes that disable
#: speculative wakeups subtract it via :func:`spec_hit_bypass_delay`.
_SPEC_HIT_COEFF = 60.0


def spec_hit_bypass_delay(cfg):
    """Bypass-network delay of the speculative-hit kill/replay logic."""
    return _SPEC_HIT_COEFF * (cfg.width ** 1.5)


class CriticalPathModel:
    """Stage-delay equations for one core configuration."""

    # -- calibration constants (ps) ------------------------------------
    # Baseline: regread+bypass dominates; solved through the Figure 9
    # anchor points (158 / 124 / ~98 / 79 MHz for widths 1..4).
    _RB_BASE = 4650.0
    _RB_LIN = 1175.0
    _RB_QUAD = 187.0

    _FETCH_BASE = 2100.0
    _FETCH_LIN = 420.0

    _RENAME_BASE = 2200.0
    _RENAME_LIN = 600.0
    _RENAME_QUAD = 140.0

    _ISSUE_BASE = 2500.0
    _ISSUE_PER_ENTRY = 95.0
    _ISSUE_LIN = 330.0
    _ISSUE_SELECT = 240.0

    _EXEC_BASE = 3400.0
    _EXEC_LIN = 260.0

    _LSU_BASE = 3300.0
    _LSU_PER_ENTRY = 38.0

    _WB_BASE = 2300.0
    _WB_LIN = 300.0

    def __init__(self, config):
        self.config = config

    # -- baseline stages -------------------------------------------------

    def fetch_delay(self):
        cfg = self.config
        return self._FETCH_BASE + self._FETCH_LIN * cfg.width + 9.0 * math.log2(
            max(2, cfg.btb_entries)
        )

    def rename_delay(self):
        w = self.config.width
        return self._RENAME_BASE + self._RENAME_LIN * w + self._RENAME_QUAD * w * w

    def issue_delay(self):
        cfg = self.config
        return (
            self._ISSUE_BASE
            + self._ISSUE_PER_ENTRY * cfg.iq_entries
            + self._ISSUE_LIN * cfg.issue_width
            + self._ISSUE_SELECT * math.log2(max(2, cfg.iq_entries))
        )

    def regread_bypass_delay(self, with_spec_hit=True):
        cfg = self.config
        w = cfg.width
        delay = (
            self._RB_BASE
            + self._RB_LIN * w
            + self._RB_QUAD * w * w
            + 45.0 * math.log2(max(2, cfg.num_phys_regs))
        )
        if with_spec_hit:
            delay += spec_hit_bypass_delay(cfg)
        return delay

    def execute_delay(self):
        return self._EXEC_BASE + self._EXEC_LIN * self.config.width

    def lsu_delay(self):
        cfg = self.config
        return self._LSU_BASE + self._LSU_PER_ENTRY * (
            cfg.ldq_entries + cfg.stq_entries
        ) / 2.0 + 120.0 * cfg.mem_width

    def writeback_delay(self):
        cfg = self.config
        return self._WB_BASE + self._WB_LIN * (cfg.width + cfg.mem_width)

    def baseline_delays(self):
        return StageDelays(
            fetch=self.fetch_delay(),
            rename=self.rename_delay(),
            issue=self.issue_delay(),
            regread_bypass=self.regread_bypass_delay(with_spec_hit=True),
            execute=self.execute_delay(),
            lsu=self.lsu_delay(),
            writeback=self.writeback_delay(),
        )

    # -- scheme dispatch ----------------------------------------------------

    def delays_for_scheme(self, scheme_name):
        """Stage delays with one scheme's registered deltas merged in.

        Unknown scheme names raise ``ValueError`` (from the registry).
        """
        base = self.baseline_delays()
        deltas = get_spec(scheme_name).timing.stage_deltas(self.config)
        if not deltas:
            return base
        stages = base.as_dict()
        for stage, delta in deltas.items():
            stages[stage] += delta
        return StageDelays(**stages)


def scheme_stage_delays(config, scheme_name):
    """Convenience wrapper: StageDelays for (config, scheme)."""
    return CriticalPathModel(config).delays_for_scheme(scheme_name)
