"""Command-line front end for the campaign engine: ``python -m repro``.

Subcommands:

``list``
    Print every experiment id.
``grid``
    Populate the (benchmark x config x scheme) grid — in parallel with
    ``--jobs N`` or on any backend with ``--executor`` — and print a
    cache/store/simulated summary.
``run EXPERIMENT [EXPERIMENT ...]``
    Run named experiments (or ``all``) and print their reports.  With
    ``--jobs > 1`` (or a non-serial ``--executor``) only the grid
    slices those experiments actually read — declared in the
    experiment registry itself — are pre-populated in parallel first,
    so the experiments themselves are served from cache.
``serve``
    Host a campaign as a cluster coordinator: bind a TCP port, serve
    grid cells to any number of ``work`` clients (work-stealing), and
    stream results into the store.  Prints the ``work --connect`` line
    to attach workers from other hosts.  The campaign journals itself
    next to the store; ``serve --resume`` replays the journal (queue
    order, attempt counts, quarantines) after a coordinator crash.
    Deterministic cell failures are recorded and skipped by default;
    ``--fail-fast`` restores abort-on-first-error.
``work``
    Join a cluster as a worker: ``--connect HOST:PORT``, pull cells,
    simulate, report, repeat until the coordinator drains.  Transient
    connection loss retries with capped exponential backoff
    (``--max-reconnects``); ``--cell-timeout`` converts hung cells
    into reported timeouts.
``store``
    Maintain the persistent result store: ``store verify`` quarantines
    corrupt cells aside (``.corrupt``) and drops stale ones,
    ``store gc`` evicts everything outside the standard campaign grid
    for the given scale/seed and reports the bytes reclaimed,
    ``store stats`` prints cell/segment counts, bytes on disk,
    compression ratio, and the legacy-format flag, ``store compact``
    folds live records into fresh sealed segments, ``store migrate``
    converts legacy JSON-per-cell files into segment records in place,
    and ``store failures`` lists recorded cell failures (exit 1 when
    any exist).
``schemes``
    List every registered speculation scheme straight from the scheme
    registry: canonical name, grid membership, kwargs schema, and the
    one-line description each scheme declares about itself.
``bench``
    Measure simulator throughput (simulated cycles/sec, committed KIPS)
    over the canonical workload suite; prints JSON so the BENCH
    trajectory can track kernel regressions (``--record PATH`` also
    writes the JSON to a file, e.g. ``BENCH_PR3.json`` at the repo
    root).  ``bench --store`` benchmarks the result store instead:
    write/load_many/iter throughput for the legacy JSON-per-cell
    layout vs the segment backend at ``--store-cells`` sizes.
``profile``
    cProfile one grid cell (default: the ``chase-cold`` throughput
    workload on mega/baseline) and print the top cumulative entries —
    the starting point for any simulator performance work.  ``--sort
    tottime`` reorders, ``--json`` emits the rows structurally.
``pipeview``
    Trace one throughput workload per-uop and dump it in gem5
    O3PipeView format — open the output in Konata to scrub through
    fetch/rename/issue/complete/retire of every instruction.
``metrics``
    Aggregate the ``cycacct.`` cycle-attribution extras stored with
    every campaign cell into a per-scheme stall breakdown (slots per
    leaf cause, scheme-delay sub-causes, conservation check).

Shared flags: ``--scale`` and ``--seed`` select the workload build,
``--benchmarks`` restricts the suite, ``--jobs`` sets worker count,
``--executor {serial,pool,cluster}`` picks the backend explicitly,
``--progress [human|json]`` streams done/total + cells/sec + ETA +
per-worker attribution to stderr (``json`` emits JSONL snapshots for
scripts), ``--store-dir`` relocates the persistent store, and
``--no-store`` disables it entirely (purely in-memory run).
"""

import argparse
import os
import sys

from repro.core.registry import (
    canonical_name,
    grid_scheme_names,
    iter_specs,
    scheme_names,
)
from repro.harness.experiments import (
    experiment_grid_needs,
    experiment_ids,
    run_experiment,
)
from repro.harness.progress import make_progress
from repro.harness.runner import CampaignRunner
from repro.harness.store import DEFAULT_STORE_DIR, ResultStore
from repro.pipeline.config import boom_config

#: Default coordinator port (the SPEC vintage; above the privileged range).
DEFAULT_PORT = 2017


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run ShadowBinding reproduction campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="print every experiment id")

    def add_common(p):
        p.add_argument("--scale", type=float, default=1.0,
                       help="workload iteration multiplier (default 1.0)")
        p.add_argument("--seed", type=int, default=2017,
                       help="workload generation seed (default 2017)")
        p.add_argument("--jobs", type=int, default=1,
                       help="parallel simulation workers (default 1)")
        p.add_argument("--benchmarks", nargs="+", metavar="NAME",
                       help="restrict to these benchmarks")
        p.add_argument("--store-dir", default=DEFAULT_STORE_DIR,
                       help="persistent store root (default %(default)s)")
        p.add_argument("--no-store", action="store_true",
                       help="skip the on-disk store (in-memory only)")
        p.add_argument("--progress", nargs="?", const="human",
                       choices=("human", "json"), default=None,
                       help="stream progress to stderr: human status"
                            " lines (default when given bare) or"
                            " machine-readable JSONL snapshots")

    def add_executor(p):
        p.add_argument("--executor",
                       choices=("auto", "serial", "pool", "cluster"),
                       default="auto",
                       help="execution backend (default: serial when"
                            " --jobs 1, else pool)")
        p.add_argument("--bind", metavar="HOST:PORT", default="127.0.0.1:0",
                       help="cluster executor bind address"
                            " (default %(default)s; port 0 = ephemeral)")
        p.add_argument("--local-workers", type=int, default=1,
                       help="cluster executor: in-process worker threads"
                            " (default 1; remote workers attach via"
                            " 'work --connect')")

    def add_selection(p):
        p.add_argument("--configs", nargs="+", metavar="NAME",
                       help="BOOM config names (default: all four)")
        p.add_argument("--schemes", nargs="+", metavar="NAME",
                       type=canonical_name, choices=scheme_names(),
                       help="scheme names (default: the standard grid,"
                            " %s)" % ", ".join(grid_scheme_names()))

    grid = sub.add_parser("grid", help="populate the simulation grid")
    add_common(grid)
    add_executor(grid)
    add_selection(grid)

    run = sub.add_parser("run", help="run named experiments (or 'all')")
    add_common(run)
    add_executor(run)
    run.add_argument("experiments", nargs="+", metavar="EXPERIMENT",
                     help="experiment ids, or 'all'")

    serve = sub.add_parser(
        "serve", help="host a campaign for cluster workers (coordinator)")
    add_common(serve)
    add_selection(serve)
    serve.add_argument("--host", default="0.0.0.0",
                       help="bind address (default %(default)s)")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help="bind port (default %(default)s; 0 = ephemeral)")
    serve.add_argument("--local-workers", type=int, default=0,
                       help="also run N in-process worker threads"
                            " (default 0: wait for remote workers)")
    serve.add_argument("--heartbeat-timeout", type=float, default=10.0,
                       help="seconds of worker silence before its cells"
                            " are requeued (default 10)")
    serve.add_argument("--resume", action="store_true",
                       help="replay the campaign journal from a crashed"
                            " coordinator (queue order, attempts,"
                            " quarantines) before serving")
    serve.add_argument("--fail-fast", action="store_true",
                       help="abort the campaign on the first cell"
                            " failure (default: record and continue)")
    serve.add_argument("--max-cell-attempts", type=int, default=None,
                       help="worker deaths holding one cell before it is"
                            " quarantined as poisoned (default 3)")

    work = sub.add_parser(
        "work", help="join a cluster campaign as a worker")
    work.add_argument("--connect", required=True, metavar="HOST:PORT",
                      help="coordinator address")
    work.add_argument("--name", default=None,
                      help="worker name (default host-pid-tid)")
    work.add_argument("--heartbeat-interval", type=float, default=2.0,
                      help="seconds between heartbeats (default 2)")
    work.add_argument("--max-cells", type=int, default=None,
                      help="stop after N cells (default: until drained)")
    work.add_argument("--max-reconnects", type=int, default=5,
                      help="reconnect attempts (capped exponential"
                           " backoff) after losing the coordinator"
                           " (default 5; 0 = give up immediately)")
    work.add_argument("--cell-timeout", type=float, default=None,
                      help="per-cell wall-clock deadline in seconds;"
                           " a hung cell is reported as a timeout"
                           " failure (default: none)")
    work.add_argument("--program-cache-dir", default=None, metavar="DIR",
                      help="persist generated programs under DIR so"
                           " repeated worker processes skip generation"
                           " (default: $REPRO_PROGRAM_CACHE_DIR)")

    schemes = sub.add_parser(
        "schemes", help="list registered speculation schemes")
    schemes.add_argument("--verbose", action="store_true",
                         help="also print kwargs schemas")

    store = sub.add_parser(
        "store", help="maintain the persistent result store")
    store.add_argument("action",
                       choices=("verify", "gc", "stats", "compact",
                                "migrate", "failures"),
                       help="verify: quarantine corrupt cells aside and"
                            " drop stale ones; gc: evict cells outside"
                            " the standard grid (reports bytes"
                            " reclaimed); stats: cell/segment counts,"
                            " bytes on disk, compression ratio, legacy"
                            " flag; compact: fold live records into"
                            " fresh sealed segments; migrate: convert"
                            " legacy JSON-per-cell files into segments"
                            " in place; failures: list recorded cell"
                            " failures (exit 1 when any exist)")
    store.add_argument("--store-dir", default=DEFAULT_STORE_DIR,
                       help="persistent store root (default %(default)s)")
    store.add_argument("--scale", type=float, default=1.0,
                       help="gc: grid scale to keep (default 1.0)")
    store.add_argument("--seed", type=int, default=2017,
                       help="gc: grid seed to keep (default 2017)")
    store.add_argument("--benchmarks", nargs="+", metavar="NAME",
                       help="gc: restrict the kept grid to these"
                            " benchmarks")

    bench = sub.add_parser(
        "bench", help="measure simulator throughput (JSON report)")
    bench.add_argument("--config", default="mega",
                       help="BOOM config name (default mega)")
    bench.add_argument("--scheme", default="baseline",
                       type=canonical_name, choices=scheme_names(),
                       help="scheme name (default baseline)")
    bench.add_argument("--schemes", nargs="+", metavar="NAME",
                       type=canonical_name, choices=scheme_names(),
                       help="bench several schemes over the same"
                            " programs (report gains a per-scheme"
                            " section); overrides --scheme")
    bench.add_argument("--scale", type=float, default=1.0,
                       help="workload iteration multiplier (default 1.0)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="best-of-N runs per workload (default 3)")
    bench.add_argument("--record", metavar="PATH", default=None,
                       help="also write the JSON report to PATH"
                            " (e.g. BENCH_PR3.json at the repo root)")
    bench.add_argument("--quick", action="store_true",
                       help="smoke mode: scale 0.1, single repeat —"
                            " exercises every throughput workload end"
                            " to end in seconds (CI's crash canary),"
                            " numbers not comparable to full runs")
    bench.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                       default=None,
                       help="skip measuring: diff two recorded bench"
                            " reports (per-scheme/per-workload cycles/s"
                            " delta table, warning on host-metadata"
                            " mismatch)")
    bench.add_argument("--store", action="store_true",
                       help="benchmark the result store instead of the"
                            " simulator: write/load_many/iter"
                            " throughput, legacy JSON-per-cell vs"
                            " segment backend (see --store-cells)")
    bench.add_argument("--store-cells", default="1000,10000",
                       metavar="N[,N...]",
                       help="store bench: comma-separated cell counts"
                            " (default %(default)s)")

    profile = sub.add_parser(
        "profile", help="cProfile one grid cell (top cumulative entries)")
    profile.add_argument("--benchmark", default="chase-cold",
                         help="throughput workload (default chase-cold)")
    profile.add_argument("--config", default="mega",
                         help="BOOM config name (default mega)")
    profile.add_argument("--scheme", default="baseline",
                         type=canonical_name, choices=scheme_names(),
                         help="scheme name (default baseline)")
    profile.add_argument("--scale", type=float, default=1.0,
                         help="workload iteration multiplier (default 1.0)")
    profile.add_argument("--top", type=int, default=25,
                         help="profile entries to print (default 25)")
    profile.add_argument("--sort", default="cumulative",
                         choices=("cumulative", "cumtime", "tottime"),
                         help="pstats sort key (default cumulative)")
    profile.add_argument("--json", action="store_true",
                         help="emit the top entries as JSON instead of"
                              " the pstats text dump (for scripted"
                              " regression triage)")

    pipeview = sub.add_parser(
        "pipeview",
        help="dump a Konata-compatible O3PipeView trace of one workload")
    pipeview.add_argument("benchmark",
                          help="throughput workload to trace (one of the"
                               " bench suite labels, e.g. chase-cold)")
    pipeview.add_argument("--config", default="mega",
                          help="BOOM config name (default mega)")
    pipeview.add_argument("--scheme", default="baseline",
                          type=canonical_name, choices=scheme_names(),
                          help="scheme name (default baseline)")
    pipeview.add_argument("--scale", type=float, default=1.0,
                          help="workload iteration multiplier"
                               " (default 1.0)")
    pipeview.add_argument("--limit", type=int, default=5000,
                          help="max uops captured (default 5000; later"
                               " uops are dropped, not sampled)")
    pipeview.add_argument("--output", metavar="PATH", default=None,
                          help="write the trace to PATH instead of"
                               " stdout")

    metrics = sub.add_parser(
        "metrics",
        help="per-scheme stall-attribution report over a result store")
    metrics.add_argument("store_dir", nargs="?", default=DEFAULT_STORE_DIR,
                         help="persistent store root"
                              " (default %(default)s)")
    return parser


def make_runner(args):
    store = None if args.no_store else ResultStore(args.store_dir)
    if store is not None:
        # Persist generated programs next to the result store so
        # repeated processes (and forked pool workers) skip generation.
        from repro.workloads.program_cache import configure_disk_cache

        configure_disk_cache(os.path.join(args.store_dir, "programs"))
    return CampaignRunner(scale=args.scale, seed=args.seed,
                          benchmarks=args.benchmarks, store=store,
                          jobs=args.jobs)


def parse_hostport(text, default_port=DEFAULT_PORT):
    """``HOST:PORT`` / ``HOST`` / ``:PORT`` -> (host, port)."""
    host, sep, port = text.rpartition(":")
    if not sep:
        return text, default_port
    return host or "127.0.0.1", int(port)


def _announce(address):
    host, port = address
    connect_host = "<this-host>" if host in ("0.0.0.0", "::") else host
    print("cluster coordinator serving on %s:%d" % (host, port))
    print("attach workers with: python -m repro work --connect %s:%d"
          % (connect_host, port))


def make_cli_executor(args):
    """Build the Executor the flags ask for, or None for jobs-based."""
    from repro.harness.executor import make_executor

    if args.executor == "auto":
        return None
    if args.executor == "cluster":
        host, port = parse_hostport(args.bind, default_port=0)
        return make_executor("cluster", host=host, port=port,
                             local_workers=args.local_workers,
                             on_serving=_announce)
    return make_executor(args.executor, jobs=args.jobs)


def _selected_configs(args):
    return ([boom_config(name) for name in args.configs]
            if args.configs else None)


def cmd_grid(args):
    runner = make_runner(args)
    schemes = tuple(args.schemes) if args.schemes else grid_scheme_names()
    summary = runner.run_grid(configs=_selected_configs(args),
                              schemes=schemes, jobs=args.jobs,
                              executor=make_cli_executor(args),
                              progress=make_progress(args.progress))
    print(_summary_line("grid", summary))
    return 0 if not summary.get("failed") else 1


def _summary_line(label, summary):
    line = ("%s: %d cells — %d simulated, %d from store, %d cached"
            % (label, summary["total"], summary["simulated"],
               summary["from_store"], summary["cached"]))
    if summary.get("failed"):
        line += ", %d failed" % summary["failed"]
    return line


def _needed_cells(experiment_ids_, runner):
    """Union of grid cells the requested experiments will read.

    Only these are pre-populated in parallel — asking for one small
    experiment never pays for the full standard grid.
    """
    cells, seen = [], set()
    for experiment_id in experiment_ids_:
        needs = experiment_grid_needs(experiment_id)
        if needs is None:
            continue
        configs, schemes, benchmarks = needs
        selected = [b for b in (benchmarks or runner.benchmarks)
                    if b in runner.benchmarks]
        for config in configs:
            for scheme in schemes:
                for benchmark in selected:
                    key = (benchmark, config.fingerprint(), scheme)
                    if key in seen:
                        continue
                    seen.add(key)
                    cells.append((benchmark, config, scheme))
    return cells


def cmd_run(args):
    ids = list(args.experiments)
    if ids == ["all"]:
        ids = experiment_ids()
    unknown = [i for i in ids if i not in experiment_ids()]
    if unknown:
        print("unknown experiment(s): %s (choose from %s)"
              % (", ".join(unknown), ", ".join(experiment_ids())),
              file=sys.stderr)
        return 2
    runner = make_runner(args)
    executor = make_cli_executor(args)
    if args.jobs > 1 or executor is not None:
        cells = _needed_cells(ids, runner)
        if cells:
            summary = runner.run_cell_batch(
                cells, jobs=args.jobs, executor=executor,
                progress=make_progress(args.progress))
            print(_summary_line("grid pre-populated", summary))
    for experiment_id in ids:
        report = run_experiment(experiment_id, runner=runner)
        print(report)
        print()
    return 0


def cmd_serve(args):
    from repro.harness.cluster import ClusterExecutor
    from repro.harness.cluster.coordinator import DEFAULT_MAX_CELL_ATTEMPTS
    from repro.harness.journal import journal_path

    runner = make_runner(args)
    schemes = tuple(args.schemes) if args.schemes else grid_scheme_names()
    executor = ClusterExecutor(
        host=args.host, port=args.port, local_workers=args.local_workers,
        heartbeat_timeout=args.heartbeat_timeout, on_serving=_announce,
        fail_fast=args.fail_fast,
        max_cell_attempts=(DEFAULT_MAX_CELL_ATTEMPTS
                           if args.max_cell_attempts is None
                           else args.max_cell_attempts),
        journal_path=(None if args.no_store
                      else journal_path(args.store_dir)),
        resume=args.resume,
    )
    summary = runner.run_grid(configs=_selected_configs(args),
                              schemes=schemes, executor=executor,
                              progress=make_progress(args.progress
                                                     or "human"))
    print(_summary_line("campaign drained", summary))
    stats = executor.last_stats
    if stats and stats["workers"]:
        attribution = ", ".join(
            "%s:%d" % (name, count)
            for name, count in sorted(stats["workers"].items()))
        print("workers: %s (requeues: %d)"
              % (attribution, stats["requeues"]))
    if stats and stats.get("telemetry"):
        from repro.obs.telemetry import format_rollup

        print(format_rollup(stats["telemetry"]))
    if stats and (stats.get("failed") or stats.get("quarantined")):
        print("failures: %d deterministic/timeout, %d quarantined"
              " — inspect with: python -m repro store failures"
              % (stats["failed"], stats["quarantined"]), file=sys.stderr)
    return 0 if not summary.get("failed") else 1


def cmd_work(args):
    from repro.harness.cluster import ClusterWorker

    if args.program_cache_dir:
        from repro.workloads.program_cache import configure_disk_cache

        configure_disk_cache(args.program_cache_dir)
    host, port = parse_hostport(args.connect)
    worker = ClusterWorker(host, port, name=args.name,
                           heartbeat_interval=args.heartbeat_interval,
                           max_cells=args.max_cells,
                           max_reconnects=args.max_reconnects,
                           cell_timeout=args.cell_timeout)
    completed = worker.run()
    if worker.rejected:
        print("worker rejected by coordinator after %d cell(s): %s"
              % (completed, worker.last_error), file=sys.stderr)
        return 1
    if worker.disconnected:
        print("worker lost its coordinator after %d cell(s)"
              " (%d reconnect(s) spent): %s"
              % (completed, worker.reconnects, worker.last_error),
              file=sys.stderr)
        return 1
    print("worker done: %d cell(s) simulated" % completed)
    if worker.reconnects:
        print("worker survived %d reconnect(s)" % worker.reconnects,
              file=sys.stderr)
    return 0


def _format_bytes(count):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return ("%d %s" % (count, unit) if unit == "B"
                    else "%.1f %s" % (count, unit))
        count /= 1024.0


def cmd_store(args):
    store = ResultStore(args.store_dir)
    if args.action == "verify":
        summary = store.verify()
        print("store verify (%s): %d scanned, %d kept, %d corrupt set"
              " aside, %d stale dropped"
              % (store.root, summary["scanned"], summary["kept"],
                 summary["corrupt"], summary["stale"]))
        return 0
    if args.action == "stats":
        stats = store.stats()
        print("store stats (%s): format %s" % (store.root, stats["format"]))
        print("  cells: %d segment-backed, %d legacy JSON%s"
              % (stats["cells"], stats["legacy_cells"],
                 " — run 'store migrate' to convert"
                 if stats["legacy"] else ""))
        print("  segments: %d (%s; live %s of raw %s, ratio %s)"
              % (stats["segments"], _format_bytes(stats["segment_bytes"]),
                 _format_bytes(stats["live_bytes"]),
                 _format_bytes(stats["raw_bytes"]),
                 "%.2fx" % stats["compression_ratio"]
                 if stats["compression_ratio"] else "n/a"))
        print("  disk: %s total (manifest %s, legacy %s)"
              % (_format_bytes(stats["disk_bytes"]),
                 _format_bytes(stats["manifest_bytes"]),
                 _format_bytes(stats["legacy_bytes"])))
        print("  failures recorded: %d" % stats["failures"])
        return 0
    if args.action == "compact":
        summary = store.compact()
        print("store compact (%s): %d cells, %d -> %d segment(s),"
              " %s -> %s%s"
              % (store.root, summary["cells"],
                 summary["segments_before"], summary["segments_after"],
                 _format_bytes(summary["bytes_before"]),
                 _format_bytes(summary["bytes_after"]),
                 ", %d corrupt dropped" % summary["corrupt_dropped"]
                 if summary["corrupt_dropped"] else ""))
        return 0
    if args.action == "migrate":
        summary = store.migrate()
        print("store migrate (%s): %d cell(s) migrated, %d skipped"
              % (store.root, summary["migrated"], summary["skipped"]))
        return 0 if not summary["skipped"] else 1
    if args.action == "failures":
        failures = store.failures()
        for record in failures:
            print("%s  %s/%s/%s  %s x%d (worker %s): %s"
                  % (record.key[:12], record.benchmark,
                     record.config_name or "-", record.scheme_name,
                     record.kind, record.attempts,
                     record.worker or "?", record.error))
        print("store failures (%s): %d recorded"
              % (store.root, len(failures)))
        return 1 if failures else 0
    runner = CampaignRunner(scale=args.scale, seed=args.seed,
                            benchmarks=args.benchmarks)
    from repro.pipeline.config import named_configs

    keep = [
        runner.cell_key(benchmark, config, scheme)
        for config in named_configs()
        for scheme in grid_scheme_names()
        for benchmark in runner.benchmarks
    ]
    summary = store.gc(keep)
    print("store gc (%s): %d scanned, %d kept, %d dropped, %s reclaimed"
          % (store.root, summary["scanned"], summary["kept"],
             summary["dropped"], _format_bytes(summary["bytes_reclaimed"])))
    return 0


def cmd_schemes(args):
    for spec in iter_specs():
        grid = "grid" if spec.grid else "    "
        print("%-14s [%s] %s" % (spec.name, grid, spec.doc))
        if args.verbose and spec.kwargs:
            for key, entry in sorted(spec.kwargs.items()):
                print("    %s: %s = %r  %s"
                      % (key, entry.type.__name__, entry.default, entry.doc))
    return 0


def cmd_bench(args):
    from repro.harness.bench import format_bench_report, run_throughput_bench

    if args.store:
        from repro.harness.storebench import run_store_bench

        counts = tuple(int(part) for part in args.store_cells.split(",")
                       if part.strip())
        if args.quick:
            counts = tuple(min(count, 1000) for count in counts)
        report = run_store_bench(cell_counts=counts)
        text = format_bench_report(report)
        print(text)
        if args.record:
            with open(args.record, "w") as handle:
                handle.write(text)
                handle.write("\n")
            print("recorded to %s" % args.record, file=sys.stderr)
        return 0

    if args.compare:
        import json

        from repro.harness.bench import (compare_bench_reports,
                                         format_bench_comparison)

        old_path, new_path = args.compare
        with open(old_path) as handle:
            old = json.load(handle)
        with open(new_path) as handle:
            new = json.load(handle)
        comparison = compare_bench_reports(old, new)
        print(format_bench_comparison(comparison))
        return 0

    scale, repeats = args.scale, args.repeats
    if args.quick:
        # Smoke mode: the whole suite in seconds, so CI catches
        # throughput-path crashes; timings are not comparable.
        scale = min(scale, 0.1)
        repeats = 1
    report = run_throughput_bench(
        config=boom_config(args.config), scheme_name=args.scheme,
        scale=scale, repeats=repeats,
        schemes=tuple(args.schemes) if args.schemes else None,
    )
    text = format_bench_report(report)
    print(text)
    if args.record:
        with open(args.record, "w") as handle:
            handle.write(text)
            handle.write("\n")
        print("recorded to %s" % args.record, file=sys.stderr)
    return 0


def cmd_profile(args):
    import json

    from repro.harness.bench import profile_cell

    report, result = profile_cell(
        benchmark=args.benchmark, config_name=args.config,
        scheme_name=args.scheme, scale=args.scale, top=args.top,
        sort=args.sort, as_json=args.json,
    )
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    print("profiled %s on %s/%s: %s"
          % (args.benchmark, args.config, args.scheme,
             result.stats.summary()))
    print(report)
    return 0


def cmd_pipeview(args):
    from repro.obs import trace_pipeline

    tracer, result = trace_pipeline(
        args.benchmark, config=boom_config(args.config),
        scheme_name=args.scheme, scale=args.scale, limit=args.limit,
    )
    text = tracer.render()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print("wrote %d uop record(s) to %s (open with Konata)"
              % (len(tracer.records), args.output), file=sys.stderr)
    else:
        sys.stdout.write(text)
    print("traced %s on %s/%s: %s"
          % (args.benchmark, args.config, args.scheme,
             result.stats.summary()), file=sys.stderr)
    if tracer.dropped:
        print("trace truncated: %d uop(s) beyond --limit %d dropped"
              % (tracer.dropped, args.limit), file=sys.stderr)
    return 0


def cmd_metrics(args):
    from repro.analysis.stalls import (
        format_stall_report,
        store_stall_breakdown,
    )

    store = ResultStore(args.store_dir)
    breakdown = store_stall_breakdown(store)
    if not breakdown:
        print("no cycle-accounted results under %s — run a campaign"
              " first (accounting is always on for campaign cells)"
              % store.root, file=sys.stderr)
        return 1
    print(format_stall_report(breakdown))
    return 0


_COMMANDS = {
    "grid": cmd_grid,
    "serve": cmd_serve,
    "work": cmd_work,
    "store": cmd_store,
    "schemes": cmd_schemes,
    "bench": cmd_bench,
    "profile": cmd_profile,
    "pipeview": cmd_pipeview,
    "metrics": cmd_metrics,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("\n".join(experiment_ids()))
        return 0
    handler = _COMMANDS.get(args.command, cmd_run)
    # Commands may point the process-global program disk cache at their
    # store dir (make_runner) or a --program-cache-dir; scope that to
    # the command so embedded callers (tests invoking main() in-process)
    # never leak one run's cache directory into the next.
    from repro.workloads.program_cache import configure_disk_cache, disk_cache_dir

    previous = disk_cache_dir()
    try:
        return handler(args)
    finally:
        configure_disk_cache(previous)


if __name__ == "__main__":
    sys.exit(main())
