"""Command-line front end for the campaign engine: ``python -m repro``.

Subcommands:

``list``
    Print every experiment id.
``grid``
    Populate the (benchmark x config x scheme) grid — in parallel with
    ``--jobs N`` — and print a cache/store/simulated summary.
``run EXPERIMENT [EXPERIMENT ...]``
    Run named experiments (or ``all``) and print their reports.  With
    ``--jobs > 1`` only the grid slices those experiments actually read
    are pre-populated in parallel first, so the experiments themselves
    are served from cache.
``bench``
    Measure simulator throughput (simulated cycles/sec, committed KIPS)
    over the canonical workload suite; prints JSON so the BENCH
    trajectory can track kernel regressions.
``profile``
    cProfile one grid cell (default: the ``chase-cold`` throughput
    workload on mega/baseline) and print the top cumulative entries —
    the starting point for any simulator performance work.

Shared flags: ``--scale`` and ``--seed`` select the workload build,
``--benchmarks`` restricts the suite, ``--jobs`` sets worker count,
``--store-dir`` relocates the persistent store, and ``--no-store``
disables it entirely (purely in-memory run).
"""

import argparse
import sys

from repro.core.factory import SCHEME_NAMES
from repro.harness.experiments import (
    experiment_grid_needs,
    experiment_ids,
    run_experiment,
)
from repro.harness.runner import CampaignRunner
from repro.harness.store import DEFAULT_STORE_DIR, ResultStore
from repro.pipeline.config import boom_config


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run ShadowBinding reproduction campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="print every experiment id")

    def add_common(p):
        p.add_argument("--scale", type=float, default=1.0,
                       help="workload iteration multiplier (default 1.0)")
        p.add_argument("--seed", type=int, default=2017,
                       help="workload generation seed (default 2017)")
        p.add_argument("--jobs", type=int, default=1,
                       help="parallel simulation workers (default 1)")
        p.add_argument("--benchmarks", nargs="+", metavar="NAME",
                       help="restrict to these benchmarks")
        p.add_argument("--store-dir", default=DEFAULT_STORE_DIR,
                       help="persistent store root (default %(default)s)")
        p.add_argument("--no-store", action="store_true",
                       help="skip the on-disk store (in-memory only)")

    grid = sub.add_parser("grid", help="populate the simulation grid")
    add_common(grid)
    grid.add_argument("--configs", nargs="+", metavar="NAME",
                      help="BOOM config names (default: all four)")
    grid.add_argument("--schemes", nargs="+", metavar="NAME",
                      help="scheme names (default: all four)")

    run = sub.add_parser("run", help="run named experiments (or 'all')")
    add_common(run)
    run.add_argument("experiments", nargs="+", metavar="EXPERIMENT",
                     help="experiment ids, or 'all'")

    bench = sub.add_parser(
        "bench", help="measure simulator throughput (JSON report)")
    bench.add_argument("--config", default="mega",
                       help="BOOM config name (default mega)")
    bench.add_argument("--scheme", default="baseline",
                       help="scheme name (default baseline)")
    bench.add_argument("--scale", type=float, default=1.0,
                       help="workload iteration multiplier (default 1.0)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="best-of-N runs per workload (default 3)")

    profile = sub.add_parser(
        "profile", help="cProfile one grid cell (top cumulative entries)")
    profile.add_argument("--benchmark", default="chase-cold",
                         help="throughput workload (default chase-cold)")
    profile.add_argument("--config", default="mega",
                         help="BOOM config name (default mega)")
    profile.add_argument("--scheme", default="baseline",
                         help="scheme name (default baseline)")
    profile.add_argument("--scale", type=float, default=1.0,
                         help="workload iteration multiplier (default 1.0)")
    profile.add_argument("--top", type=int, default=25,
                         help="profile entries to print (default 25)")
    profile.add_argument("--sort", default="cumulative",
                         help="pstats sort key (default cumulative)")
    return parser


def make_runner(args):
    store = None if args.no_store else ResultStore(args.store_dir)
    return CampaignRunner(scale=args.scale, seed=args.seed,
                          benchmarks=args.benchmarks, store=store,
                          jobs=args.jobs)


def cmd_grid(args):
    runner = make_runner(args)
    configs = ([boom_config(name) for name in args.configs]
               if args.configs else None)
    schemes = tuple(args.schemes) if args.schemes else SCHEME_NAMES
    summary = runner.run_grid(configs=configs, schemes=schemes,
                              jobs=args.jobs)
    print("grid: %(total)d cells — %(simulated)d simulated, "
          "%(from_store)d from store, %(cached)d cached" % summary)
    return 0


def _needed_cells(experiment_ids_, runner):
    """Union of grid cells the requested experiments will read.

    Only these are pre-populated in parallel — asking for one small
    experiment never pays for the full standard grid.
    """
    cells, seen = [], set()
    for experiment_id in experiment_ids_:
        needs = experiment_grid_needs(experiment_id)
        if needs is None:
            continue
        configs, schemes, benchmarks = needs
        selected = [b for b in (benchmarks or runner.benchmarks)
                    if b in runner.benchmarks]
        for config in configs:
            for scheme in schemes:
                for benchmark in selected:
                    key = (benchmark, config.fingerprint(), scheme)
                    if key in seen:
                        continue
                    seen.add(key)
                    cells.append((benchmark, config, scheme))
    return cells


def cmd_run(args):
    ids = list(args.experiments)
    if ids == ["all"]:
        ids = experiment_ids()
    unknown = [i for i in ids if i not in experiment_ids()]
    if unknown:
        print("unknown experiment(s): %s (choose from %s)"
              % (", ".join(unknown), ", ".join(experiment_ids())),
              file=sys.stderr)
        return 2
    runner = make_runner(args)
    if args.jobs > 1:
        cells = _needed_cells(ids, runner)
        if cells:
            summary = runner.run_cell_batch(cells, jobs=args.jobs)
            print("grid pre-populated (%(total)d cells): "
                  "%(simulated)d simulated, %(from_store)d from store, "
                  "%(cached)d cached" % summary)
    for experiment_id in ids:
        report = run_experiment(experiment_id, runner=runner)
        print(report)
        print()
    return 0


def cmd_bench(args):
    from repro.harness.bench import format_bench_report, run_throughput_bench

    report = run_throughput_bench(
        config=boom_config(args.config), scheme_name=args.scheme,
        scale=args.scale, repeats=args.repeats,
    )
    print(format_bench_report(report))
    return 0


def cmd_profile(args):
    from repro.harness.bench import profile_cell

    text, result = profile_cell(
        benchmark=args.benchmark, config_name=args.config,
        scheme_name=args.scheme, scale=args.scale, top=args.top,
        sort=args.sort,
    )
    print("profiled %s on %s/%s: %s"
          % (args.benchmark, args.config, args.scheme,
             result.stats.summary()))
    print(text)
    return 0


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("\n".join(experiment_ids()))
        return 0
    if args.command == "grid":
        return cmd_grid(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "profile":
        return cmd_profile(args)
    return cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
