"""Linear trend fitting and the Redwood Cove extrapolation.

The paper places each configuration at its baseline absolute IPC on
the x-axis and fits a linear trend through the relative metric
(Figures 1, 8, 10), then extrapolates to an Intel Redwood Cove-class
core at SPEC2017 IPC 2.03.  Because linear growth of the *loss* is
pessimistic, Table 3's Intel column uses a **halved-slope** estimate:
the loss beyond the widest measured point grows at half the fitted
rate.
"""

from dataclasses import dataclass

import numpy as np

#: SPEC CPU2017 IPC of Intel Redwood Cove (paper Table 1, from [31]).
REDWOOD_COVE_IPC = 2.03


@dataclass(frozen=True)
class TrendFit:
    """A least-squares line y = slope * x + intercept."""

    slope: float
    intercept: float
    xs: tuple
    ys: tuple

    def at(self, x):
        return self.slope * x + self.intercept


def fit_trend(xs, ys):
    """Least-squares linear fit; returns a :class:`TrendFit`."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) points")
    slope, intercept = np.polyfit(np.asarray(xs, dtype=float),
                                  np.asarray(ys, dtype=float), 1)
    return TrendFit(float(slope), float(intercept), tuple(xs), tuple(ys))


def extrapolate(fit, target_ipc=REDWOOD_COVE_IPC):
    """Full-slope linear extrapolation (the pessimistic estimate)."""
    return fit.at(target_ipc)


def halved_slope_estimate(fit, target_ipc=REDWOOD_COVE_IPC):
    """Paper's "less pessimistic" estimate: growth beyond the widest
    measured configuration continues at half the fitted slope."""
    max_x = max(fit.xs)
    anchor = fit.at(max_x)
    if target_ipc <= max_x:
        return fit.at(target_ipc)
    return anchor + 0.5 * fit.slope * (target_ipc - max_x)
