"""IPC aggregation following the paper's methodology.

Section 8.1: "To calculate average IPC for SPEC2017, we calculate the
arithmetic mean of cycles and instructions separately, and calculate
the IPC from these averages" (Eeckhout's preferred aggregate).  All
suite-level numbers here do exactly that — never a mean of ratios.
"""


def suite_mean_ipc(results):
    """Aggregate IPC over a list of SimulationResult / SimStats.

    Accepts anything exposing ``stats.cycles`` / ``stats.
    committed_instructions`` or the counters directly.
    """
    total_cycles = 0
    total_instructions = 0
    for result in results:
        stats = getattr(result, "stats", result)
        total_cycles += stats.cycles
        total_instructions += stats.committed_instructions
    if not results or total_cycles == 0:
        return 0.0
    n = len(results)
    mean_cycles = total_cycles / n
    mean_instructions = total_instructions / n
    return mean_instructions / mean_cycles


def normalized_ipc(scheme_result, baseline_result):
    """One benchmark's scheme IPC relative to the unsafe baseline."""
    base = baseline_result.stats.ipc
    if base == 0:
        return 0.0
    return scheme_result.stats.ipc / base


def suite_normalized_ipc(scheme_results, baseline_results):
    """Suite-level normalized IPC (mean-of-components, then ratio)."""
    scheme = suite_mean_ipc(scheme_results)
    base = suite_mean_ipc(baseline_results)
    if base == 0:
        return 0.0
    return scheme / base
