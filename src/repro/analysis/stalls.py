"""Top-down stall-accounting rollups over a campaign's results.

The per-cell attribution lives in each result's ``cycacct.`` extras
(see :mod:`repro.obs` for the taxonomy and the conservation
invariant).  This module aggregates those extras *across* cells —
grouped by scheme, the axis the paper's secure-speculation comparison
cares about — so ``python -m repro metrics`` can answer "where do the
NDA slots go that the baseline commits?" from a real campaign store
without re-simulating anything.

Every aggregate re-checks conservation
(``committed + sum(leaves) == width x cycles`` per cell): a cell whose
books do not balance marks its scheme's rollup ``conserved: False``,
which the report surfaces loudly — it would mean the accounting hooks
and the kernel disagree about what happened.
"""

from repro.analysis.reporting import format_table, text_bar_chart
from repro.obs import LEAF_CAUSES


def cycle_account_breakdown(results):
    """Aggregate ``cycacct.`` extras per scheme.

    ``results`` is any iterable of
    :class:`~repro.pipeline.core.SimulationResult` (e.g.
    ``store.iter_results()``).  Cells without accounting extras (older
    stores, obs-disabled runs) are skipped.  Returns ``{scheme_name:
    rollup}`` where each rollup carries ``cells``, ``cycles``,
    ``slots`` (width x cycles), ``committed``, per-leaf slot counts in
    ``leaves``, scheme sub-cause counts in ``scheme_sub``, issue-block
    charges in ``issue_blocks``, summed occupancy integrals in
    ``occupancy``, and the per-cell ``conserved`` verdict.
    """
    schemes = {}
    for result in results:
        account = result.stats.cycle_account()
        if not account:
            continue
        entry = schemes.setdefault(result.scheme_name, {
            "cells": 0, "cycles": 0, "slots": 0, "committed": 0,
            "leaves": {}, "scheme_sub": {}, "issue_blocks": {},
            "occupancy": {}, "conserved": True,
        })
        cycles = account.get("cycles", 0)
        slots = account.get("width", 0) * cycles
        committed = result.stats.committed_instructions
        entry["cells"] += 1
        entry["cycles"] += cycles
        entry["slots"] += slots
        entry["committed"] += committed
        leaf_total = 0
        for name, value in account.items():
            if name in LEAF_CAUSES:
                entry["leaves"][name] = entry["leaves"].get(name, 0) + value
                leaf_total += value
            elif name.startswith("scheme."):
                sub = name[len("scheme."):]
                entry["scheme_sub"][sub] = (
                    entry["scheme_sub"].get(sub, 0) + value)
            elif name.startswith("issue_blocks."):
                label = name[len("issue_blocks."):]
                entry["issue_blocks"][label] = (
                    entry["issue_blocks"].get(label, 0) + value)
            elif name.startswith("occ."):
                res = name[len("occ."):]
                entry["occupancy"][res] = (
                    entry["occupancy"].get(res, 0) + value)
        if leaf_total + committed != slots:
            entry["conserved"] = False
    return schemes


def store_stall_breakdown(store):
    """:func:`cycle_account_breakdown` over a whole result store.

    Routes through the store's columnar bulk path
    (``iter_results(fields=("stats",))``): statistics decode straight
    from the manifest index, no snapshot payload is ever read — the
    difference between an index scan and 10^4 decompress+parse round
    trips on a campaign-sized store.  Store-like objects without the
    columnar API (older stores, plain iterables' owners) fall back to
    full iteration transparently.
    """
    try:
        results = store.iter_results(fields=("stats",))
    except TypeError:
        results = store.iter_results()
    return cycle_account_breakdown(results)


def _ordered_leaves(leaves):
    """Leaf items in taxonomy order, then any unknown names (future
    accounting generations) alphabetically after them."""
    known = [(leaf, leaves[leaf]) for leaf in LEAF_CAUSES if leaf in leaves]
    extra = sorted((name, value) for name, value in leaves.items()
                   if name not in LEAF_CAUSES)
    return known + extra


def format_stall_report(breakdown, chart_width=42):
    """Render :func:`cycle_account_breakdown` output as a text report.

    One section per scheme: the slot ledger (committed + every leaf,
    with share-of-slots percentages), the scheme-delay sub-cause bar
    chart when the scheme produced one, mean resource occupancies, and
    a conservation verdict.
    """
    out = []
    for scheme in sorted(breakdown):
        entry = breakdown[scheme]
        slots = entry["slots"] or 1
        rows = [("committed", entry["committed"],
                 100.0 * entry["committed"] / slots)]
        rows += [(leaf, value, 100.0 * value / slots)
                 for leaf, value in _ordered_leaves(entry["leaves"])]
        out.append(format_table(
            ("cause", "slots", "% of slots"), rows,
            title="%s — %d cell(s), %d cycles, %d issue slots"
                  % (scheme, entry["cells"], entry["cycles"],
                     entry["slots"]),
            precision=2,
        ))
        if entry["scheme_sub"]:
            labels = sorted(entry["scheme_sub"])
            out.append(text_bar_chart(
                labels, [float(entry["scheme_sub"][label])
                         for label in labels],
                title="scheme-delay sub-causes (slots)",
                width=chart_width,
            ))
        if entry["occupancy"] and entry["cycles"]:
            mean = {res: value / entry["cycles"]
                    for res, value in entry["occupancy"].items()}
            out.append("mean occupancy: " + "  ".join(
                "%s=%.1f" % (res, mean[res]) for res in sorted(mean)))
        out.append("conservation: %s"
                   % ("ok" if entry["conserved"] else
                      "VIOLATED — accounting and kernel disagree"))
        out.append("")
    return "\n".join(out).rstrip("\n")
