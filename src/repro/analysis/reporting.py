"""Plain-text rendering of tables and figure series.

The benchmark harness prints every regenerated table and figure in a
terminal-friendly form: aligned tables for the paper's tables, series
listings plus unicode bar charts for its figures.
"""


def format_table(headers, rows, title=None, precision=3):
    """Render an aligned text table.

    ``rows`` is a list of sequences; floats are formatted with
    ``precision`` digits.
    """
    def fmt(value):
        if isinstance(value, float):
            return "%.*f" % (precision, value)
        return str(value)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in text_rows:
        out.append(line(row))
    return "\n".join(out)


def format_figure_series(series, title=None, x_label="x", precision=3):
    """Render named (x, y) series as an aligned listing.

    ``series`` maps series name -> list of (x, y) pairs.
    """
    out = []
    if title:
        out.append(title)
    for name in series:
        points = series[name]
        formatted = ", ".join(
            "(%s, %.*f)" % (x, precision, y) for x, y in points
        )
        out.append("  %-12s %s" % (name + ":", formatted))
    return "\n".join(out)


def text_bar_chart(labels, values, title=None, width=42, max_value=None):
    """Render a horizontal unicode bar chart (for figure-like output)."""
    if max_value is None:
        max_value = max(values) if values else 1.0
    max_value = max(max_value, 1e-9)
    label_width = max((len(label) for label in labels), default=0)
    out = []
    if title:
        out.append(title)
    for label, value in zip(labels, values):
        filled = int(round(width * min(value, max_value) / max_value))
        bar = "█" * filled + "·" * (width - filled)
        out.append("  %s  %s %.3f" % (label.ljust(label_width), bar, value))
    return "\n".join(out)
