"""Result aggregation, trend fitting, and report rendering."""

from repro.analysis.ipc import (
    normalized_ipc,
    suite_mean_ipc,
    suite_normalized_ipc,
)
from repro.analysis.performance import (
    PerformancePoint,
    performance_table,
    scheme_performance,
)
from repro.analysis.trends import (
    TrendFit,
    extrapolate,
    fit_trend,
    halved_slope_estimate,
    REDWOOD_COVE_IPC,
)
from repro.analysis.reporting import (
    format_figure_series,
    format_table,
    text_bar_chart,
)
from repro.analysis.stalls import (
    cycle_account_breakdown,
    format_stall_report,
    store_stall_breakdown,
)

__all__ = [
    "cycle_account_breakdown",
    "format_stall_report",
    "store_stall_breakdown",
    "normalized_ipc",
    "suite_mean_ipc",
    "suite_normalized_ipc",
    "PerformancePoint",
    "performance_table",
    "scheme_performance",
    "TrendFit",
    "fit_trend",
    "extrapolate",
    "halved_slope_estimate",
    "REDWOOD_COVE_IPC",
    "format_table",
    "format_figure_series",
    "text_bar_chart",
]
