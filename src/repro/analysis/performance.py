"""Performance = IPC x timing (Section 8.4).

The paper's headline correction to prior work: comparing schemes by
IPC alone is wrong once a scheme's logic limits the clock.  A
:class:`PerformancePoint` combines a scheme's suite-relative IPC with
its synthesis-relative timing into a relative performance number.
"""

from dataclasses import dataclass

from repro.timing.synthesis import relative_timing


@dataclass(frozen=True)
class PerformancePoint:
    """One (config, scheme) performance sample."""

    config_name: str
    scheme_name: str
    baseline_ipc: float
    relative_ipc: float
    relative_timing: float

    @property
    def relative_performance(self):
        return self.relative_ipc * self.relative_timing


def scheme_performance(config, scheme_name, relative_ipc, baseline_ipc):
    """Build a :class:`PerformancePoint` using the timing model."""
    return PerformancePoint(
        config_name=config.name,
        scheme_name=scheme_name,
        baseline_ipc=baseline_ipc,
        relative_ipc=relative_ipc,
        relative_timing=relative_timing(config, scheme_name),
    )


def performance_table(points):
    """Group points into {scheme: {config: relative_performance}}."""
    table = {}
    for point in points:
        table.setdefault(point.scheme_name, {})[point.config_name] = (
            point.relative_performance
        )
    return table
