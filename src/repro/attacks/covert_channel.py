"""Cache-presence covert channel receiver.

The transmitter encodes a value by touching one cache line inside a
probe array; the receiver (this module) inspects which probe lines are
resident.  The model's caches are tag-only, so "measuring access
latency" reduces to a non-mutating presence probe — exactly the signal
a flush+reload / prime+probe receiver extracts with timers on real
hardware.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ProbeResult:
    """Which candidate values were observed in the cache."""

    hot_values: tuple
    candidates: tuple
    probe_base: int
    stride: int

    def observed(self, value):
        return value in self.hot_values


class CacheProbe:
    """Receiver over a probe array of one line per candidate value."""

    def __init__(self, probe_base, stride=8, candidates=range(64)):
        self.probe_base = probe_base
        self.stride = stride
        self.candidates = tuple(candidates)

    def address_for(self, value):
        """Probe-array address that encodes ``value``."""
        return self.probe_base + value * self.stride

    def measure(self, hierarchy, level="any"):
        """Probe the hierarchy; returns a :class:`ProbeResult`.

        ``level`` is ``l1``, ``l2``, or ``any`` (either level counts as
        hot, like a timing threshold between L2 and DRAM).
        """
        hot = []
        for value in self.candidates:
            address = self.address_for(value)
            in_l1 = hierarchy.l1.contains(address)
            in_l2 = hierarchy.l2.contains(address)
            if level == "l1":
                resident = in_l1
            elif level == "l2":
                resident = in_l2
            elif level == "any":
                resident = in_l1 or in_l2
            else:
                raise ValueError("level must be l1, l2, or any")
            if resident:
                hot.append(value)
        return ProbeResult(
            hot_values=tuple(hot),
            candidates=self.candidates,
            probe_base=self.probe_base,
            stride=self.stride,
        )
