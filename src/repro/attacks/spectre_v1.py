"""Spectre v1 (bounds check bypass) on the model machine.

The gadget is the classic one::

    if (index < array1_size)            # predicted not-taken branch
        y = probe[array1[index] * 8]    # transient when index is evil

Structure of the generated program:

* every loop iteration first *evicts* the ``array1_size`` line with
  straight-line conflict loads (no extra branches, so the bounds-check
  branch sees an identical global-history context every iteration and
  trains hard toward in-bounds);
* the evicted size load takes a DRAM round trip, opening a ~90-cycle
  speculation window behind the bounds check;
* training iterations use in-bounds indices (array1 holds a harmless
  dummy value); the final iteration's index points at the secret, far
  out of bounds;
* the transient path loads the secret and touches
  ``PROBE_BASE + secret * LINE_WORDS`` — one cache line per candidate
  value, read back by :class:`~repro.attacks.covert_channel.CacheProbe`.

On the unsafe baseline the probe observes the secret's line.  Under
STT the transmit load's address is taint-blocked (and the secret load
itself is blocked too, since its address derives from a speculatively
loaded index); under NDA the secret never propagates out of its
destination register.  Either way the probe stays cold.
"""

from dataclasses import dataclass

from repro.isa.assembler import assemble
from repro.attacks.covert_channel import CacheProbe

# Memory layout (word addresses).
SIZE_ADDR = 16            # array1_size lives here
ARRAY1_BASE = 0x800       # 4-element public array
INDEX_TABLE = 0xC00       # per-iteration index sequence
EVICT_BASE = 0x10000 + 16 # conflict lines for SIZE_ADDR's set
PROBE_BASE = 0x40000      # covert-channel probe array
LINE_WORDS = 8
#: Conflict-line stride: one line every L2-set-period so each load
#: lands in SIZE_ADDR's set in both cache levels.
EVICT_STRIDE = 4096
EVICT_WAYS = 12
DUMMY_VALUE = 3           # public value transmitted during training


@dataclass(frozen=True)
class SpectreOutcome:
    """Result of one attack run."""

    scheme_name: str
    secret: int
    observed: tuple
    leaked: bool
    training_values: tuple
    stats_summary: str


def build_spectre_program(secret=42, train_rounds=24, secret_offset=1024):
    """Assemble the attack program; returns (program, probe).

    ``secret`` must be in [0, 64) and different from ``DUMMY_VALUE``.
    ``secret_offset`` is the out-of-bounds distance from ``array1``.
    """
    if not 0 <= secret < 64:
        raise ValueError("secret must fit the probe range [0, 64)")
    if secret == DUMMY_VALUE:
        raise ValueError("secret %d would be masked by training noise" % secret)

    evict_loads = "\n".join(
        "        lw   s%d, %d(zero)" % (2 + (i % 2), EVICT_BASE + i * EVICT_STRIDE)
        for i in range(EVICT_WAYS)
    )
    source = """
        li   ra, {rounds}          # iteration counter (counts down to 0)
        li   a6, {probe_base}
        li   a7, {array1}
    attack_loop:
        # Evict array1_size (straight-line: keeps branch history flat).
{evict_loads}
        # Fetch this iteration's index.
        add  t0, ra, zero
        lw   a0, {index_table}(t0)
        # --- the victim gadget ---
        lw   a1, {size_addr}(zero)     # slow: just evicted
        bgeu a0, a1, gadget_done       # bounds check (trained not-taken)
        add  t1, a7, a0
        lw   a2, 0(t1)                 # array1[index] (transient on attack)
        slli a3, a2, 3
        add  a3, a3, a6
        lw   a4, 0(a3)                 # transmit: touch probe line
    gadget_done:
        addi ra, ra, -1
        bne  ra, zero, attack_loop
        halt
    """.format(
        rounds=train_rounds + 1,
        probe_base=PROBE_BASE,
        array1=ARRAY1_BASE,
        index_table=INDEX_TABLE,
        size_addr=SIZE_ADDR,
        evict_loads=evict_loads,
    )
    program = assemble(source, name="spectre-v1")

    memory = program.initial_memory
    memory[SIZE_ADDR] = 4
    for i in range(4):
        memory[ARRAY1_BASE + i] = DUMMY_VALUE
    memory[ARRAY1_BASE + secret_offset] = secret
    # Iteration ra = train_rounds+1 .. 1; the final iteration (ra == 1)
    # uses the malicious index.
    for t in range(2, train_rounds + 2):
        memory[INDEX_TABLE + t] = t % 4
    memory[INDEX_TABLE + 1] = secret_offset

    probe = CacheProbe(PROBE_BASE, stride=LINE_WORDS, candidates=range(64))
    return program, probe


def run_spectre_v1(scheme_name, config=None, secret=42, train_rounds=24):
    """Run the attack under one scheme; returns a :class:`SpectreOutcome`."""
    from repro.core.factory import make_scheme
    from repro.pipeline.config import MEGA
    from repro.pipeline.core import OoOCore

    program, probe = build_spectre_program(secret=secret, train_rounds=train_rounds)
    core = OoOCore(
        program, config=config or MEGA, scheme=make_scheme(scheme_name)
    )
    result = core.run()
    measurement = probe.measure(core.hierarchy, level="any")
    training = tuple(v for v in measurement.hot_values if v == DUMMY_VALUE)
    suspicious = tuple(
        v for v in measurement.hot_values if v != DUMMY_VALUE
    )
    return SpectreOutcome(
        scheme_name=scheme_name,
        secret=secret,
        observed=suspicious,
        leaked=secret in suspicious,
        training_values=training,
        stats_summary=result.stats.summary(),
    )
