"""Security verification: Spectre v1 gadget and cache covert channel.

The paper verifies its RTL schemes with the BOOM-attacks Spectre v1
proof-of-concept (Section 7).  The model equivalent lives here: a
classic bounds-check-bypass gadget written in the model ISA plus a
cache-presence prober.  The unsafe baseline must leak the secret into
the cache; all three schemes must not.  The attack tests assert both
directions, so a regression that silently weakens a scheme fails CI.
"""

from repro.attacks.covert_channel import CacheProbe, ProbeResult
from repro.attacks.spectre_v1 import (
    SpectreOutcome,
    build_spectre_program,
    run_spectre_v1,
)

__all__ = [
    "CacheProbe",
    "ProbeResult",
    "SpectreOutcome",
    "build_spectre_program",
    "run_spectre_v1",
]
