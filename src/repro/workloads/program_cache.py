"""Content-addressed cache of generated workload programs.

Workload generation is deterministic but not free: every grid cell
used to regenerate its benchmark program from scratch, so a worker
(pool process, cluster worker, or the serial loop) simulating the same
benchmark under sixteen config x scheme combinations paid the
generation cost sixteen times.  This module memoises programs behind a
content-addressed key so each distinct workload is generated at most
once per process.

The key (:func:`program_key`) is a SHA-256 over

- the complete :class:`~repro.workloads.generator.WorkloadProfile`
  parameter record (``asdict``, every weight and size — already scaled
  to its final iteration count), so editing a profile can never reuse
  a stale program;
- the generation ``seed``;
- :data:`~repro.workloads.generator.GENERATOR_VERSION`, bumped when
  the generator's output changes for an unchanged profile.

The cache is process-local: ``fork``-based pool workers inherit the
parent's entries, cluster worker threads share one cache, and a worker
looping over many cells of one benchmark generates it once.  Programs
are safe to share — simulation copies the initial memory image and
never mutates the instruction list.
"""

import hashlib
import json
import threading
from dataclasses import asdict, replace

from repro.workloads.characteristics import SPEC_PROFILES
from repro.workloads.generator import GENERATOR_VERSION, generate_program

_CACHE = {}
_LOCK = threading.Lock()
_STATS = {"hits": 0, "misses": 0}


def program_key(profile, seed):
    """Content hash identifying one generated program; hex digest."""
    payload = {
        "generator_version": GENERATOR_VERSION,
        "profile": asdict(profile),
        "seed": seed,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def scaled_profile(profile, scale):
    """``profile`` with its iteration count multiplied by ``scale``.

    The one canonical scaling rule (minimum two iterations, rounded),
    shared by :func:`~repro.workloads.spec2017.spec_suite` and the
    cache so both resolve a (profile, scale) pair to the same content.
    """
    iterations = max(2, int(round(profile.iterations * scale)))
    if iterations == profile.iterations:
        return profile
    return replace(profile, iterations=iterations)


def cached_program(profile, seed=2017):
    """Generate ``profile``'s program, memoised by content."""
    key = program_key(profile, seed)
    with _LOCK:
        program = _CACHE.get(key)
        if program is not None:
            _STATS["hits"] += 1
            return program
        _STATS["misses"] += 1
    # Generation happens outside the lock; a racing thread may generate
    # the same (deterministic, identical) program twice — harmless.
    program = generate_program(profile, seed=seed)
    with _LOCK:
        return _CACHE.setdefault(key, program)


def cached_spec_program(benchmark, scale=1.0, seed=2017):
    """The (cached) program for one SPEC-proxy benchmark.

    Raises ``KeyError`` for unknown benchmark names, exactly like the
    uncached suite path, so callers' error handling is unchanged.
    """
    return cached_program(scaled_profile(SPEC_PROFILES[benchmark], scale),
                          seed=seed)


def cache_stats():
    """``{"hits": N, "misses": N, "entries": N}`` for this process."""
    with _LOCK:
        return {"entries": len(_CACHE), **_STATS}


def clear_cache():
    """Empty the cache and zero the counters (tests, memory pressure)."""
    with _LOCK:
        _CACHE.clear()
        _STATS["hits"] = _STATS["misses"] = 0
