"""Content-addressed cache of generated workload programs.

Workload generation is deterministic but not free: every grid cell
used to regenerate its benchmark program from scratch, so a worker
(pool process, cluster worker, or the serial loop) simulating the same
benchmark under sixteen config x scheme combinations paid the
generation cost sixteen times.  This module memoises programs behind a
content-addressed key so each distinct workload is generated at most
once per process.

The key (:func:`program_key`) is a SHA-256 over

- the complete :class:`~repro.workloads.generator.WorkloadProfile`
  parameter record (``asdict``, every weight and size — already scaled
  to its final iteration count), so editing a profile can never reuse
  a stale program;
- the generation ``seed``;
- :data:`~repro.workloads.generator.GENERATOR_VERSION`, bumped when
  the generator's output changes for an unchanged profile.

Two layers:

* **In-process dict** — always on.  ``fork``-based pool workers
  inherit the parent's entries, cluster worker threads share one
  cache, and a worker looping over many cells of one benchmark
  generates it once.  Programs are safe to share — simulation copies
  the initial memory image and never mutates the instruction list.
* **Disk (optional)** — :func:`configure_disk_cache` points the cache
  at a directory (the CLI uses ``<store-dir>/programs``; the
  ``REPRO_PROGRAM_CACHE_DIR`` environment variable seeds the default),
  and programs persist as one JSON file per key, so *separate
  processes* — repeated CLI runs, freshly spawned cluster workers —
  reuse generations across their lifetimes.  Writes are atomic (temp
  file + rename) and corrupt or unreadable files fall back to
  regeneration; content addressing makes sharing one directory between
  concurrent writers safe (same key => byte-identical program).

**Dynamic traces** live here too, through the same two layers and the
same directory: :func:`cached_trace` / :func:`cached_spec_trace` resolve
a (profile, seed) pair to the program's canonical
:class:`~repro.isa.trace.DynamicTrace` — recorded once via the
reference interpreter (:func:`~repro.isa.trace.record_trace`), then
reused by every grid cell that shares the workload.  The trace key
(:func:`trace_key`) wraps the program key plus
:data:`~repro.isa.trace.TRACE_FORMAT_VERSION`, so a trace can never
outlive either the generator output it was recorded from or the column
format the pipeline expects; on disk a trace is one
``<key>.trace.json`` file with the same atomic-write and
corrupt-falls-back-to-re-record discipline as programs.  The trace-v2
format bump (typed-array columns, base64-over-raw-buffer payloads)
rides exactly this mechanism: every ``trace-v1`` file on disk keys
differently, is never opened, and the workload is re-recorded into the
columnar layout on first use — and should a v2 file be truncated or
corrupted, :meth:`~repro.isa.trace.DynamicTrace.from_payload` raises
``ValueError``, which the loader treats as a miss.
"""

import hashlib
import json
import os
import pathlib
import tempfile
import threading
from dataclasses import asdict, replace

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.trace import TRACE_FORMAT_VERSION, DynamicTrace, record_trace
from repro.workloads.characteristics import SPEC_PROFILES
from repro.workloads.generator import GENERATOR_VERSION, generate_program

_CACHE = {}
_TRACE_CACHE = {}
_LOCK = threading.Lock()
_STATS = {"hits": 0, "misses": 0, "disk_hits": 0,
          "trace_hits": 0, "trace_misses": 0, "trace_disk_hits": 0}
_DISK_DIR = None


def program_key(profile, seed):
    """Content hash identifying one generated program; hex digest."""
    payload = {
        "generator_version": GENERATOR_VERSION,
        "profile": asdict(profile),
        "seed": seed,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def trace_key(profile, seed):
    """Content hash identifying one recorded dynamic trace; hex digest.

    Wraps :func:`program_key` (so the generator version, full profile,
    and seed all participate) plus the trace format version: bumping
    either invalidates persisted traces without touching programs.
    """
    payload = {
        "trace_format_version": TRACE_FORMAT_VERSION,
        "program_key": program_key(profile, seed),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def scaled_profile(profile, scale):
    """``profile`` with its iteration count multiplied by ``scale``.

    The one canonical scaling rule (minimum two iterations, rounded),
    shared by :func:`~repro.workloads.spec2017.spec_suite` and the
    cache so both resolve a (profile, scale) pair to the same content.
    """
    iterations = max(2, int(round(profile.iterations * scale)))
    if iterations == profile.iterations:
        return profile
    return replace(profile, iterations=iterations)


# -- disk layer -------------------------------------------------------------


def configure_disk_cache(directory):
    """Enable (a path) or disable (``None``) the persistent layer.

    Returns the previous setting so tests can restore it.  The
    directory is created lazily on first write.
    """
    global _DISK_DIR
    previous = _DISK_DIR
    _DISK_DIR = pathlib.Path(directory) if directory else None
    return previous


def disk_cache_dir():
    """The configured persistent directory, or ``None``."""
    return _DISK_DIR


if os.environ.get("REPRO_PROGRAM_CACHE_DIR"):
    configure_disk_cache(os.environ["REPRO_PROGRAM_CACHE_DIR"])


def _program_to_payload(program):
    return {
        "name": program.name,
        "entry": program.entry,
        "instructions": [
            [i.op.value, i.rd, i.rs1, i.rs2, i.imm, i.label]
            for i in program.instructions
        ],
        "initial_memory": {str(a): v for a, v in program.initial_memory.items()},
        "initial_regs": {str(r): v for r, v in program.initial_regs.items()},
    }


def _program_from_payload(payload):
    return Program(
        instructions=[
            Instruction(op=Opcode(op), rd=rd, rs1=rs1, rs2=rs2, imm=imm,
                        label=label)
            for op, rd, rs1, rs2, imm, label in payload["instructions"]
        ],
        initial_memory={int(a): v
                        for a, v in payload["initial_memory"].items()},
        initial_regs={int(r): v for r, v in payload["initial_regs"].items()},
        name=payload["name"],
        entry=payload["entry"],
    )


def _disk_load(key):
    if _DISK_DIR is None:
        return None
    path = _DISK_DIR / ("%s.json" % key)
    try:
        with open(path) as handle:
            program = _program_from_payload(json.load(handle))
        program.validate()
        return program
    except (OSError, ValueError, KeyError, TypeError):
        return None  # missing/corrupt/stale: fall back to regeneration


def _disk_store(key, program):
    if _DISK_DIR is None:
        return
    try:
        _DISK_DIR.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(_DISK_DIR), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(_program_to_payload(program), handle,
                          separators=(",", ":"))
            os.replace(tmp, str(_DISK_DIR / ("%s.json" % key)))
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        pass  # a read-only or full disk must never fail a simulation


def _trace_disk_load(key):
    if _DISK_DIR is None:
        return None
    path = _DISK_DIR / ("%s.trace.json" % key)
    try:
        with open(path) as handle:
            return DynamicTrace.from_payload(json.load(handle))
    except (OSError, ValueError, KeyError, TypeError):
        return None  # missing/corrupt/stale format: re-record


def _trace_disk_store(key, trace):
    if _DISK_DIR is None:
        return
    try:
        _DISK_DIR.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(_DISK_DIR), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(trace.to_payload(), handle,
                          separators=(",", ":"))
            os.replace(tmp, str(_DISK_DIR / ("%s.trace.json" % key)))
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        pass  # a read-only or full disk must never fail a simulation


# -- lookup -----------------------------------------------------------------


def cached_program(profile, seed=2017):
    """Generate ``profile``'s program, memoised by content."""
    key = program_key(profile, seed)
    with _LOCK:
        program = _CACHE.get(key)
        if program is not None:
            _STATS["hits"] += 1
            return program
        _STATS["misses"] += 1
    # Disk lookup and generation happen outside the lock; a racing
    # thread may generate the same (deterministic, identical) program
    # twice — harmless.
    program = _disk_load(key)
    if program is not None:
        with _LOCK:
            _STATS["disk_hits"] += 1
            return _CACHE.setdefault(key, program)
    program = generate_program(profile, seed=seed)
    _disk_store(key, program)
    with _LOCK:
        return _CACHE.setdefault(key, program)


def cached_spec_program(benchmark, scale=1.0, seed=2017):
    """The (cached) program for one SPEC-proxy benchmark.

    Raises ``KeyError`` for unknown benchmark names, exactly like the
    uncached suite path, so callers' error handling is unchanged.
    """
    return cached_program(scaled_profile(SPEC_PROFILES[benchmark], scale),
                          seed=seed)


def cached_trace(profile, seed=2017):
    """The canonical dynamic trace for ``profile``, memoised by content.

    Recorded at most once per process (and, with the disk layer, once
    per cache directory); the backing program comes through
    :func:`cached_program`, so a trace request also primes the program
    cache.  Traces are safe to share — the replayer only ever reads
    the columns.
    """
    key = trace_key(profile, seed)
    with _LOCK:
        trace = _TRACE_CACHE.get(key)
        if trace is not None:
            _STATS["trace_hits"] += 1
            return trace
        _STATS["trace_misses"] += 1
    # Disk lookup and recording happen outside the lock; a racing
    # thread may record the same (deterministic, identical) trace
    # twice — harmless.
    program = cached_program(profile, seed=seed)
    trace = _trace_disk_load(key)
    if trace is not None:
        try:
            trace.check_program(program)
        except ValueError:
            trace = None  # stale file for a colliding key: re-record
    if trace is not None:
        with _LOCK:
            _STATS["trace_disk_hits"] += 1
            return _TRACE_CACHE.setdefault(key, trace)
    trace = record_trace(program)
    _trace_disk_store(key, trace)
    with _LOCK:
        return _TRACE_CACHE.setdefault(key, trace)


def cached_spec_trace(benchmark, scale=1.0, seed=2017):
    """The (cached) dynamic trace for one SPEC-proxy benchmark.

    Raises ``KeyError`` for unknown benchmark names, matching
    :func:`cached_spec_program`.
    """
    return cached_trace(scaled_profile(SPEC_PROFILES[benchmark], scale),
                        seed=seed)


def cache_stats():
    """Hit/miss counters plus entry count for this process."""
    with _LOCK:
        return {"entries": len(_CACHE),
                "trace_entries": len(_TRACE_CACHE), **_STATS}


def clear_cache():
    """Empty the in-process caches and zero the counters (tests,
    memory pressure).  The disk layer is left untouched."""
    with _LOCK:
        _CACHE.clear()
        _TRACE_CACHE.clear()
        for counter in _STATS:
            _STATS[counter] = 0
