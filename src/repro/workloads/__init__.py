"""Synthetic workload generation: the SPEC CPU2017 proxy suite.

The paper runs SPEC CPU2017 on FPGA-synthesized BOOM cores.  Offline,
we substitute 22 synthetic workloads — one per SPEC benchmark — whose
*characteristics* (instruction mix, working-set size, pointer-chase
depth, branch entropy, store-to-load forwarding distance) are chosen to
match each benchmark's qualitative behaviour as described in the paper
(e.g. ``bwaves`` streams with little scheme sensitivity; ``exchange2``
hammers small memory regions with store/load traffic; ``mcf`` chases
pointers).  See DESIGN.md for the substitution rationale.
"""

from repro.workloads.generator import WorkloadProfile, generate_program
from repro.workloads.characteristics import (
    SPEC_BENCHMARKS,
    SPEC_PROFILES,
    spec_profile,
)
from repro.workloads.kernels import (
    chase_kernel,
    forwarding_kernel,
    streaming_kernel,
)
from repro.workloads.program_cache import (
    cache_stats,
    cached_program,
    cached_spec_program,
    clear_cache,
    program_key,
)
from repro.workloads.spec2017 import spec_suite

__all__ = [
    "WorkloadProfile",
    "generate_program",
    "cached_program",
    "cached_spec_program",
    "cache_stats",
    "clear_cache",
    "program_key",
    "SPEC_BENCHMARKS",
    "SPEC_PROFILES",
    "spec_profile",
    "spec_suite",
    "chase_kernel",
    "forwarding_kernel",
    "streaming_kernel",
]
