"""Hand-written micro-kernels for examples, tests, and ablations.

Unlike the generated SPEC proxies, these are small, readable programs
with one dominant behaviour each, so their interaction with the
schemes is easy to reason about (and assert on in tests).
"""

from repro.isa.assembler import assemble

from repro.workloads.generator import ARRAY_BASE, RING_BASE, SCRATCH_BASE


def streaming_kernel(iterations=64, stride=1, array_words=4096):
    """Sequential sweep over an array, summing into a register.

    Independent loads with a predictable loop branch: the pattern every
    scheme handles well (bwaves-like).
    """
    source = """
        li   ra, {iterations}
        li   sp, {base}
        li   t0, 0          # index
        li   a0, 0          # accumulator
    loop:
        andi t1, t0, {mask}
        add  t1, t1, sp
        lw   a1, 0(t1)
        add  a0, a0, a1
        addi t0, t0, {stride}
        addi ra, ra, -1
        bne  ra, zero, loop
        sw   a0, 0(zero)
        halt
    """.format(
        iterations=iterations, base=ARRAY_BASE, mask=array_words - 1, stride=stride
    )
    program = assemble(source, name="streaming")
    for i in range(array_words):
        program.initial_memory[ARRAY_BASE + i] = (i * 7 + 3) & 0xFFFF
    return program


def chase_kernel(iterations=64, ring_words=1024, seed=1):
    """Pointer chase around a shuffled ring: serial dependent loads.

    Every load's address depends on the previous load's data — the
    worst case for NDA (each hop waits for the previous broadcast) and
    for STT when the hop feeds a transmitter.
    """
    import random

    rng = random.Random(seed)
    source = """
        li   ra, {iterations}
        li   gp, {base}
    loop:
        lw   gp, 0(gp)
        addi ra, ra, -1
        bne  ra, zero, loop
        sw   gp, 0(zero)
        halt
    """.format(iterations=iterations, base=RING_BASE)
    program = assemble(source, name="pointer-chase")
    indices = list(range(ring_words))
    rng.shuffle(indices)
    for position in range(ring_words):
        current = indices[position]
        nxt = indices[(position + 1) % ring_words]
        program.initial_memory[RING_BASE + current] = RING_BASE + nxt
    return program


def forwarding_kernel(iterations=64, slots=8, array_words=4096):
    """Tight store-then-load traffic over a tiny region (exchange2-like).

    The recipe for the Section 9.2 anomaly:

    * a data-dependent branch on a loaded value keeps a speculation
      shadow open for a long time (the value sometimes misses), so
      loads under it stay tainted;
    * a store whose *data* is the tainted value but whose *address* is
      an untainted index — under STT-Rename's unified store micro-op,
      the tainted data blocks even the address generation;
    * an immediate reload of the same slot through the untainted index
      — it issues past the address-less store, reads stale memory, and
      flushes when the store's address finally resolves.

    STT-Issue taints the store's operands separately, so address
    generation proceeds and the reload forwards cleanly; NDA never
    blocks the store at all.
    """
    source = """
        li   ra, {iterations}
        li   tp, {scratch}
        li   sp, {array}
        li   t0, 0
        li   a0, 1
        li   s2, 0
    loop:
        andi t1, t0, {array_mask}
        add  t1, t1, sp
        lw   a1, 0(t1)          # speculative value (sometimes a miss)
        andi t2, a1, 1
        beq  t2, zero, even     # data-dependent: slow-resolving C-shadow
        addi s2, s2, 1
    even:
        andi t3, t0, {slot_mask}
        add  t3, t3, tp         # untainted slot address
        lw   a4, 0(t3)          # value to recycle (tainted under shadow)
        add  a4, a4, a1
        sw   a4, 0(t3)          # data tainted; unified taint blocks agen
        lw   a2, 0(t3)          # untainted reload of the same slot
        add  a0, a0, a2
        addi t0, t0, 1
        addi ra, ra, -1
        bne  ra, zero, loop
        sw   a0, 0(zero)
        sw   s2, 1(zero)
        halt
    """.format(
        iterations=iterations,
        scratch=SCRATCH_BASE,
        array=ARRAY_BASE,
        slot_mask=slots - 1,
        array_mask=array_words - 1,
    )
    program = assemble(source, name="forwarding")
    for i in range(array_words):
        program.initial_memory[ARRAY_BASE + i] = (i * 2654435761) & 0xFFFF
    for i in range(slots):
        program.initial_memory[SCRATCH_BASE + i] = i
    return program
