"""Hand-written micro-kernels for examples, tests, and ablations.

Unlike the generated SPEC proxies, these are small, readable programs
with one dominant behaviour each, so their interaction with the
schemes is easy to reason about (and assert on in tests).
"""

from repro.isa.assembler import assemble

from repro.workloads.generator import ARRAY_BASE, RING_BASE, SCRATCH_BASE


def streaming_kernel(iterations=64, stride=1, array_words=4096):
    """Sequential sweep over an array, summing into a register.

    Independent loads with a predictable loop branch: the pattern every
    scheme handles well (bwaves-like).
    """
    source = """
        li   ra, {iterations}
        li   sp, {base}
        li   t0, 0          # index
        li   a0, 0          # accumulator
    loop:
        andi t1, t0, {mask}
        add  t1, t1, sp
        lw   a1, 0(t1)
        add  a0, a0, a1
        addi t0, t0, {stride}
        addi ra, ra, -1
        bne  ra, zero, loop
        sw   a0, 0(zero)
        halt
    """.format(
        iterations=iterations, base=ARRAY_BASE, mask=array_words - 1, stride=stride
    )
    program = assemble(source, name="streaming")
    for i in range(array_words):
        program.initial_memory[ARRAY_BASE + i] = (i * 7 + 3) & 0xFFFF
    return program


def chase_kernel(iterations=64, ring_words=1024, seed=1):
    """Pointer chase around a shuffled ring: serial dependent loads.

    Every load's address depends on the previous load's data — the
    worst case for NDA (each hop waits for the previous broadcast) and
    for STT when the hop feeds a transmitter.
    """
    import random

    rng = random.Random(seed)
    source = """
        li   ra, {iterations}
        li   gp, {base}
    loop:
        lw   gp, 0(gp)
        addi ra, ra, -1
        bne  ra, zero, loop
        sw   gp, 0(zero)
        halt
    """.format(iterations=iterations, base=RING_BASE)
    program = assemble(source, name="pointer-chase")
    indices = list(range(ring_words))
    rng.shuffle(indices)
    for position in range(ring_words):
        current = indices[position]
        nxt = indices[(position + 1) % ring_words]
        program.initial_memory[RING_BASE + current] = RING_BASE + nxt
    return program


def shadowed_miss_kernel(iterations=64, guard_words=4096, victim_words=4096):
    """Independent cache misses completing under slow branch shadows.

    Each iteration loads a *guard* value whose (data-dependent) branch
    keeps a C-shadow open until the miss returns, while a burst of
    independent *victim* loads from a second region miss and complete
    underneath that shadow.  This is the release-window regime: NDA and
    delay-on-miss accumulate withheld broadcasts that drain through the
    per-cycle ``mem_width`` budget when the shadow finally resolves,
    and STT's untaint broadcasts chase a fast-moving visibility point —
    the scheme-engine hot path the other kernels barely touch.
    """
    source = """
        li   ra, {iterations}
        li   sp, {guard}
        li   gp, {victim}
        li   t0, 0
        li   a0, 0
    loop:
        andi t1, t0, {guard_mask}
        add  t1, t1, sp
        lw   a1, 0(t1)          # guard miss: slow-resolving C-shadow
        slti t2, a1, 32768
        beq  t2, zero, skip     # resolves only when the guard returns
        addi s2, s2, 1
    skip:
        andi t3, t0, {victim_mask}
        add  t3, t3, gp
        lw   a2, 0(t3)          # victim misses complete under the shadow
        lw   a3, 64(t3)
        lw   a4, 128(t3)
        add  a0, a0, a2
        add  a0, a0, a3
        add  a0, a0, a4
        addi t0, t0, 192
        addi ra, ra, -1
        bne  ra, zero, loop
        sw   a0, 0(zero)
        halt
    """.format(
        iterations=iterations,
        guard=ARRAY_BASE,
        victim=RING_BASE,
        guard_mask=guard_words - 1,
        victim_mask=victim_words - 1,
    )
    program = assemble(source, name="shadowed-miss")
    for i in range(guard_words):
        program.initial_memory[ARRAY_BASE + i] = (i * 31 + 5) & 0xFFFF
    for i in range(victim_words + 128):
        program.initial_memory[RING_BASE + i] = (i * 13 + 1) & 0xFFFF
    return program


def forwarding_kernel(iterations=64, slots=8, array_words=4096):
    """Tight store-then-load traffic over a tiny region (exchange2-like).

    The recipe for the Section 9.2 anomaly:

    * a data-dependent branch on a loaded value keeps a speculation
      shadow open for a long time (the value sometimes misses), so
      loads under it stay tainted;
    * a store whose *data* is the tainted value but whose *address* is
      an untainted index — under STT-Rename's unified store micro-op,
      the tainted data blocks even the address generation;
    * an immediate reload of the same slot through the untainted index
      — it issues past the address-less store, reads stale memory, and
      flushes when the store's address finally resolves.

    STT-Issue taints the store's operands separately, so address
    generation proceeds and the reload forwards cleanly; NDA never
    blocks the store at all.
    """
    source = """
        li   ra, {iterations}
        li   tp, {scratch}
        li   sp, {array}
        li   t0, 0
        li   a0, 1
        li   s2, 0
    loop:
        andi t1, t0, {array_mask}
        add  t1, t1, sp
        lw   a1, 0(t1)          # speculative value (sometimes a miss)
        andi t2, a1, 1
        beq  t2, zero, even     # data-dependent: slow-resolving C-shadow
        addi s2, s2, 1
    even:
        andi t3, t0, {slot_mask}
        add  t3, t3, tp         # untainted slot address
        lw   a4, 0(t3)          # value to recycle (tainted under shadow)
        add  a4, a4, a1
        sw   a4, 0(t3)          # data tainted; unified taint blocks agen
        lw   a2, 0(t3)          # untainted reload of the same slot
        add  a0, a0, a2
        addi t0, t0, 1
        addi ra, ra, -1
        bne  ra, zero, loop
        sw   a0, 0(zero)
        sw   s2, 1(zero)
        halt
    """.format(
        iterations=iterations,
        scratch=SCRATCH_BASE,
        array=ARRAY_BASE,
        slot_mask=slots - 1,
        array_mask=array_words - 1,
    )
    program = assemble(source, name="forwarding")
    for i in range(array_words):
        program.initial_memory[ARRAY_BASE + i] = (i * 2654435761) & 0xFFFF
    for i in range(slots):
        program.initial_memory[SCRATCH_BASE + i] = i
    return program
