"""Parameterised synthetic program generator.

A :class:`WorkloadProfile` describes a workload's character;
:func:`generate_program` turns it into a concrete, terminating
:class:`~repro.isa.program.Program`: one counted outer loop whose body
is sampled from small templates (streaming loads, pointer chases,
dependent ALU chains, stores with near reloads, data-dependent
branches, multiplies/divides).  All sampling uses a seeded private
RNG, so programs are fully reproducible.

Register convention inside generated code:

=========  ====================================================
x1  (ra)   outer-loop counter
x2  (sp)   array base (streaming region)
x3  (gp)   pointer-chase cursor (holds an absolute address)
x4  (tp)   scratch base (store/reload region)
x5  (t0)   address scratch
x6  (t1)   branch scratch
x10..x17   data registers (ALU chains, load targets)
x18..x25   secondary data pool
=========  ====================================================
"""

import random
import zlib
from dataclasses import dataclass, field

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program

#: Version stamp of the generator's *output*, hashed into
#: content-addressed program-cache keys (see
#: :mod:`repro.workloads.program_cache`).  Bump whenever a change to
#: the emitters, sampling, or memory initialisation alters the
#: generated instruction stream for an unchanged profile — profile
#: *content* already participates in the key on its own.
GENERATOR_VERSION = "1"

# Register roles (see module docstring).
_R_COUNT = 1
_R_BASE = 2
_R_CURSOR = 3
_R_SCRATCH_BASE = 4
_R_ADDR = 5
_R_BR = 6
#: Destinations for loads (rotated so parallel loads stay independent).
_LOAD_REGS = (10, 11, 12, 13)
#: Chain accumulator registers (never load destinations).
_ACC_REGS = (14, 15, 16, 17)
_DATA_REGS = _LOAD_REGS + _ACC_REGS
_POOL_REGS = tuple(range(18, 26))

#: Word address where the streaming array begins.
ARRAY_BASE = 0x1000
#: Word address where the pointer-chase ring begins.
RING_BASE = 0x100000
#: Word address of the scratch (store/reload) region.
SCRATCH_BASE = 0x200000


@dataclass(frozen=True)
class WorkloadProfile:
    """Knobs describing one synthetic workload.

    Template weights need not sum to one; they are normalised.  The
    memory-related sizes are in words (the model ISA is word-addressed;
    a cache line holds 8 words).
    """

    name: str = "synthetic"
    #: Outer-loop iterations (dynamic length scales linearly).
    iterations: int = 64
    #: Instruction templates sampled per loop body block.
    body_templates: int = 12
    #: Independently sampled blocks per loop body.  Multiple blocks
    #: average out template-order luck, keeping a benchmark's character
    #: stable across seeds (one block can land in a pathological
    #: scheduling regime; three rarely all do).
    body_blocks: int = 3

    # Template weights.
    w_stream_load: float = 2.0
    w_chase_load: float = 0.5
    w_alu_chain: float = 3.0
    w_ilp_alu: float = 2.0
    w_store: float = 1.0
    w_reload: float = 0.5
    w_branch: float = 1.5
    w_mul: float = 0.3
    w_div: float = 0.05

    #: Streaming working set in words (power of two).  Larger than the
    #: L1 (4 KiB-equivalent = 4096 words) causes misses.
    working_set_words: int = 2048
    #: Pointer-chase ring size in words (power of two).
    ring_words: int = 256
    #: Scratch region size in words (power of two).  Small regions give
    #: exchange2-style dense store-to-load traffic.
    scratch_words: int = 64
    #: Fraction of data-dependent branches whose direction is random
    #: (1.0 = coin flips, 0.0 = perfectly biased).
    branch_entropy: float = 0.3
    #: Fraction of *predictable* branches that nevertheless test loaded
    #: data, so they resolve only when the load returns.  Direction
    #: predictability and resolution latency are independent: late but
    #: predictable branches are free on the unsafe baseline yet keep
    #: speculation shadows open — the cost secure schemes pay for.
    branch_on_load: float = 0.5
    #: Length of each dependent ALU chain.
    chain_length: int = 3
    #: Instructions between a store and its reload (small = forwarding).
    reload_distance: int = 2
    #: Probability that a reload targets the most recent store's slot
    #: (store-to-load forwarding traffic; drives the Section 9.2
    #: violations when STT-Rename blocks the store's address).
    reload_match: float = 0.5
    #: Stride, in words, of the streaming access pattern.
    stream_stride: int = 1

    #: Free-form notes (which SPEC benchmark this models, and why).
    notes: str = ""

    def weights(self):
        return {
            "stream_load": self.w_stream_load,
            "chase_load": self.w_chase_load,
            "alu_chain": self.w_alu_chain,
            "ilp_alu": self.w_ilp_alu,
            "store": self.w_store,
            "reload": self.w_reload,
            "branch": self.w_branch,
            "mul": self.w_mul,
            "div": self.w_div,
        }


class _Builder:
    """Accumulates instructions with label/fixup support."""

    def __init__(self):
        self.instructions = []

    def emit(self, op, rd=0, rs1=0, rs2=0, imm=0):
        self.instructions.append(Instruction(op=op, rd=rd, rs1=rs1, rs2=rs2, imm=imm))
        return len(self.instructions) - 1

    def here(self):
        return len(self.instructions)

    def patch_target(self, index, target):
        old = self.instructions[index]
        self.instructions[index] = Instruction(
            op=old.op, rd=old.rd, rs1=old.rs1, rs2=old.rs2, imm=target
        )


def generate_program(profile, seed=0):
    """Generate a terminating program for ``profile``.

    The program always halts: control flow is one counted outer loop
    plus forward-only data-dependent skips.
    """
    # zlib.crc32 (not hash()) so programs are identical across processes.
    name_hash = zlib.crc32(profile.name.encode("utf-8"))
    rng = random.Random((seed * 1_000_003) ^ name_hash)
    builder = _Builder()
    memory = {}

    _init_memory(profile, rng, memory)
    _emit_prologue(profile, builder)

    loop_top = builder.here()
    flow = _Dataflow()
    for _block in range(max(1, profile.body_blocks)):
        templates = _sample_templates(profile, rng)
        rng.shuffle(templates)
        # Structure each block like a real loop iteration: a load leads
        # (so chains and branches have a fresh root — without it the
        # dataflow web closes over loop-invariant registers and the
        # schemes have nothing to protect), and one branch trails the
        # computation (so its shadow covers the next block's loads).
        for position, template in enumerate(templates):
            if template in ("stream_load", "chase_load", "reload"):
                templates.insert(0, templates.pop(position))
                break
        else:
            templates.insert(0, "stream_load")
        if "branch" in templates[1:]:
            last = len(templates) - 1 - templates[::-1].index("branch")
            templates.append(templates.pop(last))
        for template in templates:
            _EMITTERS[template](profile, builder, rng, flow)

    # Loop control: decrement and branch back.
    builder.emit(Opcode.ADDI, rd=_R_COUNT, rs1=_R_COUNT, imm=-1)
    builder.emit(Opcode.BNE, rs1=_R_COUNT, rs2=0, imm=loop_top)
    # Publish one result so the work cannot be considered dead.
    builder.emit(Opcode.SW, rs1=0, rs2=_DATA_REGS[0], imm=8)
    builder.emit(Opcode.HALT)

    program = Program(
        instructions=builder.instructions,
        initial_memory=memory,
        name=profile.name,
    )
    program.validate()
    return program


def _init_memory(profile, rng, memory):
    """Seed the streaming array, pointer ring, and scratch region."""
    for i in range(profile.working_set_words):
        memory[ARRAY_BASE + i] = rng.randrange(0, 1 << 16)
    # Pointer ring: cell i holds the address of the next cell, in a
    # shuffled ring so hardware prefetchers cannot follow it.
    indices = list(range(profile.ring_words))
    rng.shuffle(indices)
    for position in range(profile.ring_words):
        current = indices[position]
        nxt = indices[(position + 1) % profile.ring_words]
        memory[RING_BASE + current] = RING_BASE + nxt
    for i in range(profile.scratch_words):
        memory[SCRATCH_BASE + i] = rng.randrange(0, 1 << 16)


def _emit_prologue(profile, builder):
    builder.emit(Opcode.LI, rd=_R_COUNT, imm=profile.iterations)
    builder.emit(Opcode.LI, rd=_R_BASE, imm=ARRAY_BASE)
    builder.emit(Opcode.LI, rd=_R_CURSOR, imm=RING_BASE)
    builder.emit(Opcode.LI, rd=_R_SCRATCH_BASE, imm=SCRATCH_BASE)
    for offset, reg in enumerate(_DATA_REGS + _POOL_REGS):
        builder.emit(Opcode.LI, rd=reg, imm=offset * 7 + 1)


class _Dataflow:
    """Tracks the freshest value-producing registers while emitting.

    ``newest`` is the most recently produced load result or chain
    accumulator — the register the next consumer (chain, branch, store)
    should read so the body forms load -> compute -> control/memory
    cascades within one iteration, like real loop bodies do.
    """

    def __init__(self):
        self.recent = []
        self.recent_loads = []
        self.last_store_slot = None
        self._load_slot = 0
        self._acc_slot = 0

    def next_load_reg(self):
        reg = _LOAD_REGS[self._load_slot % len(_LOAD_REGS)]
        self._load_slot += 1
        return reg

    def next_acc_reg(self):
        reg = _ACC_REGS[self._acc_slot % len(_ACC_REGS)]
        self._acc_slot += 1
        return reg

    def produced(self, reg, is_load=False):
        self.recent.append(reg)
        del self.recent[:-4]
        if is_load:
            self.recent_loads.append(reg)
            del self.recent_loads[:-3]

    def newest(self, rng, fallback=None):
        if self.recent:
            return self.recent[-1]
        return fallback if fallback is not None else rng.choice(_DATA_REGS)

    def any_recent(self, rng, fallback=None):
        if self.recent:
            return rng.choice(self.recent)
        return fallback if fallback is not None else rng.choice(_DATA_REGS)

    def newest_load(self, rng):
        if self.recent_loads:
            return self.recent_loads[-1]
        return self.newest(rng)


def _sample_templates(profile, rng):
    """Deterministic template quotas (largest-remainder apportionment).

    Random sampling makes small bodies structurally unstable (a body
    can draw zero branches, changing the workload's character); quotas
    keep every generated body faithful to its profile's mix.  The
    caller shuffles the order.
    """
    weights = profile.weights()
    names = [name for name in weights if weights[name] > 0.0]
    if not names:
        return ["ilp_alu"] * profile.body_templates
    total = sum(weights[name] for name in names)
    k = profile.body_templates
    exact = {name: k * weights[name] / total for name in names}
    counts = {name: int(exact[name]) for name in names}
    remainder = k - sum(counts.values())
    by_fraction = sorted(names, key=lambda n: exact[n] - counts[n], reverse=True)
    for name in by_fraction[:remainder]:
        counts[name] += 1
    # Structural guarantees: at least one load and one branch whenever
    # the profile asks for them at all.
    loads = ("stream_load", "chase_load", "reload")
    if all(counts.get(n, 0) == 0 for n in loads):
        donor = max(counts, key=counts.get)
        counts[donor] -= 1
        best_load = max(loads, key=lambda n: weights.get(n, 0.0))
        counts[best_load] = counts.get(best_load, 0) + 1
    # Guarantee a branch only for meaningfully-branchy profiles; a
    # streaming profile with a token branch weight should usually get
    # its control flow from the loop branch alone.
    if weights.get("branch", 0.0) >= 1.0 and counts.get("branch", 0) == 0:
        donor = max(counts, key=counts.get)
        counts[donor] -= 1
        counts["branch"] = 1
    templates = []
    for name, count in counts.items():
        templates.extend([name] * max(0, count))
    return templates


# -- template emitters -----------------------------------------------------
#
# Each emitter appends a handful of instructions and records produced
# values in the dataflow context, so later templates consume *current-
# iteration* results: loads root chains, chains feed branches and
# stores.  That cascade is the traffic that distinguishes the schemes.


def _emit_stream_load(profile, builder, rng, flow):
    dest = flow.next_load_reg()
    mask = profile.working_set_words - 1
    index_src = rng.choice(_POOL_REGS)
    stride_hop = profile.stream_stride * rng.randrange(1, 4)
    builder.emit(Opcode.ADDI, rd=index_src, rs1=index_src, imm=stride_hop)
    builder.emit(Opcode.ANDI, rd=_R_ADDR, rs1=index_src, imm=mask)
    builder.emit(Opcode.ADD, rd=_R_ADDR, rs1=_R_ADDR, rs2=_R_BASE)
    builder.emit(Opcode.LW, rd=dest, rs1=_R_ADDR, imm=0)
    flow.produced(dest, is_load=True)


def _emit_chase_load(profile, builder, rng, flow):
    builder.emit(Opcode.LW, rd=_R_CURSOR, rs1=_R_CURSOR, imm=0)
    flow.produced(_R_CURSOR, is_load=True)


def _emit_alu_chain(profile, builder, rng, flow):
    """Elementwise computation: a chain *restarted* at the newest value.

    Restarting (rather than accumulating into a persistent register)
    puts the load on the chain's critical path, so a deferred load
    broadcast (NDA) delays the whole chain — the paper's "no dependent
    computations can be completed" effect.  One merge op into a
    reduction register keeps the result architecturally live without
    serialising iterations.
    """
    source = flow.newest_load(rng)
    acc = flow.next_acc_reg()
    ops = (Opcode.ADD, Opcode.XOR, Opcode.AND, Opcode.OR, Opcode.SUB)
    builder.emit(Opcode.ADD, rd=acc, rs1=source, rs2=source)
    for _ in range(max(0, profile.chain_length - 1)):
        builder.emit(rng.choice(ops), rd=acc, rs1=acc, rs2=rng.choice(_POOL_REGS))
    reduction = rng.choice(_POOL_REGS)
    builder.emit(Opcode.ADD, rd=reduction, rs1=reduction, rs2=acc)
    flow.produced(acc)


def _emit_ilp_alu(profile, builder, rng, flow):
    for _ in range(2):
        dest = rng.choice(_POOL_REGS)
        builder.emit(
            rng.choice((Opcode.ADDI, Opcode.XORI, Opcode.ORI)),
            rd=dest,
            rs1=dest,
            imm=rng.randrange(1, 64),
        )


def _emit_store(profile, builder, rng, flow):
    value = flow.any_recent(rng)
    slot = rng.randrange(profile.scratch_words)
    builder.emit(Opcode.SW, rs1=_R_SCRATCH_BASE, rs2=value, imm=slot)
    flow.last_store_slot = slot


def _emit_reload(profile, builder, rng, flow):
    if flow.last_store_slot is not None and rng.random() < profile.reload_match:
        slot = flow.last_store_slot
    else:
        slot = rng.randrange(profile.scratch_words)
    dest = flow.next_load_reg()
    builder.emit(Opcode.LW, rd=dest, rs1=_R_SCRATCH_BASE, imm=slot)
    flow.produced(dest, is_load=True)


def _emit_branch(profile, builder, rng, flow):
    """Branch on recent data.

    Direction predictability and *resolution latency* are independent:
    both data variants read the newest produced value (the branch
    cannot resolve — and its C-shadow cannot lift — before that value
    exists), but only the high-entropy variant has a data-random
    direction.  Perfectly-predicted branches on slow data are free on
    the unsafe baseline yet keep speculation shadows open, which is
    precisely what the secure schemes pay for.
    """
    if rng.random() < profile.branch_entropy:
        # Random direction: parity of a random memory value.
        builder.emit(Opcode.ANDI, rd=_R_BR, rs1=flow.newest(rng), imm=1)
    elif rng.random() < profile.branch_on_load:
        # Predictable direction (values are < 2^32), still data-late.
        builder.emit(Opcode.SLTI, rd=_R_BR, rs1=flow.newest(rng), imm=1 << 40)
    else:
        # Loop-bound style: predictable and resolves from fast state.
        index = rng.choice(_POOL_REGS)
        builder.emit(Opcode.SLTI, rd=_R_BR, rs1=index, imm=1 << 40)
    branch_index = builder.emit(Opcode.BEQ, rs1=_R_BR, rs2=0, imm=0)
    skipped = rng.randrange(1, 3)
    for _ in range(skipped):
        dest = rng.choice(_POOL_REGS)
        builder.emit(Opcode.ADDI, rd=dest, rs1=dest, imm=3)
    builder.patch_target(branch_index, builder.here())


def _emit_mul(profile, builder, rng, flow):
    source = flow.newest(rng)
    acc = flow.next_acc_reg()
    builder.emit(Opcode.MUL, rd=acc, rs1=source, rs2=rng.choice(_POOL_REGS))
    flow.produced(acc)


def _emit_div(profile, builder, rng, flow):
    dest = rng.choice(_POOL_REGS)
    src = flow.any_recent(rng)
    builder.emit(Opcode.ORI, rd=_R_BR, rs1=src, imm=1)  # never divide by zero
    builder.emit(Opcode.DIV, rd=dest, rs1=dest, rs2=_R_BR)


_EMITTERS = {
    "stream_load": _emit_stream_load,
    "chase_load": _emit_chase_load,
    "alu_chain": _emit_alu_chain,
    "ilp_alu": _emit_ilp_alu,
    "store": _emit_store,
    "reload": _emit_reload,
    "branch": _emit_branch,
    "mul": _emit_mul,
    "div": _emit_div,
}
