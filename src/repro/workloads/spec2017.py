"""Assembly of the full SPEC CPU2017 proxy suite."""

from repro.workloads.characteristics import SPEC_BENCHMARKS, SPEC_PROFILES
from repro.workloads.program_cache import cached_program, scaled_profile


def spec_suite(scale=1.0, seed=2017, benchmarks=None):
    """Generate the proxy suite; returns ``[(name, Program), ...]``.

    ``scale`` multiplies every profile's iteration count, trading run
    time for measurement stability (benches use small scales; the
    harness's defaults aim for a few thousand dynamic instructions per
    benchmark).  ``benchmarks`` optionally restricts to a subset by
    name.

    Programs come from the content-addressed
    :mod:`~repro.workloads.program_cache`, so repeated requests for the
    same (benchmark, scale, seed) — sixteen grid cells per benchmark,
    every worker loop — generate each program once per process.
    """
    selected = benchmarks or SPEC_BENCHMARKS
    return [
        (name,
         cached_program(scaled_profile(SPEC_PROFILES[name], scale), seed=seed))
        for name in selected
    ]
