"""Assembly of the full SPEC CPU2017 proxy suite."""

from repro.workloads.characteristics import SPEC_BENCHMARKS, SPEC_PROFILES
from repro.workloads.generator import generate_program


def spec_suite(scale=1.0, seed=2017, benchmarks=None):
    """Generate the proxy suite; returns ``[(name, Program), ...]``.

    ``scale`` multiplies every profile's iteration count, trading run
    time for measurement stability (benches use small scales; the
    harness's defaults aim for a few thousand dynamic instructions per
    benchmark).  ``benchmarks`` optionally restricts to a subset by
    name.
    """
    selected = benchmarks or SPEC_BENCHMARKS
    suite = []
    for name in selected:
        profile = SPEC_PROFILES[name]
        iterations = max(2, int(round(profile.iterations * scale)))
        scaled = profile if iterations == profile.iterations else _rescale(
            profile, iterations
        )
        suite.append((name, generate_program(scaled, seed=seed)))
    return suite


def _rescale(profile, iterations):
    from dataclasses import replace

    return replace(profile, iterations=iterations)
