"""Per-uop pipeline event traces in gem5 O3PipeView format.

A :class:`PipeTracer` is handed to :class:`~repro.pipeline.core.
OoOCore` at construction (``tracer=``).  The core reports every
retired uop (at commit) and every squashed uop (captured *before* the
issue queue destroys its scheduler state), and :meth:`PipeTracer.
render` emits the standard ``O3PipeView:`` line protocol that Konata
and gem5's own viewers consume.

Stage mapping: this model's batched front end has no distinct
decode/rename/dispatch latencies, so those three stages all carry the
rename-dispatch cycle; ``fetch`` is the fetch-buffer entry cycle.
Ticks are raw cycle numbers (viewers infer the period).  Squashed
uops emit ``retire:0`` — the viewer convention for never-retired.
Fetch-buffer entries squashed before rename are not traced.
"""

from repro.pipeline.issue_queue import IQ_ISSUED, IQ_NONE


class PipeTracer:
    """Bounded per-uop event recorder (oldest ``limit`` uops kept)."""

    __slots__ = ("limit", "records", "dropped")

    def __init__(self, limit=5000):
        self.limit = limit
        self.records = []
        self.dropped = 0

    def attach(self, core):
        """Construction-time hook (symmetry with CycleAccount)."""

    # -- core-facing sinks ------------------------------------------------

    def on_retire(self, uop, cycle):
        self._capture(uop, cycle)

    def on_squash_batch(self, uops, cycle):
        for uop in uops:
            self._capture(uop, 0)

    def _capture(self, uop, retire_tick):
        if len(self.records) >= self.limit:
            self.dropped += 1
            return
        rename = uop.rename_cycle if uop.rename_cycle is not None else 0
        if uop.op_is_store:
            issued = uop.addr_issued or uop.data_issued or uop.completed
        else:
            # Scheduler state is authoritative for non-memory uops (the
            # memory slot group, issue flags included, is stale across
            # pool recycles): IQ_NONE/IQ_ISSUED on an in-flight uop
            # means it left the scheduler, i.e. it issued.
            issued = (uop.complete_cycle is not None
                      or uop.iq_status in (IQ_NONE, IQ_ISSUED))
        issue = uop.issue_cycle
        # issue_cycle predating this life's rename is a stale pooled
        # value; squashed never-issued uops report tick 0.
        if not issued or issue is None or issue < rename:
            issue = 0
        complete = uop.complete_cycle
        if complete is None:
            complete = 0
        self.records.append((
            uop.seq, uop.pc, str(uop.instr),
            uop.fetch_cycle, rename, issue, complete, retire_tick,
        ))

    # -- rendering --------------------------------------------------------

    def render(self):
        """The full trace as O3PipeView text (one string)."""
        lines = []
        append = lines.append
        for seq, pc, disasm, fetch, rename, issue, complete, retire \
                in self.records:
            append("O3PipeView:fetch:%d:0x%08x:0:%d:%s"
                   % (fetch, pc, seq, disasm))
            append("O3PipeView:decode:%d" % rename)
            append("O3PipeView:rename:%d" % rename)
            append("O3PipeView:dispatch:%d" % rename)
            append("O3PipeView:issue:%d" % issue)
            append("O3PipeView:complete:%d" % complete)
            append("O3PipeView:retire:%d:store:0" % retire)
        if not lines:
            return ""
        return "\n".join(lines) + "\n"


def trace_pipeline(benchmark, config=None, scheme_name="baseline",
                   scheme_kwargs=None, scale=1.0, limit=5000):
    """Trace one throughput-suite workload; returns (tracer, result).

    ``benchmark`` names a workload from the canonical bench suite
    (:data:`repro.harness.bench.THROUGHPUT_LABELS`) so pipeview output
    is directly comparable with bench/profile numbers.
    """
    from repro.core.factory import make_scheme
    from repro.harness.bench import THROUGHPUT_LABELS, throughput_suite
    from repro.pipeline.config import MEGA
    from repro.pipeline.core import OoOCore

    if benchmark not in THROUGHPUT_LABELS:
        raise ValueError("unknown bench workload %r (choose from %s)"
                         % (benchmark, ", ".join(THROUGHPUT_LABELS)))
    for label, program, warm in throughput_suite(scale=scale):
        if label == benchmark:
            break
    tracer = PipeTracer(limit=limit)
    core = OoOCore(
        program,
        config=config or MEGA,
        scheme=make_scheme(scheme_name, **dict(scheme_kwargs or {})),
        warm_caches=warm,
        tracer=tracer,
    )
    result = core.run()
    return tracer, result
