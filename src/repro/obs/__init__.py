"""Cycle-attribution observability: where every pipeline slot went.

Three layers, all strictly opt-in and zero-cost when disabled — the
core takes observability sinks at construction and devirtualises them
exactly like the scheme hooks (``None`` = no-op, never called):

* :class:`~repro.obs.account.CycleAccount` — top-down cycle
  accounting.  Every commit slot of every cycle is attributed to
  exactly one cause: a committed instruction, or one leaf stall
  cause.  The conservation property (``sum(leaf slots) +
  committed_instructions == width x cycles``) is tested and is the
  contract every consumer may rely on.
* :class:`~repro.obs.pipeview.PipeTracer` — per-uop pipeline event
  traces in gem5 O3PipeView format, viewable in Konata
  (``python -m repro pipeview``).
* :mod:`repro.obs.telemetry` — cluster telemetry: workers stamp each
  result frame with wall time / peak RSS / replay engagement, the
  coordinator aggregates per-worker and per-scheme rollups
  (``python -m repro metrics`` reads the persisted cycle accounts).

Attribution taxonomy
--------------------

Classification runs once per non-full commit cycle, top-down at the
commit boundary (after the commit phase, before the younger pipeline
phases), and charges all ``width - committed`` idle slots of that
cycle to a single leaf:

``flush_recovery``
    An ordering-violation flush fired this cycle; the machine spends
    the slot refilling from the flush point.
``drained``
    The halting cycle's leftover slots (HALT or an instruction-limit
    stop committed this cycle).
``rename_blocked_rob / _iq / _ldq / _stq / _preg / _ckpt``
    The ROB has work in flight, the front end presents a visible
    instruction, but rename cannot accept it: the named back-end
    resource (ROB / issue-queue / load-queue / store-queue entries,
    physical registers, branch checkpoints) is exhausted.
``scheme_delayed``
    The active secure-speculation scheme is the proximate cause of the
    idle slots, in either of two shapes.  *Direct*: the un-issued ROB
    head (or un-issued store half at the head) is being withheld by
    the scheme.  *Back-pressure*: rename is blocked on an exhausted
    back-end resource while the scheme withholds the oldest unissued
    issue-queue entry — resolution-released schemes rarely stall the
    head itself (a blocked uop implies an older unresolved caster
    still ahead of it in the ROB), so their cost surfaces as withheld
    work piling up until the issue queue (fence) or physical register
    file (STT, NDA) exhausts.  Only the oldest unissued entry is
    consulted, so transitive chains (an operand wait on a
    scheme-blocked producer) stay with the generic resource leaf.
    Broken down per scheme under
    ``cycacct.scheme.<sub-cause>``: ``stt-taint-not-cleared`` (STT
    variants: a source taint's YRoT has not cleared the visibility
    point), ``nda-budget-block`` (NDA: a source register's ready
    broadcast is withheld), ``delay-on-miss-defer`` (a deferred
    missing load gates the head), ``fence-bound-to-commit`` (the
    head transmitter waits to become bound-to-commit).
``waiting_operands``
    The un-issued ROB head is waiting for source operands (no scheme
    involvement).
``waiting_memory``
    The ROB head is a load in flight in the memory system, or a store
    with both halves issued awaiting completion.
``waiting_execute``
    The ROB head (non-memory) has issued and is executing, or is
    ready and contending for an issue slot.
``pipeline_fill``
    The ROB is empty but rename will dispatch this cycle — the window
    is refilling through the front end.
``frontend_redirect``
    Nothing visible to rename: fetch is stalled on a squash/flush
    redirect (branch mispredict recovery).
``frontend_empty``
    Nothing visible to rename for any other front-end reason
    (fetch-to-rename transit, fetch ran dry).

Precedence is the order above within each group: flush/drain first,
then rename back-pressure (with the scheme back-pressure probe
consulted before the generic resource leaf), then ROB-head drill-down
(scheme delay is checked before generic operand waits, so scheme cost
is never under-attributed), then the empty-ROB front-end causes.

Idle-cycle fast-forward windows are attributed by classifying once at
the window start — legal because fast-forward only engages when every
phase (and therefore the classification) is provably constant across
the window; a dedicated test pins fast-forward accounting against
pure stepping.

All counters ride ``SimStats.extra`` under the ``cycacct.`` namespace
(leaves, ``cycacct.scheme.<sub>``, per-label issue-block counts under
``cycacct.issue_blocks.``, and summed per-cycle occupancies under
``cycacct.occ.``), so they flow through the existing result store and
cluster wire without new schema.
"""

from repro.obs.account import CycleAccount, LEAF_CAUSES
from repro.obs.pipeview import PipeTracer, trace_pipeline
from repro.obs.telemetry import (
    TelemetryAggregate,
    cell_telemetry,
    format_rollup,
)

__all__ = [
    "CycleAccount",
    "LEAF_CAUSES",
    "PipeTracer",
    "trace_pipeline",
    "TelemetryAggregate",
    "cell_telemetry",
    "format_rollup",
]
