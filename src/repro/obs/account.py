"""Top-down cycle accounting (see :mod:`repro.obs` for the taxonomy).

A :class:`CycleAccount` is handed to :class:`~repro.pipeline.core.
OoOCore` at construction (``account=``).  The core calls

* :meth:`CycleAccount.note_cycle` once per stepped cycle, right after
  the commit phase, with the number of instructions that committed;
* :meth:`CycleAccount.note_skip` once per fast-forwarded window, with
  the window length (classification at the window start is constant
  across the window — fast-forward only engages when every phase is
  provably inert);
* :meth:`CycleAccount.note_flush` when an ordering-violation flush
  fires (consumed by the same cycle's ``note_cycle``);
* :meth:`CycleAccount.issue_blocked` each time the issue stage charges
  ``taint_blocked_issues`` (per-scheme block-event counts, distinct
  from slot attribution).

The conservation invariant — every commit slot attributed exactly
once::

    sum(cycacct leaf slots) + committed_instructions == width * cycles

with ``cycacct.cycles == stats.cycles`` exactly.
"""

from repro.pipeline.issue_queue import (
    IQ_ISSUED,
    IQ_NONE,
    IQ_READY,
    IQ_WAITING,
)

#: Rename stall counter -> attribution leaf.
_RENAME_LEAF = {
    "stall_rob_full": "rename_blocked_rob",
    "stall_iq_full": "rename_blocked_iq",
    "stall_ldq_full": "rename_blocked_ldq",
    "stall_stq_full": "rename_blocked_stq",
    "stall_no_phys_regs": "rename_blocked_preg",
    "stall_no_checkpoint": "rename_blocked_ckpt",
}

#: Every leaf cause, in report order (the taxonomy in repro.obs).
LEAF_CAUSES = (
    "frontend_empty",
    "frontend_redirect",
    "pipeline_fill",
    "rename_blocked_rob",
    "rename_blocked_iq",
    "rename_blocked_ldq",
    "rename_blocked_stq",
    "rename_blocked_preg",
    "rename_blocked_ckpt",
    "waiting_operands",
    "waiting_execute",
    "waiting_memory",
    "scheme_delayed",
    "flush_recovery",
    "drained",
)


def _backpressure_subcause(core):
    """Drill below a rename resource stall: is the scheme refusing to
    drain the back end?

    Schemes released at shadow *resolution* never delay the ROB head
    directly — a scheme-blocked uop implies an older unresolved shadow
    caster, which is incomplete and therefore still ahead of it in the
    ROB.  Their cost surfaces as back-pressure instead: withheld work
    piles up behind the block until some rename-side resource (issue
    queue under fence, physical registers under STT/NDA) exhausts.
    Back-end resources free in commit order, and commit is gated by
    the oldest unfinished work; the oldest work not even *started* is
    the oldest unissued issue-queue entry.  If the scheme is
    withholding exactly that entry, the resource is exhausted because
    of the scheme, not because execution is slow, and the idle slots
    belong to ``scheme_delayed``.  Only the head of the unissued age
    order is consulted — transitive chains (an operand wait on a
    scheme-blocked producer) stay with the generic resource leaf.
    """
    scheme = core.scheme
    if scheme.delay_label is None:
        return None
    for uop in core.iq.entries.values():  # insertion order == age order
        if uop.killed:
            continue
        status = uop.iq_status
        if status == IQ_WAITING or status == IQ_READY:
            return scheme.delay_subcause(uop)
    return None


def _classify(core):
    """One (leaf, scheme_sub_cause) for the current commit boundary.

    Called only when at least one commit slot went idle; shared by the
    stepping and fast-forward paths so their attributions can never
    diverge.  Reads core state without mutating it.
    """
    if core.halted:
        return "drained", None
    fetch = core.fetch
    entry = fetch.peek_ready(core.cycle)
    rob = core.rob
    if rob:
        if entry is not None:
            counter = core._rename_block(entry)
            if counter is not None:
                sub = _backpressure_subcause(core)
                if sub is not None:
                    return "scheme_delayed", sub
                return _RENAME_LEAF[counter], None
        head = rob[0]
        scheme = core.scheme
        if head.op_is_store:
            if head.addr_issued and head.data_issued:
                return "waiting_memory", None
            sub = scheme.delay_subcause(head)
            if sub is not None:
                return "scheme_delayed", sub
            return "waiting_operands", None
        # Non-store: the scheduler state is authoritative (the memory
        # slot group is stale on recycled non-memory uops).  IQ_NONE on
        # an in-ROB incomplete uop means it issued and departed;
        # IQ_ISSUED means it issued on a speculative operand.
        status = head.iq_status
        if status == IQ_NONE or status == IQ_ISSUED:
            if head.op_is_load:
                return "waiting_memory", None
            return "waiting_execute", None
        sub = scheme.delay_subcause(head)
        if sub is not None:
            return "scheme_delayed", sub
        if status == IQ_READY:
            return "waiting_execute", None
        return "waiting_operands", None
    if entry is not None:
        counter = core._rename_block(entry)
        if counter is not None:  # pragma: no cover - empty-ROB resource
            return _RENAME_LEAF[counter], None  # blocks are checkpoint-only
        return "pipeline_fill", None
    if fetch.redirect_stalled(core.cycle):
        return "frontend_redirect", None
    return "frontend_empty", None


class CycleAccount:
    """Accumulates per-leaf idle-slot counts plus occupancy integrals."""

    __slots__ = ("width", "cycles", "leaves", "scheme_sub", "issue_blocks",
                 "occupancy", "_flush_pending")

    def __init__(self):
        self.width = 0
        self.cycles = 0
        self.leaves = {}
        self.scheme_sub = {}
        self.issue_blocks = {}
        self.occupancy = {"rob": 0, "iq": 0, "ldq": 0, "stq": 0, "pregs": 0}
        self._flush_pending = False

    def attach(self, core):
        self.width = core.config.width

    # -- core-facing sinks ------------------------------------------------

    def note_cycle(self, core, committed):
        """Attribute one stepped cycle (``committed`` uops retired)."""
        self.cycles += 1
        self._sample(core, 1)
        idle = self.width - committed
        if idle <= 0:
            self._flush_pending = False
            return
        if self._flush_pending:
            self._flush_pending = False
            leaf, sub = "flush_recovery", None
        else:
            leaf, sub = _classify(core)
        leaves = self.leaves
        leaves[leaf] = leaves.get(leaf, 0) + idle
        if sub is not None:
            subs = self.scheme_sub
            subs[sub] = subs.get(sub, 0) + idle

    def note_skip(self, core, skipped):
        """Attribute a fast-forwarded window of ``skipped`` idle cycles."""
        if skipped <= 0:
            return
        self.cycles += skipped
        self._sample(core, skipped)
        leaf, sub = _classify(core)
        slots = self.width * skipped
        leaves = self.leaves
        leaves[leaf] = leaves.get(leaf, 0) + slots
        if sub is not None:
            subs = self.scheme_sub
            subs[sub] = subs.get(sub, 0) + slots

    def note_flush(self):
        """An ordering-violation flush fired in the current commit."""
        self._flush_pending = True

    def issue_blocked(self, label):
        """The issue stage withheld a (half-)issue; count per label."""
        label = label or "scheme"
        blocks = self.issue_blocks
        blocks[label] = blocks.get(label, 0) + 1

    def _sample(self, core, weight):
        occ = self.occupancy
        occ["rob"] += len(core.rob) * weight
        occ["iq"] += len(core.iq.entries) * weight
        ldq, stq = core.lsu.occupancy()
        occ["ldq"] += ldq * weight
        occ["stq"] += stq * weight
        occ["pregs"] += core.rename.occupancy() * weight

    # -- reporting --------------------------------------------------------

    def as_extra(self):
        """Flatten into ``SimStats.extra`` keys (``cycacct.`` namespace).

        Only non-zero leaves are emitted; ``cycacct.width`` and
        ``cycacct.cycles`` always are, so conservation is checkable
        from a stored result alone.
        """
        extra = {
            "cycacct.width": self.width,
            "cycacct.cycles": self.cycles,
        }
        for leaf in sorted(self.leaves):
            extra["cycacct." + leaf] = self.leaves[leaf]
        for sub in sorted(self.scheme_sub):
            extra["cycacct.scheme." + sub] = self.scheme_sub[sub]
        for label in sorted(self.issue_blocks):
            extra["cycacct.issue_blocks." + label] = self.issue_blocks[label]
        for name in sorted(self.occupancy):
            extra["cycacct.occ." + name] = self.occupancy[name]
        return extra
