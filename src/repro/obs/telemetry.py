"""Cluster telemetry: per-cell frame stamps and campaign rollups.

Telemetry travels on the *wire frame* as an optional ``telemetry``
sibling of the result payload — deliberately not inside the stored
:class:`~repro.pipeline.core.SimulationResult`, so stores stay
byte-identical across serial / pool / cluster / chaotic runs.  Old
coordinators ignore the extra key; old workers simply do not send it
(the protocol version is unchanged).

The worker stamps each frame via :func:`cell_telemetry`; the
coordinator feeds frames into a :class:`TelemetryAggregate`, whose
:meth:`~TelemetryAggregate.rollup` rides ``coordinator.stats()`` out
to the CLI.
"""


def cell_telemetry(result, wall_seconds, peak_rss_kb=None,
                   diagnostics=None):
    """Build one frame's ``telemetry`` dict from a finished cell.

    ``diagnostics`` is the executor-side extras dict (e.g. fast-forward
    engagement from :func:`repro.harness.parallel.
    last_cell_diagnostics`); unknown keys pass through untouched.
    """
    stats = result.stats
    telemetry = {
        "wall_seconds": round(wall_seconds, 6),
        "simulated_cycles": result.cycles,
        "committed_instructions": stats.committed_instructions,
        "replayed_uops": stats.replayed_uops,
    }
    if peak_rss_kb is not None:
        telemetry["peak_rss_kb"] = int(peak_rss_kb)
    if diagnostics:
        for key, value in diagnostics.items():
            telemetry.setdefault(key, value)
    return telemetry


def _accumulate(bucket, telemetry):
    bucket["cells"] += 1
    bucket["wall_seconds"] += float(telemetry.get("wall_seconds") or 0.0)
    for key in ("simulated_cycles", "committed_instructions",
                "replayed_uops", "ff_skipped_cycles",
                "replay_batch_events", "replay_batch_uops"):
        value = telemetry.get(key)
        if value:
            bucket[key] = bucket.get(key, 0) + int(value)
    rss = telemetry.get("peak_rss_kb")
    if rss and int(rss) > bucket.get("peak_rss_kb", 0):
        bucket["peak_rss_kb"] = int(rss)


class TelemetryAggregate:
    """Per-worker / per-scheme rollup of cell telemetry frames.

    Not thread-safe by itself; the coordinator adds frames under its
    own lock.
    """

    __slots__ = ("cells", "wall_seconds", "per_worker", "per_scheme")

    def __init__(self):
        self.cells = 0
        self.wall_seconds = 0.0
        self.per_worker = {}
        self.per_scheme = {}

    def add(self, worker, scheme, telemetry):
        if not telemetry:
            return
        self.cells += 1
        self.wall_seconds += float(telemetry.get("wall_seconds") or 0.0)
        _accumulate(
            self.per_worker.setdefault(
                worker or "?", {"cells": 0, "wall_seconds": 0.0}),
            telemetry,
        )
        _accumulate(
            self.per_scheme.setdefault(
                scheme or "?", {"cells": 0, "wall_seconds": 0.0}),
            telemetry,
        )

    def rollup(self):
        """JSON-ready summary (empty dict when nothing was stamped)."""
        if not self.cells:
            return {}
        return {
            "cells": self.cells,
            "wall_seconds": round(self.wall_seconds, 6),
            "per_worker": {
                name: dict(bucket, wall_seconds=round(
                    bucket["wall_seconds"], 6))
                for name, bucket in sorted(self.per_worker.items())
            },
            "per_scheme": {
                name: dict(bucket, wall_seconds=round(
                    bucket["wall_seconds"], 6))
                for name, bucket in sorted(self.per_scheme.items())
            },
        }

    def format(self):
        """Short human-readable rollup (one line per worker/scheme)."""
        return format_rollup(self.rollup())


def format_rollup(rollup):
    """Render a :meth:`TelemetryAggregate.rollup` dict as text.

    A module function (not a method) so callers holding only the
    JSON-ready rollup — the CLI reading ``coordinator.stats()`` — can
    format it without rebuilding an aggregate.
    """
    if not rollup or not rollup.get("cells"):
        return "telemetry: no frames recorded"
    lines = ["telemetry: %d cells, %.2fs simulated wall time"
             % (rollup["cells"], rollup["wall_seconds"])]
    for name, bucket in sorted(rollup.get("per_worker", {}).items()):
        lines.append(
            "  worker %-16s cells=%-5d wall=%.2fs peak_rss=%sKB"
            % (name, bucket["cells"], bucket["wall_seconds"],
               bucket.get("peak_rss_kb", "?")))
    for name, bucket in sorted(rollup.get("per_scheme", {}).items()):
        lines.append(
            "  scheme %-16s cells=%-5d wall=%.2fs cycles=%d replays=%d"
            % (name, bucket["cells"], bucket["wall_seconds"],
               bucket.get("simulated_cycles", 0),
               bucket.get("replayed_uops", 0)))
    return "\n".join(lines)
