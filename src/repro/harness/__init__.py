"""Campaign engine: content-addressed, disk-backed, parallel, distributed.

:class:`~repro.harness.runner.CampaignRunner` executes the
(benchmark x config x scheme) simulation grid and caches results;
:mod:`repro.harness.experiments` turns the cached grid into each
table/figure of the paper, rendered as text and returned as data.

**Cache key.**  Every grid cell is identified by
:func:`~repro.harness.store.simulation_key`, a SHA-256 over the
canonical JSON of the complete simulation identity: the full
``CoreConfig`` parameter record (every field, nested ``MemConfig``
included), the scheme name plus constructor kwargs, the workload
scale/seed, and a model version stamp.  Display names carry no
identity, so same-named-but-different configurations can never alias.

**Store layout** (format ``segments-v1``).  With a
:class:`~repro.harness.store.ResultStore` attached, cells append into
shared segment files indexed by a SQLite manifest::

    results/store/
        manifest.db               # SQLite: full-key index + columns
        segments/seg-NNNNNN.seg   # append-only record segments
        failures/*.json           # CellFailure records

Each segment record is ``"SBR1" | u32 payload-length | u32 CRC32 |
zlib(canonical JSON)`` where the JSON payload is the envelope
``{"key", "model_version", "meta", "result"}`` — the same envelope the
original JSON-file-per-cell layout stored, so the logical format never
changed.  The manifest's ``cells`` table maps every *full* 64-hex key
to its segment/offset/length and carries the benchmark/config/scheme
columns, hot counters, and a per-cell statistics blob: ``keys()`` and
``len()`` are pure index reads, ``load_many`` returns lazily-decoded
results (snapshot payloads decompress only when touched), and
``iter_results(fields=...)`` / ``load_columns`` serve analysis passes
columnar with zero segment I/O.  Writers append a record and flush
*before* indexing it, so a crash leaves at worst an unindexed orphan
tail — never an indexed cell without bytes; each writer instance owns
its segment, so concurrent writers never interleave.
``ResultStore.compact()`` folds live records into fresh sealed
segments and reclaims dead bytes.

**Legacy stores and migration.**  The original layout — one atomic
JSON file per cell, ``<benchmark>__<config>__<scheme>__<digest12>.json``
in the store root — is still read transparently wherever such files
exist (:class:`~repro.harness.store.LegacyResultStore` is the intact
reader/writer); the manifest wins when both hold a key.  ``python -m
repro store migrate`` folds legacy files into segments in place,
preserving each envelope verbatim (key, meta, and ``model_version``
stamp included), and ``python -m repro store stats`` reports cell/
segment counts, bytes on disk, compression ratio, and whether any
legacy cells remain.

**Version invalidation and maintenance.**  The model version stamp
(:data:`~repro.harness.store.MODEL_VERSION`, the package version)
participates in every hash: bumping the version changes every key, so
results computed by an older simulator are never reused — they simply
stop being found.  Eviction is no longer all-or-nothing:
``ResultStore.verify()`` quarantines corrupt records (healthy
neighbours are salvaged, the damaged segment is set aside as
``*.corrupt``) and drops version-stale cells, ``ResultStore.gc(
keep_keys)`` evicts everything outside a caller-supplied key set and
reports the bytes reclaimed, and all of it is scriptable as
``python -m repro store {verify,gc,stats,compact,migrate}``.
Maintenance verbs are offline operations: run them without concurrent
writers.

**Executor protocol.**  Execution is backend-agnostic behind
:class:`~repro.harness.executor.Executor` — ``run(specs, progress,
on_result)`` returning results in spec order.  Three backends share
the seam: the in-process :class:`~repro.harness.executor.SerialExecutor`,
the ``multiprocessing`` :class:`~repro.harness.executor.PoolExecutor`,
and the socket-based
:class:`~repro.harness.cluster.ClusterExecutor`.
``CampaignRunner.run_grid(executor=...)`` / ``run_cell_batch`` pass
any of them straight through; ``on_result`` streams each cell into the
store the moment it completes, so interrupted campaigns keep their
work.  All backends feed one
:class:`~repro.harness.progress.ProgressReporter` (cells done/total,
cells/sec, ETA, per-worker attribution).

**Cluster protocol** (:mod:`repro.harness.cluster`, stdlib-only).  A
TCP coordinator owns the campaign's pending cells; workers *pull*
(work stealing), simulate via the same
:func:`~repro.harness.parallel.simulate_cell` every backend uses, and
report back.  The contract:

- *Framing*: each frame is a 4-byte big-endian payload length plus
  UTF-8 JSON encoding one ``{"kind": ...}`` object; frames above 64
  MiB are rejected.  Strict request/response per connection.
- *Message kinds*: worker sends ``hello`` (names itself, states
  protocol version) and receives ``welcome`` (or ``reject``); then
  loops ``steal`` -> ``cell`` (cell id + full wire spec) / ``wait``
  (queue empty, grid live) / ``done`` (drained or failed);
  ``result``/``error`` report a cell and are ``ack``'d; ``heartbeat``
  keeps liveness fresh mid-simulation; ``bye`` ends cleanly.
- *Wire specs*: the complete ``CoreConfig`` record travels with every
  cell (``spec_to_wire``/``spec_from_wire``), so remote workers
  simulate exactly the configuration that was hashed — never a
  same-named approximation.
- *Telemetry frames*: a ``result`` frame may carry an optional
  ``telemetry`` sibling object (wall-clock seconds, replay counters,
  fast-forward engagement, peak worker RSS; see
  :func:`repro.obs.cell_telemetry`).  It rides *beside* the result —
  never inside it, stored results stay byte-identical across backends
  — and is unversioned: coordinators tolerate its absence, so old and
  new builds interoperate.  The coordinator aggregates frames into
  per-worker / per-scheme rollups
  (:class:`repro.obs.TelemetryAggregate`) surfaced through
  ``coordinator.stats()["telemetry"]`` and the ``serve`` summary.
- *Requeue semantics*: a stolen cell is in-flight against its worker;
  if the worker's socket drops or it stays silent past the heartbeat
  timeout, the cell returns to the *front* of the queue and the
  campaign continues.  Determinism makes the race benign: a
  falsely-dead worker's late result is bit-identical to the requeued
  rerun, the first result per cell wins, duplicates are dropped.
  Reported ``error`` frames are deterministic failures and are *not*
  requeued.

**Failure model** (the crash-safety contract, end to end):

- *Retried*: worker death (socket EOF, heartbeat silence) requeues the
  dead worker's in-flight cells at the front of the queue — a crash
  costs one cell's work, never the campaign.  Workers themselves retry
  lost coordinators with capped exponential backoff + jitter
  (``work --max-reconnects``); an explicit coordinator *rejection*
  (bad protocol version, incompatible schemes) is not retried.
- *Quarantined*: a cell that kills its worker ``max_cell_attempts``
  times (default 3) is poisoned — it is settled as a
  :class:`~repro.harness.store.CellFailure` (kind ``poisoned``) and
  never requeued, so one pathological cell cannot starve the grid.
  Deterministic ``error`` frames and watchdog timeouts
  (``work --cell-timeout``) settle the same way with kinds
  ``deterministic``/``timeout``.  Settled failures are persisted as
  records under ``<store>/failures/`` (``python -m repro store
  failures`` lists them; a later first result wins and clears the
  record).
- *Aborts*: only ``--fail-fast`` restores abort-on-first-error;
  otherwise failed cells yield ``None`` results and the rest of the
  campaign completes (graceful degradation).  Serial and pool
  backends keep their historical raise-on-exception behaviour.
- *Resumes*: the coordinator appends every steal/done/requeue/
  quarantine to an atomic-headed journal
  (``<store>/campaign.journal.jsonl``); ``serve --resume`` replays it
  — the store stays authoritative for completed cells, the journal
  contributes queue order, attempt counts, and settled failures.  A
  seeded :class:`~repro.harness.cluster.FaultPlan` injects crashes,
  frame faults, hangs, and coordinator kills at the protocol seam to
  test all of the above deterministically.

**Program cache.**  Workload generation is memoised content-addressed
(:mod:`repro.workloads.program_cache`: profile content + seed +
generator version), so pool and cluster workers looping over many
cells of one benchmark generate its program once per process.

**CLI.**  All of this is scriptable via ``python -m repro``::

    python -m repro list                         # experiment ids
    python -m repro grid --jobs 8 --progress     # local pool backend
    python -m repro run figure6 table3           # named experiments
    python -m repro run all --jobs 8             # everything, parallel
    python -m repro grid --executor cluster --local-workers 4

    # multi-host campaign: coordinator on one machine ...
    python -m repro serve --port 2017 --scale 1.0
    # ... any number of workers on any machines:
    python -m repro work --connect coordinator-host:2017

    python -m repro serve --resume               # pick up after a crash
    python -m repro store failures               # recorded cell failures
    python -m repro store verify                 # quarantine corrupt/stale
    python -m repro store gc --scale 1.0         # evict off-grid cells
    python -m repro store stats                  # cells/segments/bytes
    python -m repro store compact                # fold + reclaim segments
    python -m repro store migrate                # legacy JSON -> segments
    python -m repro bench --record BENCH_PR3.json
    python -m repro bench --store                # store backend benchmark

``--jobs N`` fans simulation out over N workers, ``--executor``
selects the backend explicitly, ``--progress`` streams live ETA lines,
``--scale`` / ``--seed`` select the workload build, ``--store-dir``
relocates the persistent store, and ``--no-store`` keeps a run purely
in-memory.
"""

from repro.harness.runner import CampaignRunner, shared_runner
from repro.harness.store import (
    MODEL_VERSION,
    CellFailure,
    LegacyResultStore,
    ResultStore,
    simulation_key,
)
from repro.harness.journal import CampaignJournal, journal_path
from repro.harness.executor import (
    Executor,
    PoolExecutor,
    SerialExecutor,
    make_executor,
)
from repro.harness.parallel import run_cells, simulate_cell
from repro.harness.progress import ProgressReporter, make_progress
from repro.harness.experiments import (
    EXPERIMENTS,
    Experiment,
    experiment_grid_needs,
    run_experiment,
    experiment_ids,
)

__all__ = [
    "CampaignRunner",
    "shared_runner",
    "ResultStore",
    "LegacyResultStore",
    "CellFailure",
    "CampaignJournal",
    "journal_path",
    "simulation_key",
    "MODEL_VERSION",
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "make_executor",
    "run_cells",
    "simulate_cell",
    "ProgressReporter",
    "make_progress",
    "EXPERIMENTS",
    "Experiment",
    "experiment_grid_needs",
    "run_experiment",
    "experiment_ids",
]
