"""Campaign engine: content-addressed, disk-backed, parallel.

:class:`~repro.harness.runner.CampaignRunner` executes the
(benchmark x config x scheme) simulation grid and caches results;
:mod:`repro.harness.experiments` turns the cached grid into each
table/figure of the paper, rendered as text and returned as data.

**Cache key.**  Every grid cell is identified by
:func:`~repro.harness.store.simulation_key`, a SHA-256 over the
canonical JSON of the complete simulation identity: the full
``CoreConfig`` parameter record (every field, nested ``MemConfig``
included), the scheme name plus constructor kwargs, the workload
scale/seed, and a model version stamp.  Display names carry no
identity, so same-named-but-different configurations can never alias.

**Store layout.**  With a :class:`~repro.harness.store.ResultStore`
attached, each cell round-trips through one JSON file::

    results/store/<benchmark>__<config>__<scheme>__<digest12>.json
    {"key": ..., "model_version": ..., "meta": {...}, "result": {...}}

Only the digest carries identity; the readable prefix is for humans.
Writes are atomic (temp file + rename).

**Version invalidation.**  The model version stamp
(:data:`~repro.harness.store.MODEL_VERSION`, the package version)
participates in every hash: bumping the version changes every key, so
results computed by an older simulator are never reused — they simply
stop being found.  Stale files can be pruned with ``ResultStore.clear``.

**Parallel execution.**  :meth:`CampaignRunner.run_grid` shards the
*uncached* cells of a grid across a ``multiprocessing`` pool
(:mod:`repro.harness.parallel`) and merges results back into the cache
and store; regenerating all paper artefacts is then bounded by the
slowest shard, not the sum of the grid.  Pools that cannot be created
degrade to a serial fallback.

**CLI.**  All of this is scriptable via ``python -m repro``::

    python -m repro list                       # experiment ids
    python -m repro grid --jobs 8              # populate the full grid
    python -m repro run figure6 table3         # named experiments
    python -m repro run all --jobs 8           # everything, parallel
    python -m repro run table1 --scale 0.1 --no-store

``--jobs N`` fans simulation out over N workers, ``--scale`` /
``--seed`` select the workload build, ``--store-dir`` relocates the
persistent store, and ``--no-store`` keeps a run purely in-memory.
"""

from repro.harness.runner import CampaignRunner, shared_runner
from repro.harness.store import MODEL_VERSION, ResultStore, simulation_key
from repro.harness.parallel import run_cells, simulate_cell
from repro.harness.experiments import (
    EXPERIMENTS,
    run_experiment,
    experiment_ids,
)

__all__ = [
    "CampaignRunner",
    "shared_runner",
    "ResultStore",
    "simulation_key",
    "MODEL_VERSION",
    "run_cells",
    "simulate_cell",
    "EXPERIMENTS",
    "run_experiment",
    "experiment_ids",
]
