"""Experiment harness: one entry per paper table/figure.

:class:`~repro.harness.runner.CampaignRunner` executes the
(benchmark x config x scheme) simulation grid once and caches results;
:mod:`repro.harness.experiments` turns the cached grid into each
table/figure of the paper, rendered as text and returned as data.
"""

from repro.harness.runner import CampaignRunner, shared_runner
from repro.harness.experiments import (
    EXPERIMENTS,
    run_experiment,
    experiment_ids,
)

__all__ = [
    "CampaignRunner",
    "shared_runner",
    "EXPERIMENTS",
    "run_experiment",
    "experiment_ids",
]
