"""The ``Executor`` protocol: one seam for every execution backend.

A *cell spec* is the picklable, JSON-expressible tuple
``(benchmark, config, scheme_name, scheme_kwargs, scale, seed)``
(see :mod:`repro.harness.parallel`).  An executor turns a list of
specs into a list of :class:`~repro.pipeline.core.SimulationResult`
in spec order::

    class Executor:
        def run(self, specs, progress=None, on_result=None,
                on_failure=None): ...

- ``progress`` is an optional
  :class:`~repro.harness.progress.ProgressReporter`; the backend calls
  ``progress.cell_done(worker=...)`` once per completed cell with its
  best worker attribution (``"serial"``, ``"pid-1234"``, a cluster
  worker name).
- ``on_result(index, result)`` is an optional streaming callback fired
  as each cell completes (any thread, any order);
  :meth:`CampaignRunner.run_cell_batch` uses it to persist results
  into the :class:`~repro.harness.store.ResultStore` as they arrive,
  so an interrupted campaign keeps everything already simulated.
- ``on_failure(index, failure)`` is the failure-side twin: a backend
  that degrades gracefully (today, the cluster) reports each settled
  :class:`~repro.harness.store.CellFailure` through it and returns
  ``None`` at that index instead of raising.  Backends without
  graceful degradation (serial, pool) never call it — a cell failure
  there propagates as an exception, exactly as before.

Three implementations exist:

- :class:`SerialExecutor` — in-process loop;
- :class:`PoolExecutor` — ``multiprocessing`` fan-out (falls back to
  serial when a pool cannot be created);
- :class:`~repro.harness.cluster.ClusterExecutor` — the socket-based
  work-stealing cluster backend (multi-host).

:meth:`CampaignRunner.run_grid(executor=...)
<repro.harness.runner.CampaignRunner.run_grid>` is therefore
backend-agnostic: the grid logic (dedup, cache, store) never knows
which backend simulates.
"""

import multiprocessing

from repro.harness.parallel import (
    _simulate_indexed,
    default_jobs,
    simulate_cell,
)


class Executor:
    """Base of the executor protocol (duck-typed; subclassing optional)."""

    kind = "abstract"

    def run(self, specs, progress=None, on_result=None, on_failure=None):
        """Simulate every spec; return results in spec order."""
        raise NotImplementedError


class SerialExecutor(Executor):
    """In-process, one cell at a time."""

    kind = "serial"

    def run(self, specs, progress=None, on_result=None, on_failure=None):
        results = []
        for index, spec in enumerate(specs):
            result = simulate_cell(spec)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
            if progress is not None:
                progress.cell_done(worker="serial")
        return results


class PoolExecutor(Executor):
    """``multiprocessing`` fan-out across ``jobs`` local processes.

    Results stream back unordered (``imap_unordered``) so progress and
    ``on_result`` fire as cells finish, then are reassembled into spec
    order.  Anything that prevents pool *creation* (restricted
    sandboxes, missing ``/dev/shm``) degrades to the serial executor;
    once workers exist, an exception inside ``simulate_cell``
    propagates to the caller exactly as a serial run would.
    """

    kind = "pool"

    def __init__(self, jobs=None):
        self.jobs = jobs

    def run(self, specs, progress=None, on_result=None, on_failure=None):
        specs = list(specs)
        if not specs:
            return []
        jobs = default_jobs() if self.jobs is None else int(self.jobs)
        jobs = min(jobs, len(specs))
        if jobs <= 1:
            return SerialExecutor().run(specs, progress=progress,
                                        on_result=on_result)
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            ctx = multiprocessing.get_context()
        try:
            pool = ctx.Pool(processes=jobs)
        except (OSError, PermissionError, RuntimeError):
            return SerialExecutor().run(specs, progress=progress,
                                        on_result=on_result)
        results = [None] * len(specs)
        with pool:
            completions = pool.imap_unordered(
                _simulate_indexed, list(enumerate(specs)), chunksize=1
            )
            for index, pid, result in completions:
                results[index] = result
                if on_result is not None:
                    on_result(index, result)
                if progress is not None:
                    progress.cell_done(worker="pid-%d" % pid)
        return results


def make_executor(kind, jobs=None, **kwargs):
    """Build an executor by name: ``serial``, ``pool``, or ``cluster``.

    ``jobs`` parameterises the pool; ``kwargs`` pass through to the
    cluster backend (``host``, ``port``, ``local_workers``, ...).  The
    cluster module is imported lazily so purely local runs never touch
    the socket machinery.
    """
    if kind == "serial":
        return SerialExecutor()
    if kind == "pool":
        return PoolExecutor(jobs=jobs)
    if kind == "cluster":
        from repro.harness.cluster import ClusterExecutor

        return ClusterExecutor(**kwargs)
    raise ValueError(
        "unknown executor %r (choose from serial, pool, cluster)" % (kind,)
    )
