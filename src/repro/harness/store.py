"""Persistent, content-addressed store for simulation results.

Every cell of the campaign grid is identified by
:func:`simulation_key`: a SHA-256 over the canonical JSON of the
*complete* simulation identity —

- the full :class:`~repro.pipeline.config.CoreConfig` parameter record
  (every field, including the nested ``MemConfig``), not just its
  display name;
- the scheme name plus any scheme constructor kwargs;
- the workload ``scale`` and ``seed``;
- a model version stamp (:data:`MODEL_VERSION`).

Keying on content rather than names fixes the classic collision: two
distinct configurations that happen to share a name (two ad-hoc
``CoreConfig(...)`` both called ``"custom"``) can never alias each
other's results.  Bumping the package version invalidates every stored
cell at once, because the stamp participates in the hash.

On disk the store is **segment-backed** (format ``segments-v1``, see
:mod:`repro.harness.segments` for the byte-level contract)::

    results/store/
        manifest.db            SQLite manifest + full-key index
        segments/seg-NNNNNN.seg   append-only record segments
        failures/*.json        CellFailure records (unchanged format)

Results append as compressed records into segment files; the manifest
maps every full 64-hex key to its record and carries the
benchmark/config/scheme columns plus per-cell statistics, so
``keys()``/``__len__`` are O(index) with zero file opens, bulk loads
return lazily-decoded results, and analysis passes read statistics
columnar — without decompressing a single snapshot.  The previous
JSON-file-per-cell layout (one ``<prefix>__<digest12>.json`` per cell
in the store root) is still read transparently wherever such files
exist — :class:`LegacyResultStore` below is that reader/writer, kept
whole for mixed stores, benchmarks, and ``python -m repro store
migrate``.

Failures are first-class: a cell the campaign could not complete —
quarantined after repeatedly killing workers, a deterministic
exception, a watchdog timeout — persists as a :class:`CellFailure`
record under ``failures/`` beside the results, written with the same
atomic discipline as before.  A later successful result for the cell
clears its failure record (first-result-wins), and ``python -m repro
store failures`` lists whatever remains.
"""

import hashlib
import io
import json
import os
import pathlib
import pickle
import re
import shutil
import tempfile
import threading

from repro import __version__
from repro.harness.segments import (
    CorruptRecord,
    DEFAULT_SEGMENT_BYTES,
    FORMAT_VERSION,
    MANIFEST_NAME,
    Manifest,
    SEGMENT_DIR,
    SEGMENT_SUFFIX,
    decode_envelope,
    encode_envelope,
    pack_record,
    unpack_record,
)
from repro.pipeline.core import SimulationResult
from repro.pipeline.stats import SimStats

#: Stamp hashed into every key; results computed by a different model
#: version are invisible (their keys differ), never silently reused.
MODEL_VERSION = __version__

#: Default on-disk location, overridable via the environment.
DEFAULT_STORE_DIR = os.environ.get("REPRO_STORE_DIR", "results/store")

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")

#: Recognised failure classes (see the failure-model contract in
#: :mod:`repro.harness`): ``poisoned`` — the cell killed workers until
#: it was quarantined; ``deterministic`` — the simulation raised;
#: ``timeout`` — the worker's watchdog hit its wall-clock deadline.
FAILURE_KINDS = ("poisoned", "deterministic", "timeout")

#: Result fields that require decoding the stored snapshot payload;
#: ``iter_results(fields=...)`` stays columnar only while the caller
#: asks for none of these.
SNAPSHOT_FIELDS = frozenset(("regs", "memory", "extra"))


class CellFailure:
    """A structured record of one cell the campaign could not complete."""

    __slots__ = ("key", "benchmark", "config_name", "scheme_name", "kind",
                 "attempts", "worker", "error", "traceback")

    def __init__(self, key, benchmark, config_name, scheme_name, kind,
                 attempts=1, worker=None, error="", traceback=None):
        if kind not in FAILURE_KINDS:
            raise ValueError("unknown failure kind %r (choose from %s)"
                             % (kind, ", ".join(FAILURE_KINDS)))
        self.key = key
        self.benchmark = benchmark
        self.config_name = config_name
        self.scheme_name = scheme_name
        self.kind = kind
        self.attempts = int(attempts)
        self.worker = worker
        self.error = str(error)
        self.traceback = traceback

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**{slot: data.get(slot) for slot in cls.__slots__
                      if slot in data})

    def __repr__(self):
        return ("CellFailure(%s/%s/%s, kind=%s, attempts=%d, error=%r)"
                % (self.benchmark, self.config_name, self.scheme_name,
                   self.kind, self.attempts, self.error))


def _scheme_wire_version(scheme_name):
    """The scheme's ``wire_version``, or ``None`` when unresolvable.

    Tolerant by design: keys must stay computable for scheme names the
    local registry does not know (e.g. browsing a store written by a
    newer build), in which case the stamp simply does not participate —
    exactly the pre-versioned behaviour.
    """
    try:
        from repro.core.registry import get_spec

        return get_spec(scheme_name).wire_version
    except Exception:
        return None


def simulation_key(benchmark, config, scheme_name, scheme_kwargs=None,
                   scale=1.0, seed=2017, model_version=MODEL_VERSION):
    """Content hash identifying one grid cell; returns a hex digest.

    A scheme's :attr:`~repro.core.registry.SchemeSpec.wire_version`
    participates in the hash once it leaves its initial value, so
    results simulated under an older behavioural revision of a scheme
    self-evict (their keys no longer match) instead of being silently
    reused.  Version 1 — every scheme today — is deliberately *not*
    hashed, keeping all existing store contents and golden-fixture keys
    byte-identical.
    """
    payload = {
        "model_version": model_version,
        "benchmark": benchmark,
        # fingerprint() is the one canonical config hash; reusing it
        # here keeps cache keys and any other fingerprint consumer in
        # lock-step.
        "config": config.fingerprint(),
        "scheme": scheme_name.lower(),
        "scheme_kwargs": dict(sorted((scheme_kwargs or {}).items())),
        "scale": scale,
        "seed": seed,
    }
    wire = _scheme_wire_version(scheme_name)
    if wire is not None and wire != 1:
        payload["scheme_wire"] = wire
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cell_filename(benchmark, config_name, scheme_name, key):
    """Browsable filename for one cell: readable prefix + digest."""
    prefix = "__".join(
        _SAFE.sub("-", part) for part in (benchmark, config_name, scheme_name)
    )
    return "%s__%s.json" % (prefix, key[:12])


class _StatsUnpickler(pickle.Unpickler):
    """Unpickler restricted to the one class manifest blobs may hold."""

    def find_class(self, module, name):
        if module == "repro.pipeline.stats" and name == "SimStats":
            return SimStats
        raise pickle.UnpicklingError(
            "manifest stats blob references %s.%s" % (module, name))


def _pickle_stats(stats):
    try:
        return pickle.dumps(stats, protocol=4)
    except Exception:
        return None


def _unpickle_stats(blob):
    """Decode a manifest stats blob, or ``None`` when it cannot be
    trusted (missing, truncated, foreign class) — callers fall back to
    the authoritative segment payload."""
    if not blob:
        return None
    try:
        obj = _StatsUnpickler(io.BytesIO(bytes(blob))).load()
    except Exception:
        return None
    return obj if isinstance(obj, SimStats) else None


class LegacyResultStore:
    """The original JSON-file-per-cell store (read/write).

    Kept intact behind :class:`ResultStore`: mixed stores read legacy
    cells transparently, ``store migrate`` converts them, and the
    store benchmark uses this class as its baseline backend.  Cell
    files live directly in the store root as
    ``<benchmark>__<config>__<scheme>__<digest12>.json``.
    """

    def __init__(self, root=None):
        self.root = pathlib.Path(root or DEFAULT_STORE_DIR)
        self._paths = None  # key-prefix -> path index, built lazily
        self._indexed_mtime = None  # directory mtime when last indexed

    # -- indexing ---------------------------------------------------------

    def _dir_mtime(self):
        try:
            return self.root.stat().st_mtime_ns
        except OSError:
            return None

    def _index(self, refresh=False):
        if self._paths is None or refresh:
            paths = {}
            self._indexed_mtime = self._dir_mtime()
            if self.root.is_dir():
                for path in self.root.glob("*.json"):
                    key = path.stem.rsplit("__", 1)[-1]
                    paths[key] = path
            self._paths = paths
        return self._paths

    def _lookup(self, key):
        path = self._index().get(key[:12])
        if path is None and self._dir_mtime() != self._indexed_mtime:
            # A writer (possibly another process) added or removed
            # cells since the index was built; the mtime gate keeps
            # repeated misses (a cold batch run) at one cheap stat
            # each instead of a full directory re-glob per cell.
            path = self._index(refresh=True).get(key[:12])
        return path

    def __contains__(self, key):
        return self._lookup(key) is not None

    def __len__(self):
        return len(self._index(refresh=True))

    def cells(self):
        """Fresh ``{digest12: path}`` index of every legacy cell file."""
        return dict(self._index(refresh=True))

    def keys(self):
        """Full keys of every stored cell (opens every file)."""
        keys = []
        for path in self._index(refresh=True).values():
            try:
                with open(path) as handle:
                    keys.append(json.load(handle)["key"])
            except (OSError, ValueError, KeyError):
                continue
        return keys

    def iter_cells(self):
        """Yield ``(key, envelope)`` for every readable cell file."""
        for path in sorted(self._index(refresh=True).values()):
            try:
                with open(path) as handle:
                    data = json.load(handle)
                yield data["key"], data
            except (OSError, ValueError, KeyError, TypeError):
                continue

    def iter_results(self):
        for key, data in self.iter_cells():
            try:
                yield SimulationResult.from_dict(data["result"])
            except (ValueError, KeyError, TypeError):
                continue

    def load_many(self, keys):
        """Bulk read: ``{key: SimulationResult}`` for every hit."""
        keys = list(keys)
        index = self._index(refresh=True)
        results = {}
        for key in keys:
            if key in results:
                continue
            path = index.get(key[:12])
            if path is None:
                continue
            try:
                with open(path) as handle:
                    data = json.load(handle)
            except (OSError, ValueError):
                continue
            if data.get("key") != key:
                continue  # digest-prefix collision or stale file
            try:
                results[key] = SimulationResult.from_dict(data["result"])
            except (ValueError, KeyError, TypeError):
                continue
        return results

    def load_envelope(self, key):
        """The raw stored envelope for ``key``, or ``None``."""
        path = self._lookup(key)
        if path is None:
            return None
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if data.get("key") != key:
            return None
        return data

    def load(self, key):
        data = self.load_envelope(key)
        if data is None:
            return None
        try:
            return SimulationResult.from_dict(data["result"])
        except (ValueError, KeyError, TypeError):
            return None

    def save(self, key, result, meta=None):
        """Persist one result atomically; returns its path."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "model_version": MODEL_VERSION,
            "meta": dict(meta or {}),
            "result": result.to_dict(),
        }
        name = cell_filename(
            result.program_name, result.config_name, result.scheme_name, key
        )
        path = self.root / name
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self._paths is not None:
            self._paths[key[:12]] = path
            # The write bumped the directory mtime; the index already
            # reflects it, so re-arm the mtime gate instead of letting
            # every subsequent miss trigger a full re-glob.
            self._indexed_mtime = self._dir_mtime()
        return path

    def discard(self, key):
        """Delete the cell file for ``key`` (exact match); True if any."""
        path = self._lookup(key)
        if path is None:
            return False
        try:
            with open(path) as handle:
                if json.load(handle).get("key") != key:
                    return False
            path.unlink()
        except (OSError, ValueError):
            return False
        self._index(refresh=True)
        return True

    def clear(self):
        for path in self._index(refresh=True).values():
            try:
                path.unlink()
            except OSError:
                pass
        self._paths = {}

    def verify(self):
        """Legacy-cell integrity sweep; same verdicts as ever:
        corrupt files are renamed aside ``.corrupt``, stale model
        versions deleted.  Returns the 4-key summary."""
        summary = {"scanned": 0, "kept": 0, "corrupt": 0, "stale": 0}
        for path in list(self._index(refresh=True).values()):
            summary["scanned"] += 1
            verdict = self._verify_one(path)
            if verdict == "kept":
                summary["kept"] += 1
                continue
            summary[verdict] += 1
            try:
                if verdict == "corrupt":
                    os.replace(path, str(path) + ".corrupt")
                else:
                    path.unlink()
            except OSError:
                pass
        self._index(refresh=True)
        return summary

    def _verify_one(self, path):
        try:
            with open(path) as handle:
                data = json.load(handle)
            key = data["key"]
            if not isinstance(key, str) or len(key) != 64:
                return "corrupt"
            SimulationResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return "corrupt"
        if data.get("model_version") != MODEL_VERSION:
            return "stale"
        return "kept"

    def gc(self, keep_keys):
        """Evict legacy cells whose key is not in ``keep_keys``."""
        keep = set(keep_keys)
        summary = {"scanned": 0, "kept": 0, "dropped": 0,
                   "bytes_reclaimed": 0}
        for path in list(self._index(refresh=True).values()):
            summary["scanned"] += 1
            try:
                size = path.stat().st_size
                with open(path) as handle:
                    key = json.load(handle).get("key")
            except (OSError, ValueError):
                key, size = None, 0
            if key in keep:
                summary["kept"] += 1
                continue
            summary["dropped"] += 1
            try:
                path.unlink()
                summary["bytes_reclaimed"] += size
            except OSError:
                pass
        self._index(refresh=True)
        return summary


class _StoredResult(SimulationResult):
    """A stored result whose heavy fields decode on first access.

    Identity (names, halted, cycles) and statistics come straight from
    the manifest row; the architectural snapshot (``regs``/``memory``/
    ``extra``) — the bulk of every payload — is only read and
    decompressed from its segment when actually touched.  This is what
    makes ``load_many`` over 10^4 cells an index scan instead of 10^4
    decompress+parse round trips.
    """

    @classmethod
    def _from_row(cls, store, row):
        self = object.__new__(cls)
        d = self.__dict__
        d["program_name"] = row["benchmark"]
        d["scheme_name"] = row["scheme"]
        d["config_name"] = row["config"]
        d["halted"] = bool(row["halted"])
        d["cycles"] = row["result_cycles"] or 0
        d["_key"] = row["key"]
        d["_store"] = store
        d["_stats_blob"] = row["stats"]
        d["_segment_name"] = row["segment_name"]
        d["_offset"] = row["offset"]
        d["_length"] = row["length"]
        return self

    def _materialise(self):
        env = self._store._read_cell(
            self.__dict__["_key"], self.__dict__["_segment_name"],
            self.__dict__["_offset"], self.__dict__["_length"])
        data = env["result"]
        d = self.__dict__
        d.setdefault("_stats", SimStats.from_dict(data["stats"]))
        d["_regs"] = list(data["regs"])
        d["_memory"] = {int(addr): value
                        for addr, value in data["memory"].items()}
        d["_extra"] = dict(data.get("extra", {}))

    @property
    def stats(self):
        d = self.__dict__
        if "_stats" not in d:
            cached = _unpickle_stats(d.get("_stats_blob"))
            if cached is not None:
                d["_stats"] = cached
            else:
                self._materialise()
        return d["_stats"]

    @stats.setter
    def stats(self, value):
        self.__dict__["_stats"] = value

    @property
    def regs(self):
        if "_regs" not in self.__dict__:
            self._materialise()
        return self.__dict__["_regs"]

    @regs.setter
    def regs(self, value):
        self.__dict__["_regs"] = value

    @property
    def memory(self):
        if "_memory" not in self.__dict__:
            self._materialise()
        return self.__dict__["_memory"]

    @memory.setter
    def memory(self, value):
        self.__dict__["_memory"] = value

    @property
    def extra(self):
        if "_extra" not in self.__dict__:
            self._materialise()
        return self.__dict__["_extra"]

    @extra.setter
    def extra(self, value):
        self.__dict__["_extra"] = value


class ResultView:
    """Columnar row from ``iter_results(fields=...)``.

    Quacks like a :class:`SimulationResult` for every statistics-level
    consumer (``key``, identity names, ``halted``, ``cycles``,
    ``stats``, ``ipc``) without ever opening a segment file — stats
    decode from the manifest blob, falling back to the authoritative
    payload only if the blob is unusable.
    """

    __slots__ = ("key", "program_name", "config_name", "scheme_name",
                 "halted", "cycles", "_store", "_blob", "_stats",
                 "_segment_name", "_offset", "_length")

    def __init__(self, store, row):
        self.key = row["key"]
        self.program_name = row["benchmark"]
        self.config_name = row["config"]
        self.scheme_name = row["scheme"]
        self.halted = bool(row["halted"])
        self.cycles = row["result_cycles"] or 0
        self._store = store
        self._blob = row["stats"]
        self._stats = None
        self._segment_name = row["segment_name"]
        self._offset = row["offset"]
        self._length = row["length"]

    @property
    def stats(self):
        if self._stats is None:
            stats = _unpickle_stats(self._blob)
            if stats is None:
                env = self._store._read_cell(
                    self.key, self._segment_name, self._offset, self._length)
                stats = SimStats.from_dict(env["result"]["stats"])
            self._stats = stats
            self._blob = None
        return self._stats

    @property
    def ipc(self):
        return self.stats.ipc


#: ``load_columns`` fields answered straight from manifest columns —
#: no blob, no segment read.
_SQL_COLUMNS = {
    "benchmark": lambda row: row["benchmark"],
    "config": lambda row: row["config"],
    "scheme": lambda row: row["scheme"],
    "model_version": lambda row: row["model_version"],
    "halted": lambda row: bool(row["halted"]),
    "cycles": lambda row: row["cycles"],
    "committed_instructions": lambda row: row["committed"],
    "ipc": lambda row: ((row["committed"] or 0) / row["cycles"]
                        if row["cycles"] else 0.0),
}


class ResultStore:
    """Segment-backed result store rooted at one directory.

    Public surface is unchanged from the JSON-per-cell era —
    ``save``/``load``/``load_many``/``iter_results``/``keys``/
    ``verify``/``gc``/``clear``, the failure-record API, and
    ``in``/``len`` — plus the columnar additions (``iter_results``
    with ``fields=``, :meth:`load_columns`), the maintenance verbs
    (:meth:`compact`, :meth:`migrate`, :meth:`stats`), and
    :meth:`load_envelope` for format-level tooling.

    Concurrency: any number of reader instances (threads or processes)
    may overlap any number of writers — readers always consult the
    manifest, and every writer instance appends to its *own* segment.
    The maintenance verbs (``verify``/``gc``/``compact``/``migrate``)
    rewrite shared state and are offline operations: run them without
    concurrent writers, exactly like their legacy counterparts.
    """

    def __init__(self, root=None, segment_bytes=None):
        self.root = pathlib.Path(root or DEFAULT_STORE_DIR)
        self.segment_bytes = segment_bytes or DEFAULT_SEGMENT_BYTES
        self._legacy = LegacyResultStore(self.root)
        self._manifest = None
        self._active = None  # this instance's open segment, grown lazily
        self._lock = threading.RLock()

    # -- manifest / segment plumbing --------------------------------------

    @property
    def manifest_path(self):
        return self.root / MANIFEST_NAME

    @property
    def segments_dir(self):
        return self.root / SEGMENT_DIR

    def _manifest_if_exists(self):
        """The manifest, or ``None`` — never creates files on a read."""
        if self._manifest is None and self.manifest_path.exists():
            self._manifest = Manifest(self.manifest_path)
        return self._manifest

    def _manifest_rw(self):
        if self._manifest is None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._manifest = Manifest(self.manifest_path)
        return self._manifest

    def _legacy_cells(self):
        """Current legacy-cell index (mtime-gated; cheap when empty)."""
        index = self._legacy._index()
        if self._legacy._dir_mtime() != self._legacy._indexed_mtime:
            index = self._legacy._index(refresh=True)
        return index

    def _active_segment(self, need):
        """This instance's open segment, rolled when ``need`` more
        bytes would push it past the seal threshold."""
        active = self._active
        if (active is not None and active["offset"] > 0
                and active["offset"] + need > self.segment_bytes):
            self._seal_active()
            active = None
        if active is None:
            manifest = self._manifest_rw()
            segment_id, name = manifest.add_segment()
            self.segments_dir.mkdir(parents=True, exist_ok=True)
            path = self.segments_dir / name
            handle = open(path, "ab")
            active = self._active = {
                "id": segment_id, "path": path,
                "handle": handle, "offset": handle.tell(),
            }
        return active

    def _seal_active(self):
        active, self._active = self._active, None
        if active is None:
            return
        try:
            active["handle"].close()
        except OSError:
            pass
        try:
            self._manifest_rw().seal_segment(active["id"])
        except Exception:
            pass

    def close(self):
        """Release the open segment handle and manifest connection."""
        with self._lock:
            self._seal_active()
            if self._manifest is not None:
                self._manifest.close()
                self._manifest = None

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def _append_envelope(self, envelope, stats=None):
        """Append one envelope as a segment record + manifest row.

        The record is flushed *before* the row commits, so a crash
        between the two leaves an unindexed orphan (reclaimed by
        :meth:`compact`), never an indexed cell without bytes.  The
        envelope's own ``model_version`` is recorded — migration and
        salvage preserve foreign stamps for :meth:`verify` to judge.
        """
        payload, raw_length = encode_envelope(envelope)
        record = pack_record(payload)
        data = envelope.get("result") or {}
        if stats is None:
            try:
                stats = SimStats.from_dict(data["stats"])
            except (ValueError, KeyError, TypeError):
                stats = None
        with self._lock:
            manifest = self._manifest_rw()
            active = self._active_segment(len(record))
            offset = active["offset"]
            active["handle"].write(record)
            active["handle"].flush()
            active["offset"] = offset + len(record)
            manifest.upsert_cell({
                "key": envelope["key"],
                "segment": active["id"],
                "offset": offset,
                "length": len(record),
                "raw_length": raw_length,
                "benchmark": data.get("program_name"),
                "config": data.get("config_name"),
                "scheme": data.get("scheme_name"),
                "model_version": envelope.get("model_version"),
                "halted": 1 if data.get("halted") else 0,
                "result_cycles": data.get("cycles", 0),
                "cycles": getattr(stats, "cycles", None),
                "committed": getattr(stats, "committed_instructions", None),
                "stats": _pickle_stats(stats) if stats is not None else None,
            })
            return active["path"]

    def _read_at(self, segment_name, offset, length):
        path = self.segments_dir / segment_name
        with open(path, "rb") as handle:
            handle.seek(offset)
            record = handle.read(length)
        return decode_envelope(unpack_record(record))

    def _read_cell(self, key, segment_name, offset, length):
        """Read + validate one cell's envelope from its segment.

        Retries through a fresh manifest lookup when the locator went
        stale (the record was relocated by a concurrent ``compact``),
        so lazily-decoded results survive store maintenance.
        """
        try:
            env = self._read_at(segment_name, offset, length)
            if env.get("key") == key:
                return env
        except (OSError, CorruptRecord, ValueError):
            pass
        manifest = self._manifest_if_exists()
        row = manifest.cell(key) if manifest is not None else None
        if row is None:
            raise KeyError("cell %s vanished from the store index" % key)
        env = self._read_at(row["segment_name"], row["offset"], row["length"])
        if env.get("key") != key:
            raise CorruptRecord(
                "segment record for %s holds key %r — run"
                " 'python -m repro store verify'" % (key, env.get("key")))
        return env

    # -- membership / keys ------------------------------------------------

    def __contains__(self, key):
        manifest = self._manifest_if_exists()
        if manifest is not None and manifest.has_key(key):
            return True
        return bool(self._legacy_cells()) and key in self._legacy

    def __len__(self):
        manifest = self._manifest_if_exists()
        count = manifest.count() if manifest is not None else 0
        if self._legacy_cells():
            known = set(manifest.keys()) if manifest is not None else set()
            count += sum(1 for key in self._legacy.keys()
                         if key not in known)
        return count

    def keys(self):
        """Full keys of every stored cell — straight off the index."""
        manifest = self._manifest_if_exists()
        keys = manifest.keys() if manifest is not None else []
        if self._legacy_cells():
            known = set(keys)
            keys.extend(key for key in self._legacy.keys()
                        if key not in known)
        return keys

    # -- bulk reads -------------------------------------------------------

    def iter_results(self, fields=None):
        """Yield every stored result (analysis bulk read).

        With ``fields=None`` every yield is a fully-decoded
        :class:`SimulationResult`, exactly as before.  Passing the
        fields the caller will actually touch (e.g.
        ``fields=("stats",)``) switches to the columnar path:
        :class:`ResultView` rows served from the manifest alone, no
        segment I/O or payload decompression.  Any requested field in
        :data:`SNAPSHOT_FIELDS` forces the full path.  Corrupt or
        foreign cells are skipped silently — use :meth:`verify` to
        surface them.
        """
        columnar = (fields is not None
                    and not (set(fields) & SNAPSHOT_FIELDS))
        manifest = self._manifest_if_exists()
        if manifest is not None:
            if columnar:
                for row in manifest.iter_cells(with_stats=True):
                    yield ResultView(self, row)
            else:
                for row, env in self._iter_segment_envelopes():
                    try:
                        yield SimulationResult.from_dict(env["result"])
                    except (ValueError, KeyError, TypeError):
                        continue
        if self._legacy_cells():
            known = set(manifest.keys()) if manifest is not None else set()
            for key, data in self._legacy.iter_cells():
                if key in known:
                    continue  # superseded by a segment record
                try:
                    yield SimulationResult.from_dict(data["result"])
                except (ValueError, KeyError, TypeError):
                    continue

    def _iter_segment_envelopes(self, with_stats=False):
        """Yield ``(row, envelope)`` streaming each segment once, in
        record order; undecodable records are skipped."""
        current_name, handle = None, None
        try:
            for row in self._manifest_rw().iter_cells(with_stats=with_stats):
                if row["segment_name"] != current_name:
                    if handle is not None:
                        handle.close()
                    current_name, handle = row["segment_name"], None
                    try:
                        handle = open(self.segments_dir / current_name, "rb")
                    except OSError:
                        continue
                if handle is None:
                    continue
                try:
                    handle.seek(row["offset"])
                    record = handle.read(row["length"])
                    yield row, decode_envelope(unpack_record(record))
                except (OSError, CorruptRecord, ValueError):
                    continue
        finally:
            if handle is not None:
                handle.close()

    def load_many(self, keys):
        """Bulk read: ``{key: SimulationResult}`` for every hit.

        Segment-backed hits come back as lazily-decoded results: the
        identity and statistics are served from the manifest, and the
        architectural snapshot decompresses from its segment only when
        touched.  Missing, corrupt, or key-mismatched cells are simply
        absent from the returned dict (callers treat absence as "needs
        simulating").
        """
        keys = list(dict.fromkeys(keys))
        results = {}
        manifest = self._manifest_if_exists()
        if manifest is not None:
            for key, row in manifest.cells_for(keys).items():
                results[key] = _StoredResult._from_row(self, row)
        missing = [key for key in keys if key not in results]
        if missing and self._legacy_cells():
            results.update(self._legacy.load_many(missing))
        return results

    def load_columns(self, keys, fields):
        """Columnar point reads: ``{key: {field: value}}``.

        Identity fields and the hot counters (``benchmark``,
        ``config``, ``scheme``, ``model_version``, ``halted``,
        ``cycles``, ``committed_instructions``, ``ipc``) are answered
        straight from manifest columns.  Any other field selects from
        the flattened :meth:`SimStats.as_dict` namespace (e.g.
        ``stall_iq_full``, ``extra.cycacct.width``) and may use
        ``fnmatch`` wildcards (``extra.cycacct.*``); those decode the
        per-cell stats blob — still no segment I/O.  Keys without a
        stored cell are absent from the result.
        """
        import fnmatch

        fields = list(fields)
        stat_fields = [f for f in fields if f not in _SQL_COLUMNS]
        wild = [f for f in stat_fields if any(c in f for c in "*?[")]
        out = {}

        def from_stats(stats_dict, record):
            for field in stat_fields:
                if field in wild:
                    for name in fnmatch.filter(stats_dict, field):
                        record[name] = stats_dict[name]
                elif field in stats_dict:
                    record[field] = stats_dict[field]

        manifest = self._manifest_if_exists()
        remaining = list(dict.fromkeys(keys))
        if manifest is not None:
            for key, row in manifest.cells_for(remaining).items():
                record = {}
                for field in fields:
                    if field in _SQL_COLUMNS:
                        record[field] = _SQL_COLUMNS[field](row)
                if stat_fields:
                    stats = _unpickle_stats(row["stats"])
                    if stats is None:
                        try:
                            env = self._read_cell(key, row["segment_name"],
                                                  row["offset"], row["length"])
                            stats = SimStats.from_dict(env["result"]["stats"])
                        except (KeyError, CorruptRecord, OSError, ValueError,
                                TypeError):
                            stats = None
                    if stats is not None:
                        from_stats(stats.as_dict(), record)
                out[key] = record
            remaining = [key for key in remaining if key not in out]
        if remaining and self._legacy_cells():
            for key, result in self._legacy.load_many(remaining).items():
                record = {}
                stats_dict = result.stats.as_dict()
                for field in fields:
                    if field == "benchmark":
                        record[field] = result.program_name
                    elif field == "config":
                        record[field] = result.config_name
                    elif field == "scheme":
                        record[field] = result.scheme_name
                    elif field == "model_version":
                        record[field] = MODEL_VERSION
                    elif field == "halted":
                        record[field] = result.halted
                if stat_fields or "cycles" in fields \
                        or "committed_instructions" in fields \
                        or "ipc" in fields:
                    for field in ("cycles", "committed_instructions", "ipc"):
                        if field in fields:
                            record[field] = stats_dict[field]
                    from_stats(stats_dict, record)
                out[key] = record
        return out

    # -- round-tripping ---------------------------------------------------

    def load(self, key):
        """Return the stored :class:`SimulationResult`, or ``None``."""
        manifest = self._manifest_if_exists()
        if manifest is not None:
            row = manifest.cell(key)
            if row is not None:
                try:
                    env = self._read_at(row["segment_name"], row["offset"],
                                        row["length"])
                except (OSError, CorruptRecord, ValueError):
                    return None
                if env.get("key") != key:
                    return None
                try:
                    return SimulationResult.from_dict(env["result"])
                except (ValueError, KeyError, TypeError):
                    return None
        if self._legacy_cells():
            return self._legacy.load(key)
        return None

    def load_envelope(self, key):
        """The raw stored envelope (``{"key", "model_version", "meta",
        "result"}``) for ``key``, or ``None`` — format-level access for
        tooling, chaos equivalence checks, and migration."""
        manifest = self._manifest_if_exists()
        if manifest is not None:
            row = manifest.cell(key)
            if row is not None:
                try:
                    env = self._read_at(row["segment_name"], row["offset"],
                                        row["length"])
                except (OSError, CorruptRecord, ValueError):
                    return None
                return env if env.get("key") == key else None
        if self._legacy_cells():
            return self._legacy.load_envelope(key)
        return None

    def save(self, key, result, meta=None):
        """Persist one result; returns the segment path it landed in.

        Appends a record to this instance's segment and indexes it in
        the manifest.  A lingering legacy JSON cell for the same key is
        deleted (the manifest supersedes it), so mixed stores converge
        toward pure segments as cells are rewritten.
        """
        envelope = {
            "key": key,
            "model_version": MODEL_VERSION,
            "meta": dict(meta or {}),
            "result": result.to_dict(),
        }
        path = self._append_envelope(envelope, stats=result.stats)
        if self._legacy_cells():
            self._legacy.discard(key)
        return path

    def clear(self):
        """Delete every stored cell (keeps the directory)."""
        with self._lock:
            active, self._active = self._active, None
            if active is not None:
                try:
                    active["handle"].close()
                except OSError:
                    pass
            if self._manifest is not None:
                self._manifest.close()
                self._manifest = None
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.unlink(str(self.manifest_path) + suffix)
                except OSError:
                    pass
            shutil.rmtree(self.segments_dir, ignore_errors=True)
        self._legacy.clear()

    # -- failure records --------------------------------------------------

    @property
    def failures_dir(self):
        return self.root / "failures"

    def _failure_path(self, key):
        for path in self.failures_dir.glob("*__%s.json" % key[:12]):
            return path
        return None

    def save_failure(self, failure):
        """Persist one :class:`CellFailure` atomically; returns its path.

        Failures live under ``failures/`` with the same browsable
        prefix + digest naming as legacy results.  Saving is idempotent
        per key (atomic replace), so a quarantine re-recorded on resume
        or retried campaigns never duplicate.
        """
        directory = self.failures_dir
        directory.mkdir(parents=True, exist_ok=True)
        name = cell_filename(failure.benchmark, failure.config_name or "-",
                             failure.scheme_name, failure.key)
        path = directory / name
        fd, tmp = tempfile.mkstemp(dir=str(directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(failure.to_dict(), handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def load_failure(self, key):
        """The persisted :class:`CellFailure` for ``key``, or ``None``."""
        path = self._failure_path(key)
        if path is None:
            return None
        try:
            with open(path) as handle:
                data = json.load(handle)
            if data.get("key") != key:
                return None  # digest-prefix collision
            return CellFailure.from_dict(data)
        except (OSError, ValueError, TypeError):
            return None

    def failures(self):
        """Every persisted failure record, sorted by benchmark/config."""
        records = []
        for path in sorted(self.failures_dir.glob("*.json")):
            try:
                with open(path) as handle:
                    records.append(CellFailure.from_dict(json.load(handle)))
            except (OSError, ValueError, TypeError):
                continue
        return records

    def clear_failure(self, key):
        """Drop the failure record for ``key`` (first-result-wins).

        Called whenever a result for the cell lands — a late result
        from a presumed-dead worker, or a retry that succeeded — so a
        cell is never simultaneously a result and a failure.  Returns
        True when a record was removed.
        """
        path = self._failure_path(key)
        if path is None:
            return False
        try:
            path.unlink()
        except OSError:
            return False
        return True

    # -- eviction / integrity ---------------------------------------------

    def verify(self):
        """Integrity sweep: quarantine corrupt cells, drop stale ones.

        Segment cells: every record is re-read and validated (frame +
        CRC + JSON + key match + :meth:`SimulationResult.from_dict`
        round-trip).  A segment holding any corrupt record has its
        healthy records salvaged into a fresh segment, then the whole
        file is set aside with a ``.corrupt`` suffix — out of the
        index, preserved for post-mortem.  Cells whose
        ``model_version`` stamp differs from the running
        :data:`MODEL_VERSION` are *stale*: unreachable anyway (their
        keys can never be recomputed), their index rows are dropped and
        their bytes reclaimed at the next :meth:`compact`.  Legacy JSON
        cells keep their original verdict handling.  Offline operation.
        Returns ``{"scanned", "kept", "corrupt", "stale"}``.
        """
        summary = {"scanned": 0, "kept": 0, "corrupt": 0, "stale": 0}
        with self._lock:
            manifest = self._manifest_if_exists()
            if manifest is not None:
                self._verify_segments(manifest, summary)
            if self._legacy_cells():
                for verdict, count in self._legacy.verify().items():
                    summary[verdict] += count
        return summary

    def _verify_segments(self, manifest, summary):
        verdicts = {}  # segment_id -> [(key, verdict)]
        names = {}
        current_name, handle = None, None
        try:
            for row in manifest.iter_cells(with_stats=False):
                if row["segment_name"] != current_name:
                    if handle is not None:
                        handle.close()
                    current_name, handle = row["segment_name"], None
                    try:
                        handle = open(self.segments_dir / current_name, "rb")
                    except OSError:
                        pass
                names[row["segment"]] = row["segment_name"]
                summary["scanned"] += 1
                verdict = "corrupt"
                if handle is not None:
                    try:
                        handle.seek(row["offset"])
                        env = decode_envelope(
                            unpack_record(handle.read(row["length"])))
                        key = env["key"]
                        if (isinstance(key, str) and len(key) == 64
                                and key == row["key"]):
                            SimulationResult.from_dict(env["result"])
                            verdict = (
                                "kept" if env.get("model_version")
                                == MODEL_VERSION else "stale")
                    except (OSError, CorruptRecord, ValueError, KeyError,
                            TypeError):
                        verdict = "corrupt"
                summary[verdict] += 1
                verdicts.setdefault(row["segment"], []).append(
                    (row["key"], verdict))
        finally:
            if handle is not None:
                handle.close()

        stale_keys = [key for cells in verdicts.values()
                      for key, verdict in cells if verdict == "stale"]
        if stale_keys:
            manifest.delete_cells(stale_keys)
        for segment_id, cells in verdicts.items():
            if all(verdict != "corrupt" for _, verdict in cells):
                continue
            self._quarantine_segment(manifest, segment_id,
                                     names[segment_id], cells)

    def _quarantine_segment(self, manifest, segment_id, name, cells):
        """Salvage healthy records out of a corrupt segment, then set
        the whole file aside as ``<name>.corrupt``."""
        if self._active is not None and self._active["id"] == segment_id:
            self._seal_active()
        for key, verdict in cells:
            if verdict != "kept":
                continue
            row = manifest.cell(key)
            if row is None or row["segment"] != segment_id:
                continue  # already relocated
            try:
                env = self._read_at(name, row["offset"], row["length"])
                self._append_envelope(env)
            except (OSError, CorruptRecord, ValueError, KeyError):
                continue
        manifest.delete_cells(
            [key for key, verdict in cells if verdict == "corrupt"])
        path = self.segments_dir / name
        try:
            os.replace(path, str(path) + ".corrupt")
        except OSError:
            pass
        manifest.delete_segment(segment_id)

    def _segment_disk_bytes(self):
        total = 0
        if self.segments_dir.is_dir():
            for path in self.segments_dir.glob("*" + SEGMENT_SUFFIX):
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return total

    def gc(self, keep_keys):
        """Evict every cell whose full key is not in ``keep_keys``.

        The targeted counterpart of :meth:`clear`: callers compute the
        keys of the grid slices they still care about and every other
        cell — stale model versions, abandoned scales, ad-hoc configs —
        is dropped from the index, then :meth:`compact` rewrites the
        survivors and reclaims the dead bytes.  Offline operation.
        Returns ``{"scanned", "kept", "dropped", "bytes_reclaimed"}``.
        """
        keep = set(keep_keys)
        summary = {"scanned": 0, "kept": 0, "dropped": 0,
                   "bytes_reclaimed": 0}
        with self._lock:
            manifest = self._manifest_if_exists()
            if manifest is not None:
                all_keys = manifest.keys()
                drop = [key for key in all_keys if key not in keep]
                summary["scanned"] += len(all_keys)
                summary["kept"] += len(all_keys) - len(drop)
                summary["dropped"] += len(drop)
                if drop:
                    manifest.delete_cells(drop)
                    before = self._segment_disk_bytes()
                    self.compact()
                    summary["bytes_reclaimed"] += max(
                        0, before - self._segment_disk_bytes())
            if self._legacy_cells():
                for name, value in self._legacy.gc(keep).items():
                    summary[name] += value
        return summary

    def compact(self):
        """Fold live records into fresh sealed segments.

        Copies every indexed record verbatim (CRC-checked, never
        re-encoded) into new segments in index order, then deletes all
        old segment files — reclaiming dead bytes left by overwrites,
        evictions, and orphaned appends, and folding the single-record
        segments short-lived writer instances leave behind.  Records
        whose CRC fails during the copy are dropped from the index and
        counted.  Offline operation.  Returns a summary dict.
        """
        with self._lock:
            manifest = self._manifest_if_exists()
            summary = {"cells": 0, "segments_before": 0, "segments_after": 0,
                       "bytes_before": 0, "bytes_after": 0,
                       "corrupt_dropped": 0}
            if manifest is None:
                return summary
            self._seal_active()
            old_segments = manifest.segments()
            summary["segments_before"] = len(old_segments)
            summary["bytes_before"] = self._segment_disk_bytes()

            moves = []  # (segment_id, offset, key)
            dropped = []
            writer = None  # {"id","path","handle","offset"}
            new_ids = set()
            current_name, handle = None, None
            try:
                for row in manifest.iter_cells(with_stats=False):
                    if row["segment_name"] != current_name:
                        if handle is not None:
                            handle.close()
                        current_name, handle = row["segment_name"], None
                        try:
                            handle = open(
                                self.segments_dir / current_name, "rb")
                        except OSError:
                            pass
                    record = b""
                    if handle is not None:
                        try:
                            handle.seek(row["offset"])
                            record = handle.read(row["length"])
                            unpack_record(record)
                        except (OSError, CorruptRecord):
                            record = b""
                    if not record:
                        dropped.append(row["key"])
                        continue
                    if writer is not None and writer["offset"] > 0 and \
                            writer["offset"] + len(record) > self.segment_bytes:
                        writer["handle"].close()
                        manifest.seal_segment(writer["id"])
                        writer = None
                    if writer is None:
                        segment_id, name = manifest.add_segment()
                        new_ids.add(segment_id)
                        self.segments_dir.mkdir(parents=True, exist_ok=True)
                        path = self.segments_dir / name
                        writer = {"id": segment_id, "path": path,
                                  "handle": open(path, "ab"), "offset": 0}
                    moves.append((writer["id"], writer["offset"], row["key"]))
                    writer["handle"].write(record)
                    writer["offset"] += len(record)
                    summary["cells"] += 1
            finally:
                if handle is not None:
                    handle.close()
                if writer is not None:
                    writer["handle"].flush()
                    writer["handle"].close()
                    manifest.seal_segment(writer["id"])

            manifest.relocate_cells(moves)
            if dropped:
                manifest.delete_cells(dropped)
                summary["corrupt_dropped"] = len(dropped)
            for segment in old_segments:
                if segment["id"] in new_ids:
                    continue
                try:
                    os.unlink(self.segments_dir / segment["name"])
                except OSError:
                    pass
                manifest.delete_segment(segment["id"])
            summary["segments_after"] = len(new_ids)
            summary["bytes_after"] = self._segment_disk_bytes()
            return summary

    def migrate(self):
        """Convert legacy JSON-per-cell files into segment records.

        Each legacy envelope is appended verbatim — key, meta, and
        ``model_version`` stamp preserved — then its file is deleted.
        Unreadable or non-round-tripping files are skipped and left in
        place (run :meth:`verify` to judge them).  Offline operation.
        Returns ``{"migrated", "skipped"}``.
        """
        summary = {"migrated": 0, "skipped": 0}
        with self._lock:
            for path in list(self._legacy.cells().values()):
                try:
                    with open(path) as handle:
                        data = json.load(handle)
                    key = data["key"]
                    if not isinstance(key, str) or len(key) != 64:
                        raise ValueError("bad key")
                    stats = SimStats.from_dict(data["result"]["stats"])
                except (OSError, ValueError, KeyError, TypeError):
                    summary["skipped"] += 1
                    continue
                self._append_envelope(data, stats=stats)
                try:
                    path.unlink()
                except OSError:
                    summary["skipped"] += 1
                    continue
                summary["migrated"] += 1
            self._legacy._index(refresh=True)
        return summary

    def stats(self):
        """Store-level accounting for ``python -m repro store stats``."""
        manifest = self._manifest_if_exists()
        legacy_cells = self._legacy_cells()
        legacy_bytes = 0
        for path in legacy_cells.values():
            try:
                legacy_bytes += path.stat().st_size
            except OSError:
                pass
        manifest_bytes = 0
        for suffix in ("", "-wal", "-shm"):
            try:
                manifest_bytes += os.stat(
                    str(self.manifest_path) + suffix).st_size
            except OSError:
                pass
        segment_count = 0
        if self.segments_dir.is_dir():
            segment_count = sum(
                1 for _ in self.segments_dir.glob("*" + SEGMENT_SUFFIX))
        live, raw = manifest.totals() if manifest is not None else (0, 0)
        segment_bytes = self._segment_disk_bytes()
        return {
            "root": str(self.root),
            "format": FORMAT_VERSION,
            "cells": manifest.count() if manifest is not None else 0,
            "legacy_cells": len(legacy_cells),
            "segments": segment_count,
            "segment_bytes": segment_bytes,
            "manifest_bytes": manifest_bytes,
            "legacy_bytes": legacy_bytes,
            "disk_bytes": segment_bytes + manifest_bytes + legacy_bytes,
            "live_bytes": live,
            "raw_bytes": raw,
            "compression_ratio": (raw / live) if live else None,
            "legacy": bool(legacy_cells),
            "failures": len(self.failures()),
        }
