"""Persistent, content-addressed store for simulation results.

Every cell of the campaign grid is identified by
:func:`simulation_key`: a SHA-256 over the canonical JSON of the
*complete* simulation identity —

- the full :class:`~repro.pipeline.config.CoreConfig` parameter record
  (every field, including the nested ``MemConfig``), not just its
  display name;
- the scheme name plus any scheme constructor kwargs;
- the workload ``scale`` and ``seed``;
- a model version stamp (:data:`MODEL_VERSION`).

Keying on content rather than names fixes the classic collision: two
distinct configurations that happen to share a name (two ad-hoc
``CoreConfig(...)`` both called ``"custom"``) can never alias each
other's results.  Bumping the package version invalidates every stored
cell at once, because the stamp participates in the hash.

On disk the store is one JSON file per cell under its root directory
(``results/store/`` by default)::

    results/store/<benchmark>__<config>__<scheme>__<digest12>.json

Filenames embed a human-readable prefix purely for browsability; only
the digest carries identity.  Writes are atomic (temp file + rename),
so a crashed or parallel run never leaves a truncated cell behind.

Failures are first-class: a cell the campaign could not complete —
quarantined after repeatedly killing workers, a deterministic
exception, a watchdog timeout — persists as a :class:`CellFailure`
record under ``failures/`` beside the results, written with the same
atomic discipline.  A later successful result for the cell clears its
failure record (first-result-wins), and ``python -m repro store
failures`` lists whatever remains.
"""

import hashlib
import json
import os
import pathlib
import re
import tempfile

from repro import __version__
from repro.pipeline.core import SimulationResult

#: Stamp hashed into every key; results computed by a different model
#: version are invisible (their keys differ), never silently reused.
MODEL_VERSION = __version__

#: Default on-disk location, overridable via the environment.
DEFAULT_STORE_DIR = os.environ.get("REPRO_STORE_DIR", "results/store")

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")

#: Recognised failure classes (see the failure-model contract in
#: :mod:`repro.harness`): ``poisoned`` — the cell killed workers until
#: it was quarantined; ``deterministic`` — the simulation raised;
#: ``timeout`` — the worker's watchdog hit its wall-clock deadline.
FAILURE_KINDS = ("poisoned", "deterministic", "timeout")


class CellFailure:
    """A structured record of one cell the campaign could not complete."""

    __slots__ = ("key", "benchmark", "config_name", "scheme_name", "kind",
                 "attempts", "worker", "error", "traceback")

    def __init__(self, key, benchmark, config_name, scheme_name, kind,
                 attempts=1, worker=None, error="", traceback=None):
        if kind not in FAILURE_KINDS:
            raise ValueError("unknown failure kind %r (choose from %s)"
                             % (kind, ", ".join(FAILURE_KINDS)))
        self.key = key
        self.benchmark = benchmark
        self.config_name = config_name
        self.scheme_name = scheme_name
        self.kind = kind
        self.attempts = int(attempts)
        self.worker = worker
        self.error = str(error)
        self.traceback = traceback

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**{slot: data.get(slot) for slot in cls.__slots__
                      if slot in data})

    def __repr__(self):
        return ("CellFailure(%s/%s/%s, kind=%s, attempts=%d, error=%r)"
                % (self.benchmark, self.config_name, self.scheme_name,
                   self.kind, self.attempts, self.error))


def _scheme_wire_version(scheme_name):
    """The scheme's ``wire_version``, or ``None`` when unresolvable.

    Tolerant by design: keys must stay computable for scheme names the
    local registry does not know (e.g. browsing a store written by a
    newer build), in which case the stamp simply does not participate —
    exactly the pre-versioned behaviour.
    """
    try:
        from repro.core.registry import get_spec

        return get_spec(scheme_name).wire_version
    except Exception:
        return None


def simulation_key(benchmark, config, scheme_name, scheme_kwargs=None,
                   scale=1.0, seed=2017, model_version=MODEL_VERSION):
    """Content hash identifying one grid cell; returns a hex digest.

    A scheme's :attr:`~repro.core.registry.SchemeSpec.wire_version`
    participates in the hash once it leaves its initial value, so
    results simulated under an older behavioural revision of a scheme
    self-evict (their keys no longer match) instead of being silently
    reused.  Version 1 — every scheme today — is deliberately *not*
    hashed, keeping all existing store contents and golden-fixture keys
    byte-identical.
    """
    payload = {
        "model_version": model_version,
        "benchmark": benchmark,
        # fingerprint() is the one canonical config hash; reusing it
        # here keeps cache keys and any other fingerprint consumer in
        # lock-step.
        "config": config.fingerprint(),
        "scheme": scheme_name.lower(),
        "scheme_kwargs": dict(sorted((scheme_kwargs or {}).items())),
        "scale": scale,
        "seed": seed,
    }
    wire = _scheme_wire_version(scheme_name)
    if wire is not None and wire != 1:
        payload["scheme_wire"] = wire
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cell_filename(benchmark, config_name, scheme_name, key):
    """Browsable filename for one cell: readable prefix + digest."""
    prefix = "__".join(
        _SAFE.sub("-", part) for part in (benchmark, config_name, scheme_name)
    )
    return "%s__%s.json" % (prefix, key[:12])


class ResultStore:
    """JSON-per-cell result store rooted at one directory."""

    def __init__(self, root=None):
        self.root = pathlib.Path(root or DEFAULT_STORE_DIR)
        self._paths = None  # key-prefix -> path index, built lazily
        self._indexed_mtime = None  # directory mtime when last indexed

    # -- indexing ---------------------------------------------------------

    def _dir_mtime(self):
        try:
            return self.root.stat().st_mtime_ns
        except OSError:
            return None

    def _index(self, refresh=False):
        if self._paths is None or refresh:
            paths = {}
            self._indexed_mtime = self._dir_mtime()
            if self.root.is_dir():
                for path in self.root.glob("*.json"):
                    key = path.stem.rsplit("__", 1)[-1]
                    paths[key] = path
            self._paths = paths
        return self._paths

    def _lookup(self, key):
        path = self._index().get(key[:12])
        if path is None and self._dir_mtime() != self._indexed_mtime:
            # A writer (possibly another process) added or removed
            # cells since the index was built; the mtime gate keeps
            # repeated misses (a cold batch run) at one cheap stat
            # each instead of a full directory re-glob per cell.
            path = self._index(refresh=True).get(key[:12])
        return path

    def __contains__(self, key):
        return self._lookup(key) is not None

    def __len__(self):
        return len(self._index(refresh=True))

    def keys(self):
        """Full keys of every stored cell."""
        keys = []
        for path in self._index(refresh=True).values():
            try:
                with open(path) as handle:
                    keys.append(json.load(handle)["key"])
            except (OSError, ValueError, KeyError):
                continue
        return keys

    def iter_results(self):
        """Yield every stored :class:`SimulationResult` (analysis bulk
        read); corrupt or foreign files are skipped silently — use
        :meth:`verify` to surface them."""
        for path in sorted(self._index(refresh=True).values()):
            try:
                with open(path) as handle:
                    data = json.load(handle)
                yield SimulationResult.from_dict(data["result"])
            except (OSError, ValueError, KeyError, TypeError):
                continue

    def load_many(self, keys):
        """Bulk read: ``{key: SimulationResult}`` for every hit.

        One index refresh up front covers the whole batch, so loading N
        cells costs one directory scan plus N file opens — not N
        mtime-gated lookups each racing the index.  Used by the figure
        loaders and the batch runner's pending scan; missing, corrupt,
        or key-mismatched cells are simply absent from the returned
        dict (callers treat absence as "needs simulating").
        """
        keys = list(keys)
        index = self._index(refresh=True)
        results = {}
        for key in keys:
            if key in results:
                continue
            path = index.get(key[:12])
            if path is None:
                continue
            try:
                with open(path) as handle:
                    data = json.load(handle)
            except (OSError, ValueError):
                continue
            if data.get("key") != key:
                continue  # digest-prefix collision or stale file
            try:
                results[key] = SimulationResult.from_dict(data["result"])
            except (ValueError, KeyError, TypeError):
                continue
        return results

    # -- round-tripping ---------------------------------------------------

    def load(self, key):
        """Return the stored :class:`SimulationResult`, or ``None``."""
        path = self._lookup(key)
        if path is None:
            return None
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if data.get("key") != key:
            return None  # digest-prefix collision or stale file
        return SimulationResult.from_dict(data["result"])

    def save(self, key, result, meta=None):
        """Persist one result atomically; returns its path."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "model_version": MODEL_VERSION,
            "meta": dict(meta or {}),
            "result": result.to_dict(),
        }
        name = cell_filename(
            result.program_name, result.config_name, result.scheme_name, key
        )
        path = self.root / name
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self._paths is not None:
            self._paths[key[:12]] = path
            # The write bumped the directory mtime; the index already
            # reflects it, so re-arm the mtime gate instead of letting
            # every subsequent miss trigger a full re-glob.  (A file an
            # external writer slipped in just before ours is missed
            # until the next directory change — the cost is one
            # redundant, deterministic re-simulation, never staleness.)
            self._indexed_mtime = self._dir_mtime()
        return path

    def clear(self):
        """Delete every stored cell (keeps the directory)."""
        for path in self._index(refresh=True).values():
            try:
                path.unlink()
            except OSError:
                pass
        self._paths = {}

    # -- failure records --------------------------------------------------

    @property
    def failures_dir(self):
        return self.root / "failures"

    def _failure_path(self, key):
        for path in self.failures_dir.glob("*__%s.json" % key[:12]):
            return path
        return None

    def save_failure(self, failure):
        """Persist one :class:`CellFailure` atomically; returns its path.

        Failures live under ``failures/`` with the same browsable
        prefix + digest naming as results.  Saving is idempotent per
        key (atomic replace), so a quarantine re-recorded on resume or
        retried campaigns never duplicate.
        """
        directory = self.failures_dir
        directory.mkdir(parents=True, exist_ok=True)
        name = cell_filename(failure.benchmark, failure.config_name or "-",
                             failure.scheme_name, failure.key)
        path = directory / name
        fd, tmp = tempfile.mkstemp(dir=str(directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(failure.to_dict(), handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def load_failure(self, key):
        """The persisted :class:`CellFailure` for ``key``, or ``None``."""
        path = self._failure_path(key)
        if path is None:
            return None
        try:
            with open(path) as handle:
                data = json.load(handle)
            if data.get("key") != key:
                return None  # digest-prefix collision
            return CellFailure.from_dict(data)
        except (OSError, ValueError, TypeError):
            return None

    def failures(self):
        """Every persisted failure record, sorted by benchmark/config."""
        records = []
        for path in sorted(self.failures_dir.glob("*.json")):
            try:
                with open(path) as handle:
                    records.append(CellFailure.from_dict(json.load(handle)))
            except (OSError, ValueError, TypeError):
                continue
        return records

    def clear_failure(self, key):
        """Drop the failure record for ``key`` (first-result-wins).

        Called whenever a result for the cell lands — a late result
        from a presumed-dead worker, or a retry that succeeded — so a
        cell is never simultaneously a result and a failure.  Returns
        True when a record was removed.
        """
        path = self._failure_path(key)
        if path is None:
            return False
        try:
            path.unlink()
        except OSError:
            return False
        return True

    # -- eviction / integrity --------------------------------------------

    def verify(self):
        """Integrity sweep: quarantine corrupt cells, drop stale ones.

        A cell is *corrupt* when its JSON cannot be parsed or its
        ``result`` payload no longer round-trips through
        :meth:`SimulationResult.from_dict` (truncated write survived a
        crash, hand-edited file, schema drift); it is renamed aside
        with a ``.corrupt`` suffix — out of the index, but preserved
        for post-mortem instead of destroyed.  A cell is *stale* when
        its ``model_version`` stamp differs from the running
        :data:`MODEL_VERSION`; such cells are unreachable anyway (their
        keys can never be recomputed) and are deleted as pure dead
        weight.  Returns ``{"scanned", "kept", "corrupt", "stale"}``.
        """
        summary = {"scanned": 0, "kept": 0, "corrupt": 0, "stale": 0}
        for path in list(self._index(refresh=True).values()):
            summary["scanned"] += 1
            verdict = self._verify_one(path)
            if verdict == "kept":
                summary["kept"] += 1
                continue
            summary[verdict] += 1
            try:
                if verdict == "corrupt":
                    os.replace(path, str(path) + ".corrupt")
                else:
                    path.unlink()
            except OSError:
                pass
        self._index(refresh=True)
        return summary

    def _verify_one(self, path):
        try:
            with open(path) as handle:
                data = json.load(handle)
            key = data["key"]
            if not isinstance(key, str) or len(key) != 64:
                return "corrupt"
            SimulationResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return "corrupt"
        if data.get("model_version") != MODEL_VERSION:
            return "stale"
        return "kept"

    def gc(self, keep_keys):
        """Evict every cell whose full key is not in ``keep_keys``.

        The targeted counterpart of :meth:`clear`: callers compute the
        keys of the grid slices they still care about (e.g. the
        standard campaign grid at the current scale/seed) and every
        other cell — stale model versions, abandoned scales, ad-hoc
        configs — is deleted.  Unreadable files are evicted too (they
        can never be loaded).  Returns ``{"scanned", "kept",
        "dropped"}``.
        """
        keep = set(keep_keys)
        summary = {"scanned": 0, "kept": 0, "dropped": 0}
        for path in list(self._index(refresh=True).values()):
            summary["scanned"] += 1
            try:
                with open(path) as handle:
                    key = json.load(handle).get("key")
            except (OSError, ValueError):
                key = None
            if key in keep:
                summary["kept"] += 1
                continue
            summary["dropped"] += 1
            try:
                path.unlink()
            except OSError:
                pass
        self._index(refresh=True)
        return summary
