"""Store-scale microbenchmark: legacy JSON-per-cell vs segment backend.

Populates a store with synthetic-but-realistic campaign cells (full
register file, a few hundred memory words, ~40 cycle-accounting
extras — the shape real campaign results have) through each backend's
writer, then times the read paths every consumer actually exercises,
always through the public :class:`~repro.harness.store.ResultStore`
facade so legacy and segment stores answer the *same* API calls:

``write``
    N ``save()`` calls (the coordinator's streaming-persist path).
``keys``
    ``keys()`` — index scan vs open-and-parse-every-file.
``load_many``
    Fresh store instance, one bulk ``load_many`` over every key — the
    campaign resume scan (results materialised, snapshots untouched).
``load_many_stats``
    ``load_many`` + touching every result's statistics — the figure
    loaders' pattern.
``iter_results``
    ``iter_results(fields=("stats",))`` + a stall-accounting read per
    cell — the ``python -m repro metrics`` / analysis pass.  Columnar
    on the segment backend; the legacy layout has no columnar path, so
    the same call transparently falls back to full decode there.
``iter_full``
    ``iter_results()`` with full snapshot decode on both backends —
    the worst-case bound, reported for transparency.

Run via ``python -m repro bench --store`` (see ``BENCH_PR10.json``) or
:mod:`benchmarks/bench_store.py` under pytest-benchmark.
"""

import hashlib
import shutil
import tempfile
import time

from repro.harness.store import LegacyResultStore, ResultStore
from repro.pipeline.core import SimulationResult
from repro.pipeline.stats import SimStats

_BENCHMARKS = ("chase-cold", "chase-warm", "streaming-warm", "gemm-tiny",
               "spectre-v1", "exchange2", "leela", "xz")
_CONFIGS = ("small", "medium", "large", "mega")
_SCHEMES = ("baseline", "stt", "nda", "fence", "delay-on-miss")

#: Leaf causes + sub-causes mimicking a real ``cycacct.`` account.
_ACCOUNT_KEYS = (
    "width", "cycles", "committed", "frontend_latency", "branch_mispredict",
    "icache_miss", "dcache_miss", "rob_full", "iq_full", "ldq_full",
    "stq_full", "no_phys_regs", "scheme_delayed", "scheme.taint_blocked",
    "scheme.deferred_broadcast", "scheme.fence_drain",
    "issue_blocks.transmitter", "issue_blocks.yrot_unsafe",
    "occ.rob", "occ.iq", "occ.ldq", "occ.stq",
)


def synthetic_key(index):
    """Deterministic stand-in for :func:`simulation_key`."""
    return hashlib.sha256(b"store-bench-cell-%d" % index).hexdigest()


def synthetic_result(index):
    """One realistic-shaped campaign cell, deterministic in ``index``."""
    cycles = 5_000 + (index * 97) % 3_000
    committed = 3_000 + (index * 31) % 2_000
    extra = {"cycacct.%s" % name: (index * 13 + j * 7) % 10_000
             for j, name in enumerate(_ACCOUNT_KEYS)}
    extra["cycacct.width"] = 4
    extra["cycacct.cycles"] = cycles
    extra["cycacct.committed"] = committed
    stats = SimStats(
        cycles=cycles,
        committed_instructions=committed,
        committed_loads=committed // 4,
        committed_stores=committed // 8,
        committed_branches=committed // 6,
        branch_mispredicts=(index * 11) % 200,
        stall_iq_full=(index * 5) % 1_000,
        stall_rob_full=(index * 3) % 800,
        fetched_instructions=committed + (index % 500),
        extra=extra,
    )
    regs = [(index * 2654435761 + r * 40503) % (1 << 32) for r in range(32)]
    memory = {4096 + 8 * j: (index ^ (j * 2246822519)) % (1 << 32)
              for j in range(192)}
    return SimulationResult(
        program_name=_BENCHMARKS[index % len(_BENCHMARKS)],
        scheme_name=_SCHEMES[index % len(_SCHEMES)],
        config_name=_CONFIGS[index % len(_CONFIGS)],
        stats=stats, regs=regs, memory=memory, halted=True, cycles=cycles,
    )


def _populate(root, backend, count):
    """Write ``count`` synthetic cells through the backend's writer."""
    writer = (LegacyResultStore(root) if backend == "legacy"
              else ResultStore(root))
    keys = []
    start = time.perf_counter()
    for index in range(count):
        key = synthetic_key(index)
        result = synthetic_result(index)
        writer.save(key, result, {"benchmark": result.program_name,
                                  "scale": 1.0, "seed": 2017})
        keys.append(key)
    elapsed = time.perf_counter() - start
    if backend != "legacy":
        writer.close()
    return keys, elapsed


def _timed(op):
    start = time.perf_counter()
    checksum = op()
    return time.perf_counter() - start, checksum


def _read_ops(root, keys):
    """Time every read pattern through a fresh ResultStore facade."""
    ops = {}

    store = ResultStore(root)
    ops["keys"], found = _timed(lambda: len(store.keys()))
    assert found == len(keys), "keys() lost cells (%d != %d)" % (
        found, len(keys))

    store = ResultStore(root)
    seconds, found = _timed(lambda: len(store.load_many(keys)))
    assert found == len(keys)
    ops["load_many"] = seconds

    store = ResultStore(root)

    def load_many_stats():
        results = store.load_many(keys)
        return sum(r.stats.committed_instructions for r in results.values())

    ops["load_many_stats"], _ = _timed(load_many_stats)

    store = ResultStore(root)

    def iter_columnar():
        total = 0
        for result in store.iter_results(fields=("stats",)):
            total += result.stats.cycles
            total += result.stats.committed_instructions
        return total

    ops["iter_results"], _ = _timed(iter_columnar)

    store = ResultStore(root)

    def iter_full():
        total = 0
        for result in store.iter_results():
            total += result.stats.committed_instructions + len(result.memory)
        return total

    ops["iter_full"], _ = _timed(iter_full)
    return ops


def run_store_bench(cell_counts=(1_000, 10_000), root=None,
                    backends=("legacy", "segment")):
    """Run the store benchmark; returns the JSON-ready report dict."""
    from repro.harness.bench import host_metadata
    from repro.harness.store import MODEL_VERSION

    report = {
        "benchmark": "result_store",
        "model_version": MODEL_VERSION,
        "host": host_metadata(),
        "cell_counts": list(cell_counts),
        "backends": {},
        "speedup": {},
    }
    base = None
    if root is not None:
        base = tempfile.mkdtemp(dir=str(root))
    for backend in backends:
        sections = report["backends"][backend] = {}
        for count in cell_counts:
            workdir = tempfile.mkdtemp(prefix="storebench-", dir=base)
            try:
                keys, write_seconds = _populate(workdir, backend, count)
                ops = {"write": write_seconds}
                ops.update(_read_ops(workdir, keys))
                if backend != "legacy":
                    disk = ResultStore(workdir).stats()
                    sections.setdefault("store_stats", {})[str(count)] = {
                        "segments": disk["segments"],
                        "disk_bytes": disk["disk_bytes"],
                        "compression_ratio": disk["compression_ratio"],
                    }
                sections[str(count)] = {
                    op: {"seconds": round(seconds, 6),
                         "cells_per_sec": round(count / seconds, 1)
                         if seconds else None}
                    for op, seconds in ops.items()
                }
            finally:
                shutil.rmtree(workdir, ignore_errors=True)
    if "legacy" in report["backends"] and "segment" in report["backends"]:
        for count in cell_counts:
            legacy = report["backends"]["legacy"][str(count)]
            segment = report["backends"]["segment"][str(count)]
            report["speedup"][str(count)] = {
                op: round(legacy[op]["seconds"] / segment[op]["seconds"], 2)
                for op in legacy
                if op in segment and segment[op]["seconds"]
            }
    if base is not None:
        shutil.rmtree(base, ignore_errors=True)
    return report
