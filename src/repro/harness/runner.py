"""Simulation campaign engine: content-addressed cache + executor.

Regenerating every table and figure needs the full
(22 benchmarks x 4 configs x 4 schemes) grid; many experiments share
slices of it, so one shared runner caches every simulation result.

Cache identity is the *full* simulation content, not display names:
:func:`repro.harness.store.simulation_key` hashes the complete
``CoreConfig`` (every field, nested ``MemConfig`` included), the scheme
name and constructor kwargs, the workload scale/seed, and a model
version stamp.  Two configurations that merely share a ``name`` can
therefore never alias each other's cached results.

Three layers cooperate:

- the in-process dict cache (always on, per-runner);
- an optional persistent :class:`~repro.harness.store.ResultStore`
  (segment files + manifest index on disk — see
  :mod:`repro.harness.segments`) consulted before simulating and updated
  after, so repeated processes skip already-simulated cells;
- :func:`~repro.harness.parallel.run_cells`, which
  :meth:`CampaignRunner.run_grid` uses to shard the *uncached* cells
  of a grid across a multiprocessing pool (serial fallback included).

``python -m repro`` exposes all of this on the command line.
"""

from repro.core.registry import grid_scheme_names, make_scheme
from repro.harness.parallel import run_cells
from repro.harness.store import simulation_key
from repro.pipeline.config import named_configs
from repro.pipeline.core import OoOCore
from repro.workloads.spec2017 import spec_suite


class CampaignRunner:
    """Runs and caches the benchmark/config/scheme grid."""

    def __init__(self, scale=1.0, seed=2017, benchmarks=None, store=None,
                 jobs=1):
        self.scale = scale
        self.seed = seed
        from repro.workloads.characteristics import SPEC_BENCHMARKS

        self.benchmarks = tuple(benchmarks or SPEC_BENCHMARKS)
        self.store = store
        self.jobs = jobs
        self._programs = None
        self._cache = {}

    # -- program generation (lazy, shared across runs) -------------------

    def programs(self):
        if self._programs is None:
            self._programs = dict(
                spec_suite(scale=self.scale, seed=self.seed,
                           benchmarks=self.benchmarks)
            )
        return self._programs

    # -- cache identity ----------------------------------------------------

    def cell_key(self, benchmark, config, scheme_name, scheme_kwargs=None):
        """Content-addressed key for one grid cell."""
        return simulation_key(
            benchmark, config, scheme_name, scheme_kwargs=scheme_kwargs,
            scale=self.scale, seed=self.seed,
        )

    def _cell_spec(self, benchmark, config, scheme_name, scheme_kwargs=None):
        return (benchmark, config, scheme_name,
                tuple(sorted((scheme_kwargs or {}).items())),
                self.scale, self.seed)

    # -- simulation --------------------------------------------------------

    def run(self, benchmark, config, scheme_name, **scheme_kwargs):
        """Result for one cell of the grid (cached, store-backed)."""
        key = self.cell_key(benchmark, config, scheme_name, scheme_kwargs)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self.store.load(key) if self.store is not None else None
        if result is None:
            from repro.obs import CycleAccount
            from repro.workloads.program_cache import cached_spec_trace

            program = self.programs()[benchmark]
            # Campaign cells always carry cycle accounting (matching
            # the executor path in repro.harness.parallel), so stored
            # extras are identical however a cell was produced.
            core = OoOCore(
                program, config=config,
                scheme=make_scheme(scheme_name, **scheme_kwargs),
                warm_caches=True,
                trace=cached_spec_trace(benchmark, scale=self.scale,
                                        seed=self.seed),
                account=CycleAccount(),
            )
            result = core.run()
            self._persist(key, result, benchmark, config, scheme_name,
                          scheme_kwargs)
        self._cache[key] = result
        return result

    def _persist(self, key, result, benchmark, config, scheme_name,
                 scheme_kwargs):
        if self.store is None:
            return
        self.store.save(key, result, meta={
            "benchmark": benchmark,
            "config": config.name,
            "scheme": scheme_name,
            "scheme_kwargs": dict(scheme_kwargs or {}),
            "scale": self.scale,
            "seed": self.seed,
        })

    def preload_from_store(self, cells):
        """Bulk-load already-stored cells into the in-process cache.

        One :meth:`~repro.harness.store.ResultStore.load_many` call
        replaces a per-cell ``load`` (and its per-miss index check)
        for every ``(benchmark, config, scheme_name)`` in ``cells`` —
        the figure loaders' dominant cost once a campaign has run.
        Returns the number of cells newly cached; cells absent from
        the store are left for :meth:`run` to simulate.
        """
        if self.store is None:
            return 0
        wanted = {}
        for benchmark, config, scheme_name in cells:
            key = self.cell_key(benchmark, config, scheme_name)
            if key not in self._cache:
                wanted[key] = True
        if not wanted:
            return 0
        loaded = self.store.load_many(wanted)
        self._cache.update(loaded)
        return len(loaded)

    def suite_results(self, config, scheme_name, benchmarks=None):
        """Results for all benchmarks under (config, scheme), in order.

        The whole suite is preloaded from the store in one bulk read
        before any per-cell work, so a fully-populated campaign costs
        one batched index lookup per suite instead of one store lookup
        per benchmark.
        """
        selected = benchmarks or self.benchmarks
        self.preload_from_store(
            [(name, config, scheme_name) for name in selected])
        return [self.run(name, config, scheme_name) for name in selected]

    # -- grid execution ----------------------------------------------------

    def run_grid(self, configs=None, schemes=None, benchmarks=None,
                 jobs=None, executor=None, progress=None):
        """Populate a (benchmark x config x scheme) grid, in parallel.

        Cells already in the in-process cache or the persistent store
        are skipped; the remainder goes to ``executor`` (any
        :class:`~repro.harness.executor.Executor` — serial, pool, or
        cluster) or, when none is given, is sharded across ``jobs``
        local workers (defaulting to the runner's ``jobs``) and merged
        back into both cache layers.  Returns a summary dict with
        ``total``, ``cached``, ``from_store``, and ``simulated``
        counts.
        """
        configs = list(configs or named_configs())
        schemes = tuple(schemes or grid_scheme_names())
        benchmarks = tuple(benchmarks or self.benchmarks)
        cells = [
            (benchmark, config, scheme)
            for config in configs
            for scheme in schemes
            for benchmark in benchmarks
        ]
        return self.run_cell_batch(cells, jobs=jobs, executor=executor,
                                   progress=progress)

    def run_cell_batch(self, cells, jobs=None, executor=None, progress=None):
        """Populate arbitrary ``(benchmark, config, scheme)`` cells.

        The sparse counterpart of :meth:`run_grid`, for callers that
        know exactly which cells they need (e.g. the CLI pre-populating
        only the slices the requested experiments read).  Same caching,
        store, and summary semantics; backend selection as in
        :meth:`run_grid`.  ``progress`` (a
        :class:`~repro.harness.progress.ProgressReporter`) is armed
        with the count of cells actually executing and fed by the
        backend as they complete.

        Graceful degradation: a backend that settles cells as
        :class:`~repro.harness.store.CellFailure` instead of raising
        (the cluster, unless ``fail_fast``) reports them through
        ``on_failure`` — each is persisted as a failure record in the
        store, counted in the summary's ``failed``, and its ``None``
        result is simply not cached, so a later campaign retries it.
        """
        jobs = self.jobs if jobs is None else jobs
        # Dedup within the batch (identical cells hash identically), so
        # repeated entries never reach the pool twice.
        unique, seen = [], set()
        for benchmark, config, scheme in cells:
            key = self.cell_key(benchmark, config, scheme)
            if key in seen:
                continue
            seen.add(key)
            unique.append((key, benchmark, config, scheme))

        summary = {"total": len(unique), "cached": 0, "from_store": 0,
                   "simulated": 0, "failed": 0}
        # One bulk store read for the whole batch instead of a
        # per-cell load (each of which can re-stat the directory).
        stored = {}
        if self.store is not None:
            stored = self.store.load_many(
                key for key, _b, _c, _s in unique
                if key not in self._cache)
        pending = []
        for key, benchmark, config, scheme in unique:
            if key in self._cache:
                summary["cached"] += 1
                continue
            if key in stored:
                self._cache[key] = stored[key]
                summary["from_store"] += 1
                continue
            pending.append((key, benchmark, config, scheme))

        specs = [self._cell_spec(benchmark, config, scheme)
                 for _key, benchmark, config, scheme in pending]
        if progress is not None:
            progress.begin(len(specs))

        def persist_streaming(index, result):
            # Fired by the backend as each cell completes (possibly
            # from a pool/coordinator thread): results reach the store
            # while the campaign is still running, so an interruption
            # keeps every cell already simulated.  A result also clears
            # any failure record left by an earlier attempt — first
            # result wins over quarantine.
            key, benchmark, config, scheme = pending[index]
            self._persist(key, result, benchmark, config, scheme, {})
            self.store.clear_failure(key)

        def persist_failure(index, failure):
            # Failure-side twin: settle the cell's CellFailure record
            # in the store so ``python -m repro store failures`` (and a
            # resumed campaign) can see what went wrong.
            self.store.save_failure(failure)

        results = run_cells(specs, jobs=jobs, executor=executor,
                            progress=progress,
                            on_result=persist_streaming
                            if self.store is not None else None,
                            on_failure=persist_failure
                            if self.store is not None else None)
        for (key, _benchmark, _config, _scheme), result in zip(pending,
                                                               results):
            if result is None:
                summary["failed"] += 1
                continue
            self._cache[key] = result
            summary["simulated"] += 1
        if progress is not None:
            progress.finish()
        return summary

    def full_grid(self, configs=None, schemes=None):
        """Force-populate the whole grid (useful for timing the cost)."""
        self.run_grid(configs=configs, schemes=schemes)
        return self


_SHARED = {}


def shared_runner(scale=1.0, seed=2017, benchmarks=None):
    """Process-wide memoised runner for a given scale/seed/benchmarks.

    The benchmark tuple participates in the key: a caller requesting a
    subset gets a runner built for that subset, never one recycled from
    a different selection.
    """
    from repro.workloads.characteristics import SPEC_BENCHMARKS

    key = (scale, seed, tuple(benchmarks or SPEC_BENCHMARKS))
    if key not in _SHARED:
        _SHARED[key] = CampaignRunner(scale=scale, seed=seed,
                                      benchmarks=key[2])
    return _SHARED[key]
