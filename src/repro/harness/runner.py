"""Simulation campaign runner with memoisation.

Regenerating every table and figure needs the full
(22 benchmarks x 4 configs x 4 schemes) grid; many experiments share
slices of it, so one shared runner caches every simulation result by
(benchmark, config, scheme) key for the lifetime of the process.
"""

from repro.core.factory import SCHEME_NAMES, make_scheme
from repro.pipeline.config import named_configs
from repro.pipeline.core import OoOCore
from repro.workloads.spec2017 import spec_suite


class CampaignRunner:
    """Runs and caches the benchmark/config/scheme grid."""

    def __init__(self, scale=1.0, seed=2017, benchmarks=None):
        self.scale = scale
        self.seed = seed
        from repro.workloads.characteristics import SPEC_BENCHMARKS

        self.benchmarks = tuple(benchmarks or SPEC_BENCHMARKS)
        self._programs = None
        self._cache = {}

    # -- program generation (lazy, shared across runs) -------------------

    def programs(self):
        if self._programs is None:
            self._programs = dict(
                spec_suite(scale=self.scale, seed=self.seed,
                           benchmarks=self.benchmarks)
            )
        return self._programs

    # -- simulation --------------------------------------------------------

    def run(self, benchmark, config, scheme_name):
        """Result for one cell of the grid (cached)."""
        key = (benchmark, config.name, scheme_name)
        if key not in self._cache:
            program = self.programs()[benchmark]
            core = OoOCore(program, config=config,
                           scheme=make_scheme(scheme_name), warm_caches=True)
            self._cache[key] = core.run()
        return self._cache[key]

    def suite_results(self, config, scheme_name, benchmarks=None):
        """Results for all benchmarks under (config, scheme), in order."""
        selected = benchmarks or self.benchmarks
        return [self.run(name, config, scheme_name) for name in selected]

    def full_grid(self, configs=None, schemes=SCHEME_NAMES):
        """Force-populate the whole grid (useful for timing the cost)."""
        for config in configs or named_configs():
            for scheme in schemes:
                self.suite_results(config, scheme)
        return self


_SHARED = {}


def shared_runner(scale=1.0, seed=2017):
    """Process-wide memoised runner for a given scale/seed."""
    key = (scale, seed)
    if key not in _SHARED:
        _SHARED[key] = CampaignRunner(scale=scale, seed=seed)
    return _SHARED[key]
