"""Simulator-throughput benchmarking and profiling.

Not a paper artefact: this measures the *model itself* — simulated
cycles per wall-clock second and committed kilo-instructions per second
(KIPS) — so kernel performance regressions show up in the BENCH
trajectory instead of silently inflating every campaign.

One canonical workload suite (:func:`throughput_suite`) is shared by

* ``python -m repro bench`` — runs the suite, prints a JSON report;
* ``benchmarks/bench_simulator_throughput.py`` — the pytest-benchmark
  wrapper timing the same workloads;
* ``python -m repro profile`` — a cProfile wrapper over one grid cell
  for targeted optimisation work.

The suite deliberately spans the kernel's performance regimes:

* ``streaming-warm`` — high-IPC, issue/rename-bound (warm caches);
* ``chase-cold``     — serial DRAM misses, idle-cycle fast-forward's
  best case (the event-heap jumps whole miss latencies at once);
* ``forwarding-cold`` — dense store-to-load traffic: forwarding,
  partial store issue, ordering-violation flushes;
* ``shadowed-miss-cold`` — independent misses completing under slow
  branch shadows: the secure-scheme release-window regime (withheld
  NDA broadcasts draining on a budget, STT untaint catch-ups) that the
  other workloads barely touch;
* ``mixed``          — generated SPEC-proxy-style blend of branches,
  ALU chains, mul/div, and memory traffic.
"""

import cProfile
import io
import json
import os
import platform
import pstats
import subprocess
import sys
import time

from repro.core.factory import make_scheme
from repro.pipeline.config import MEGA, boom_config
from repro.pipeline.core import OoOCore
from repro.workloads.generator import WorkloadProfile, generate_program
from repro.workloads.kernels import (
    chase_kernel,
    forwarding_kernel,
    shadowed_miss_kernel,
    streaming_kernel,
)


#: Labels of the canonical throughput workloads, in suite order —
#: usable at pytest collection time without building any program.
THROUGHPUT_LABELS = ("streaming-warm", "chase-cold", "forwarding-cold",
                     "shadowed-miss-cold", "mixed")


def throughput_suite(scale=1.0):
    """The canonical throughput workloads: ``[(label, program, warm)]``.

    Labels match :data:`THROUGHPUT_LABELS`.  ``scale`` multiplies
    iteration counts (smoke runs vs. tighter measurements), mirroring
    the campaign engine's ``--scale``.
    """
    its = lambda n: max(2, int(round(n * scale)))  # noqa: E731
    return [
        ("streaming-warm",
         streaming_kernel(iterations=its(300), array_words=1024), True),
        ("chase-cold",
         chase_kernel(iterations=its(300), ring_words=4096), False),
        ("forwarding-cold",
         forwarding_kernel(iterations=its(200), slots=8, array_words=1024),
         False),
        ("shadowed-miss-cold",
         shadowed_miss_kernel(iterations=its(250), guard_words=4096,
                              victim_words=4096),
         False),
        ("mixed",
         generate_program(
             WorkloadProfile(name="mixed", iterations=its(30),
                             body_templates=8, body_blocks=3,
                             working_set_words=2048, ring_words=64,
                             scratch_words=32),
             seed=7,
         ), False),
    ]


#: program id -> recorded trace, memoised per process so the (one-time,
#: untimed) recording cost is paid once per suite program, not per
#: repeat — production campaigns amortise it the same way through the
#: trace cache.
_TRACE_MEMO = {}


def _trace_for(program):
    # The memo pins the program object itself so an id() can never be
    # recycled onto a different program while its entry is alive.
    entry = _TRACE_MEMO.get(id(program))
    if entry is None or entry[0] is not program:
        from repro.isa.trace import record_trace

        _TRACE_MEMO[id(program)] = entry = (program, record_trace(program))
    return entry[1]


def host_metadata():
    """Where a bench number came from: interpreter, OS, CPUs, git rev.

    Throughput is only comparable within a host/interpreter pair, so
    every BENCH_*.json records the provenance needed to bucket the
    trajectory.  Best-effort: the git revision is ``None`` outside a
    checkout (or without a git binary) rather than an error.
    """
    rev = None
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if probe.returncode == 0:
            rev = probe.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        rev = None
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_revision": rev,
    }


def _run_once(program, config, scheme_name, warm):
    trace = _trace_for(program)  # recorded outside the timed region
    core = OoOCore(program, config=config, scheme=make_scheme(scheme_name),
                   warm_caches=warm, trace=trace)
    start = time.perf_counter()
    result = core.run()
    wall = time.perf_counter() - start
    return core, result, wall


def _bench_scheme(suite, config, scheme_name, repeats):
    """Best-of-N the suite under one scheme: (workloads, totals)."""
    workloads = []
    total_cycles = 0
    total_instructions = 0
    total_wall = 0.0
    for label, program, warm in suite:
        best_wall = None
        for _ in range(max(1, repeats)):
            core, result, wall = _run_once(program, config, scheme_name, warm)
            if best_wall is None or wall < best_wall:
                best_wall = wall
        cycles = result.cycles
        instructions = result.stats.committed_instructions
        total_cycles += cycles
        total_instructions += instructions
        total_wall += best_wall
        workloads.append({
            "workload": label,
            "wall_seconds": round(best_wall, 6),
            "cycles": cycles,
            "instructions": instructions,
            "ipc": round(result.ipc, 4),
            "cycles_per_second": round(cycles / best_wall, 1),
            "committed_kips": round(instructions / best_wall / 1000.0, 3),
            "fast_forwarded_cycles": core.ff_skipped_cycles,
            "replay_batch_events": core.replay_batch_events,
            "replay_batch_uops": core.replay_batch_uops,
        })
    totals = {
        "wall_seconds": round(total_wall, 6),
        "cycles": total_cycles,
        "instructions": total_instructions,
        "cycles_per_second": round(total_cycles / total_wall, 1),
        "committed_kips": round(total_instructions / total_wall / 1000.0, 3),
    }
    return workloads, totals


def run_throughput_bench(config=MEGA, scheme_name="baseline", scale=1.0,
                         repeats=3, schemes=None):
    """Measure the throughput suite; returns a JSON-ready report dict.

    Each workload is simulated ``repeats`` times and the fastest run is
    reported (standard best-of-N to shed scheduler noise).  The
    ``aggregate`` entry is the headline number: total simulated cycles
    of the suite divided by total (best) wall time.

    With ``schemes`` (an iterable of scheme names) the suite runs once
    per scheme over the *same* generated programs and the report gains
    a ``schemes`` section keyed by name — this is how the BENCH
    trajectory tracks kernel speed on NDA/STT cells, not just the
    baseline; ``aggregate`` then sums over every scheme.
    """
    suite = throughput_suite(scale=scale)
    if schemes is None:
        workloads, totals = _bench_scheme(suite, config, scheme_name, repeats)
        return {
            "benchmark": "simulator_throughput",
            "config": config.name,
            "scheme": scheme_name,
            "scale": scale,
            "repeats": repeats,
            "host": host_metadata(),
            "workloads": workloads,
            "aggregate": totals,
        }

    per_scheme = {}
    total_cycles = 0
    total_instructions = 0
    total_wall = 0.0
    for name in schemes:
        workloads, totals = _bench_scheme(suite, config, name, repeats)
        per_scheme[name] = {"workloads": workloads, "aggregate": totals}
        total_cycles += totals["cycles"]
        total_instructions += totals["instructions"]
        total_wall += totals["wall_seconds"]
    return {
        "benchmark": "simulator_throughput",
        "config": config.name,
        "scale": scale,
        "repeats": repeats,
        "host": host_metadata(),
        "schemes": per_scheme,
        "aggregate": {
            "wall_seconds": round(total_wall, 6),
            "cycles": total_cycles,
            "instructions": total_instructions,
            "cycles_per_second": round(total_cycles / total_wall, 1),
            "committed_kips": round(total_instructions / total_wall / 1000.0,
                                    3),
        },
    }


def format_bench_report(report, indent=2):
    """Render a bench report as JSON text (the CLI contract)."""
    return json.dumps(report, indent=indent, sort_keys=False)


# -- report comparison -----------------------------------------------------


def _report_schemes(report):
    """Normalise both report shapes to ``{scheme: {workloads, aggregate}}``.

    Single-scheme reports key their one section under the recorded
    scheme name, so old single-scheme BENCH files stay comparable
    against newer multi-scheme ones.
    """
    if "schemes" in report:
        return report["schemes"]
    return {report.get("scheme", "baseline"): {
        "workloads": report.get("workloads", []),
        "aggregate": report.get("aggregate", {}),
    }}


#: Host-metadata keys whose disagreement invalidates a throughput
#: comparison.  ``git_revision`` is deliberately absent: differing
#: revisions are the *point* of a before/after comparison.
_HOST_COMPARE_KEYS = ("python", "implementation", "platform", "cpu_count")


def _delta_row(label, old_totals, new_totals):
    old_cps = old_totals.get("cycles_per_second")
    new_cps = new_totals.get("cycles_per_second")
    row = {"workload": label, "old_cps": old_cps, "new_cps": new_cps,
           "speedup": None, "delta_pct": None}
    if old_cps and new_cps:
        row["speedup"] = round(new_cps / old_cps, 3)
        row["delta_pct"] = round(100.0 * (new_cps - old_cps) / old_cps, 1)
    return row


def compare_bench_reports(old, new):
    """Structured delta between two bench reports (old -> new).

    Produces per-scheme, per-workload cycles-per-second rows, a
    per-scheme aggregate row, and the overall-aggregate row, plus
    ``host_mismatches`` — human-readable disagreements between the two
    reports' host metadata (interpreter, platform, CPU count) that make
    wall-clock throughput numbers incomparable.  Schemes or workloads
    present in only one report are listed in ``only_old``/``only_new``
    rather than silently dropped.
    """
    mismatches = []
    old_host = old.get("host", {})
    new_host = new.get("host", {})
    for key in _HOST_COMPARE_KEYS:
        if old_host.get(key) != new_host.get(key):
            mismatches.append("%s: %r -> %r"
                              % (key, old_host.get(key), new_host.get(key)))
    for key in ("config", "scale"):
        if old.get(key) != new.get(key):
            mismatches.append("%s: %r -> %r"
                              % (key, old.get(key), new.get(key)))

    old_schemes = _report_schemes(old)
    new_schemes = _report_schemes(new)
    shared = [name for name in old_schemes if name in new_schemes]
    schemes = {}
    for name in shared:
        old_by_label = {w["workload"]: w
                        for w in old_schemes[name].get("workloads", [])}
        new_by_label = {w["workload"]: w
                        for w in new_schemes[name].get("workloads", [])}
        rows = [_delta_row(label, old_by_label[label], new_by_label[label])
                for label in old_by_label if label in new_by_label]
        schemes[name] = {
            "workloads": rows,
            "aggregate": _delta_row("aggregate",
                                    old_schemes[name].get("aggregate", {}),
                                    new_schemes[name].get("aggregate", {})),
            "only_old": sorted(set(old_by_label) - set(new_by_label)),
            "only_new": sorted(set(new_by_label) - set(old_by_label)),
        }
    return {
        "host_mismatches": mismatches,
        "schemes": schemes,
        "only_old": sorted(set(old_schemes) - set(new_schemes)),
        "only_new": sorted(set(new_schemes) - set(old_schemes)),
        "aggregate": _delta_row("aggregate", old.get("aggregate", {}),
                                new.get("aggregate", {})),
    }


def _format_delta_rows(rows, out):
    width = max([len(r["workload"]) for r in rows] + [9])
    header = "%-*s  %14s  %14s  %9s  %8s" % (
        width, "workload", "old cyc/s", "new cyc/s", "speedup", "delta")
    out.append(header)
    out.append("-" * len(header))
    for row in rows:
        if row["speedup"] is None:
            out.append("%-*s  %14s  %14s  %9s  %8s"
                       % (width, row["workload"],
                          row["old_cps"] if row["old_cps"] is not None
                          else "-",
                          row["new_cps"] if row["new_cps"] is not None
                          else "-",
                          "-", "-"))
        else:
            out.append("%-*s  %14.1f  %14.1f  %8.3fx  %+7.1f%%"
                       % (width, row["workload"], row["old_cps"],
                          row["new_cps"], row["speedup"],
                          row["delta_pct"]))


def format_bench_comparison(comparison):
    """Render :func:`compare_bench_reports` output as an aligned text
    table (one block per shared scheme, overall aggregate last)."""
    out = []
    if comparison["host_mismatches"]:
        out.append("WARNING: reports come from different hosts/settings; "
                   "throughput deltas are not comparable:")
        for line in comparison["host_mismatches"]:
            out.append("  %s" % line)
        out.append("")
    for name, section in comparison["schemes"].items():
        out.append("scheme: %s" % name)
        _format_delta_rows(section["workloads"] + [section["aggregate"]],
                           out)
        for key, noun in (("only_old", "old"), ("only_new", "new")):
            if section[key]:
                out.append("  (workloads only in %s report: %s)"
                           % (noun, ", ".join(section[key])))
        out.append("")
    for key, noun in (("only_old", "old"), ("only_new", "new")):
        if comparison[key]:
            out.append("(schemes only in %s report: %s)"
                       % (noun, ", ".join(comparison[key])))
    out.append("overall:")
    _format_delta_rows([comparison["aggregate"]], out)
    return "\n".join(out)


# -- profiling -------------------------------------------------------------


#: ``--sort`` choices for :func:`profile_cell` (``cumtime`` is the
#: pstats alias for ``cumulative``; both accepted for muscle memory).
PROFILE_SORTS = ("cumulative", "cumtime", "tottime")


def profile_cell(benchmark="chase-cold", config_name="mega",
                 scheme_name="baseline", scale=1.0, top=25,
                 sort="cumulative", as_json=False):
    """cProfile one grid cell; returns (report, result).

    ``benchmark`` names a throughput-suite workload (see
    :func:`throughput_suite`); the profile covers exactly one
    :meth:`OoOCore.run`, excluding workload generation and warm-up.
    ``report`` is the classic pstats text dump, or — with
    ``as_json=True`` — a JSON-ready dict whose ``functions`` list holds
    the top ``top`` rows under the chosen ``sort`` order, for scripted
    regression triage.
    """
    if sort not in PROFILE_SORTS:
        raise ValueError("unknown profile sort %r (choose from %s)"
                         % (sort, ", ".join(PROFILE_SORTS)))
    config = boom_config(config_name)
    if benchmark not in THROUGHPUT_LABELS:
        raise ValueError("unknown bench workload %r (choose from %s)"
                         % (benchmark, ", ".join(THROUGHPUT_LABELS)))
    for label, program, warm in throughput_suite(scale=scale):
        if label == benchmark:
            break
    core = OoOCore(program, config=config, scheme=make_scheme(scheme_name),
                   warm_caches=warm, trace=_trace_for(program))
    profiler = cProfile.Profile()
    profiler.enable()
    result = core.run()
    profiler.disable()
    if as_json:
        return _profile_json(profiler, benchmark, config_name, scheme_name,
                             sort, top, result), result
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    return buffer.getvalue(), result


def _profile_json(profiler, benchmark, config_name, scheme_name, sort, top,
                  result):
    """Top-N profile rows as a JSON-ready dict (``--json`` contract)."""
    stats = pstats.Stats(profiler, stream=io.StringIO())
    # pstats rows: (file, line, func) -> (calls, prim_calls, tottime,
    # cumtime, callers); sort here instead of round-tripping the text.
    key = 2 if sort == "tottime" else 3
    rows = sorted(stats.stats.items(), key=lambda item: item[1][key],
                  reverse=True)[:max(1, top)]
    functions = [
        {
            "function": func,
            "file": filename,
            "line": line,
            "calls": calls,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        }
        for (filename, line, func), (calls, _prim, tottime, cumtime,
                                     _callers) in rows
    ]
    return {
        "benchmark": benchmark,
        "config": config_name,
        "scheme": scheme_name,
        "sort": sort,
        "top": top,
        "simulated_cycles": result.cycles,
        "committed_instructions": result.stats.committed_instructions,
        "host": host_metadata(),
        "functions": functions,
    }
