"""Cell simulation and the classic ``run_cells()`` seam.

A *cell spec* is the picklable tuple
``(benchmark, config, scheme_name, scheme_kwargs, scale, seed)`` — the
same identity that :func:`repro.harness.store.simulation_key` hashes,
and (in wire form, see :mod:`repro.harness.cluster.protocol`) the unit
of work the cluster coordinator hands to remote workers.

:func:`simulate_cell` executes one spec; every backend — the serial
loop, the multiprocessing pool, and cluster workers — funnels through
it, so a cell simulates identically wherever it lands.  Benchmark
programs come from the content-addressed
:mod:`~repro.workloads.program_cache`: generation is seeded and
per-benchmark independent (a subset build is bit-identical to a
full-suite build), and a worker looping over many cells of one
benchmark generates its program once.

:func:`run_cells` is the stable seam callers see.  Since the
:class:`~repro.harness.executor.Executor` protocol landed it is a thin
dispatcher: pass ``executor=`` for any backend (including the cluster),
or just ``jobs=`` for the classic serial/pool behaviour.
"""

import os
import threading

from repro.core.factory import make_scheme
from repro.obs import CycleAccount
from repro.pipeline.core import OoOCore
from repro.workloads.program_cache import cached_spec_program, cached_spec_trace


def default_jobs():
    """Worker count when the caller does not specify one."""
    return max(1, os.cpu_count() or 1)


#: Per-thread out-of-band diagnostics of the last simulate_cell() call
#: (cluster executor workers are threads sharing one process, so a
#: module global would race).  Deliberately NOT part of the result:
#: results must stay byte-identical across backends.
_cell_diag = threading.local()


def last_cell_diagnostics():
    """Executor-side extras of this thread's last cell (or ``None``):
    telemetry that has no business inside the stored result, e.g.
    fast-forward engagement."""
    return getattr(_cell_diag, "data", None)


def simulate_cell(spec):
    """Simulate one grid cell from its spec; returns a SimulationResult.

    Top-level (not nested) so it is picklable by multiprocessing.
    Raises ``KeyError`` for unknown benchmark names.

    The workload's canonical dynamic trace rides along with the program
    (same content-addressed cache, same disk directory), so every cell
    of a benchmark — across schemes, configs, processes, and cluster
    workers — replays one recording instead of re-evaluating per uop.

    Campaign cells always carry cycle accounting (see
    :mod:`repro.obs`): every backend funnels through here, so stored
    results gain identical ``cycacct.`` extras everywhere and the
    store stays byte-identical across serial / pool / cluster runs.
    """
    benchmark, config, scheme_name, scheme_kwargs, scale, seed = spec
    program = cached_spec_program(benchmark, scale=scale, seed=seed)
    trace = cached_spec_trace(benchmark, scale=scale, seed=seed)
    core = OoOCore(
        program,
        config=config,
        scheme=make_scheme(scheme_name, **dict(scheme_kwargs or {})),
        warm_caches=True,
        trace=trace,
        account=CycleAccount(),
    )
    result = core.run()
    _cell_diag.data = {
        "ff_skipped_cycles": core.ff_skipped_cycles,
        "replay_batch_events": core.replay_batch_events,
        "replay_batch_uops": core.replay_batch_uops,
    }
    return result


def _simulate_indexed(indexed_spec):
    """``(index, spec) -> (index, pid, result)`` for unordered pools.

    The index lets the pool stream completions out of order and still
    reassemble spec order; the pid provides per-worker attribution for
    progress reporting.
    """
    index, spec = indexed_spec
    return index, os.getpid(), simulate_cell(spec)


def run_cells(specs, jobs=None, progress=None, executor=None, on_result=None,
              on_failure=None):
    """Simulate every spec; returns results in spec order.

    The backend-agnostic seam: with ``executor=`` any
    :class:`~repro.harness.executor.Executor` (serial, pool, cluster)
    does the work; otherwise ``jobs`` selects the classic local
    behaviour — ``jobs=None`` fans out over :func:`default_jobs`
    processes, ``jobs<=1`` (or a single spec, or any failure to stand
    up a pool) runs serially in-process.
    """
    from repro.harness.executor import PoolExecutor, SerialExecutor

    specs = list(specs)
    if not specs:
        return []
    if executor is None:
        jobs = default_jobs() if jobs is None else int(jobs)
        jobs = min(jobs, len(specs))
        executor = SerialExecutor() if jobs <= 1 else PoolExecutor(jobs=jobs)
    return executor.run(specs, progress=progress, on_result=on_result,
                        on_failure=on_failure)
