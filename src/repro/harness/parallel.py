"""Parallel execution of campaign grid cells.

A *cell spec* is the picklable tuple
``(benchmark, config, scheme_name, scheme_kwargs, scale, seed)`` — the
same identity that :func:`repro.harness.store.simulation_key` hashes.
:func:`run_cells` shards a list of specs across a ``multiprocessing``
pool and returns results in spec order; each worker regenerates its
benchmark program locally (generation is seeded and per-benchmark
independent, so a subset build is bit-identical to a full-suite build)
and simulates the cell from scratch.  Anything that prevents pool
creation (restricted sandboxes, missing ``/dev/shm``) degrades to the
serial fallback rather than failing the campaign.
"""

import multiprocessing
import os

from repro.core.factory import make_scheme
from repro.pipeline.core import OoOCore
from repro.workloads.spec2017 import spec_suite


def default_jobs():
    """Worker count when the caller does not specify one."""
    return max(1, os.cpu_count() or 1)


def simulate_cell(spec):
    """Simulate one grid cell from its spec; returns a SimulationResult.

    Top-level (not nested) so it is picklable by multiprocessing.
    """
    benchmark, config, scheme_name, scheme_kwargs, scale, seed = spec
    programs = dict(spec_suite(scale=scale, seed=seed, benchmarks=(benchmark,)))
    core = OoOCore(
        programs[benchmark],
        config=config,
        scheme=make_scheme(scheme_name, **dict(scheme_kwargs or {})),
        warm_caches=True,
    )
    return core.run()


def run_cells(specs, jobs=None):
    """Simulate every spec, fanning out across ``jobs`` workers.

    Returns results in the same order as ``specs``.  ``jobs=None`` uses
    :func:`default_jobs`; ``jobs<=1`` (or a single spec, or any failure
    to stand up a pool) runs serially in-process.
    """
    specs = list(specs)
    if not specs:
        return []
    jobs = default_jobs() if jobs is None else int(jobs)
    jobs = min(jobs, len(specs))
    if jobs <= 1:
        return [simulate_cell(spec) for spec in specs]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        ctx = multiprocessing.get_context()
    # Only pool *creation* falls back to serial; once workers exist, an
    # exception raised inside simulate_cell propagates to the caller
    # (exactly as a serial run would) instead of silently discarding
    # the parallel work and re-running everything in-process.
    try:
        pool = ctx.Pool(processes=jobs)
    except (OSError, PermissionError, RuntimeError):
        return [simulate_cell(spec) for spec in specs]
    with pool:
        return pool.map(simulate_cell, specs, chunksize=1)
