"""Live progress and ETA reporting for campaign execution.

One :class:`ProgressReporter` is shared by every execution backend
(serial loop, multiprocessing pool, cluster coordinator): the runner
calls :meth:`ProgressReporter.begin` with the number of cells actually
going to execute, the backend calls :meth:`ProgressReporter.cell_done`
once per completed cell (attributing it to a worker), and the reporter
renders throttled status lines like::

    [grid] 12/32 cells | 3.1 cells/s | eta 6s | worker-1:5 worker-2:7

Graceful degradation (the cluster backend) reports the failure side
through the same object: :meth:`ProgressReporter.cell_failed` settles
a cell as failed or quarantined, :meth:`ProgressReporter.requeued`
counts cells put back after a worker death, and
:meth:`ProgressReporter.failure_cleared` un-settles a failure when a
late first result wins after all.  The status line appends
``N failed``/``N quarantined``/``N requeued`` only when nonzero, so
clean campaigns render exactly as before.

All methods are thread-safe — pool completions and cluster connection
threads report concurrently.  ``stream=None`` keeps the reporter
silent while still accumulating counters, which is how programmatic
callers (and tests) read progress without console noise.

``mode="json"`` swaps the human status line for machine-readable
JSONL: each emission is one :meth:`ProgressReporter.snapshot` dict on
a single line (same throttling), so scripts driving a campaign can
consume progress without parsing the human format.
"""

import json
import sys
import threading
import time


class ProgressReporter:
    """Counts completed cells; renders done/total, cells/sec, ETA."""

    def __init__(self, label="grid", stream=None, min_interval=0.5,
                 mode="human"):
        if mode not in ("human", "json"):
            raise ValueError("unknown progress mode %r" % (mode,))
        self.label = label
        self.stream = stream
        self.min_interval = min_interval
        self.mode = mode
        self.total = 0
        self.done = 0
        self.failed = 0
        self.quarantined = 0
        self.requeues = 0
        self.per_worker = {}
        self._lock = threading.Lock()
        self._started = None
        self._last_render = 0.0
        self._rendered_done = -1

    # -- lifecycle --------------------------------------------------------

    def begin(self, total):
        """Arm the reporter for ``total`` cells (resets counters)."""
        with self._lock:
            self.total = int(total)
            self.done = 0
            self.failed = 0
            self.quarantined = 0
            self.requeues = 0
            self.per_worker = {}
            self._started = time.monotonic()
            self._last_render = 0.0
            self._rendered_done = -1
        return self

    def cell_done(self, worker=None):
        """Record one completed cell, attributed to ``worker``."""
        with self._lock:
            if self._started is None:
                self._started = time.monotonic()
            self.done += 1
            if worker is not None:
                self.per_worker[worker] = self.per_worker.get(worker, 0) + 1
            line = self._maybe_render_locked()
        if line is not None:
            print(line, file=self.stream)

    def cell_failed(self, worker=None, kind="deterministic"):
        """Settle one cell as failed (``kind="poisoned"`` → quarantined)."""
        with self._lock:
            if self._started is None:
                self._started = time.monotonic()
            if kind == "poisoned":
                self.quarantined += 1
            else:
                self.failed += 1
            line = self._maybe_render_locked()
        if line is not None:
            print(line, file=self.stream)

    def failure_cleared(self, kind="deterministic"):
        """Un-settle a failure: a late first result won after all."""
        with self._lock:
            if kind == "poisoned":
                self.quarantined = max(0, self.quarantined - 1)
            else:
                self.failed = max(0, self.failed - 1)

    def requeued(self, count=1):
        """Record ``count`` cells put back on the queue (worker death)."""
        with self._lock:
            self.requeues += int(count)

    def finish(self):
        """Emit the final status line (unless it was just rendered)."""
        with self._lock:
            if self.stream is None or self._rendered_done == self.done:
                return
            line = self._render_locked()
        print(line, file=self.stream)

    # -- reading ----------------------------------------------------------

    def snapshot(self):
        """Current counters as a dict (thread-safe copy)."""
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self):
        elapsed = self._elapsed_locked()
        rate = self.done / elapsed if elapsed > 0 else 0.0
        remaining = max(0, self.total - self._settled_locked())
        return {
            "label": self.label,
            "done": self.done,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "requeues": self.requeues,
            "total": self.total,
            "elapsed_seconds": elapsed,
            "cells_per_second": rate,
            "eta_seconds": remaining / rate if rate > 0 else None,
            "per_worker": dict(self.per_worker),
        }

    def render(self):
        """The status line for the current counters."""
        with self._lock:
            return self._render_locked()

    # -- internals --------------------------------------------------------

    def _elapsed_locked(self):
        if self._started is None:
            return 0.0
        return time.monotonic() - self._started

    def _settled_locked(self):
        return self.done + self.failed + self.quarantined

    def _maybe_render_locked(self):
        if self.stream is None:
            return None
        now = time.monotonic()
        if (now - self._last_render < self.min_interval
                and self._settled_locked() < self.total):
            return None
        self._last_render = now
        self._rendered_done = self.done
        return self._render_locked()

    def _render_locked(self):
        if self.mode == "json":
            return json.dumps(self._snapshot_locked(), sort_keys=True)
        elapsed = self._elapsed_locked()
        rate = self.done / elapsed if elapsed > 0 else 0.0
        parts = ["[%s] %d/%d cells" % (self.label, self.done, self.total)]
        if self.failed:
            parts.append("%d failed" % self.failed)
        if self.quarantined:
            parts.append("%d quarantined" % self.quarantined)
        if self.requeues:
            parts.append("%d requeued" % self.requeues)
        parts.append("%.1f cells/s" % rate)
        settled = self._settled_locked()
        remaining = max(0, self.total - settled)
        if settled >= self.total and self.total:
            parts.append("done in %.1fs" % elapsed)
        elif rate > 0:
            parts.append("eta %.0fs" % (remaining / rate))
        else:
            parts.append("eta ?")
        if self.per_worker:
            attribution = " ".join(
                "%s:%d" % (worker, count)
                for worker, count in sorted(self.per_worker.items())
            )
            parts.append(attribution)
        return " | ".join(parts)


def make_progress(enabled, label="grid", stream=None):
    """A reporter printing to ``stream`` (stderr) when enabled, else None.

    ``enabled`` is falsy (silent), truthy (human line), or one of the
    mode strings ``"human"`` / ``"json"`` — the CLI's ``--progress
    [MODE]`` maps straight through.
    """
    if not enabled:
        return None
    mode = enabled if isinstance(enabled, str) else "human"
    return ProgressReporter(label=label,
                            stream=stream if stream is not None else sys.stderr,
                            mode=mode)
