"""Append-only campaign journal: what a crashed coordinator knew.

The :class:`~repro.harness.store.ResultStore` is the authority on
*completed* cells (results stream into it as they arrive), but it says
nothing about campaign *shape*: which cells were in flight when the
coordinator died, how many workers a cell has already killed, which
cells were quarantined.  :class:`CampaignJournal` records exactly that
as one JSON line per event under the store directory, so a restarted
``serve --resume`` reconstructs the campaign instead of starting cold.

Layout: the header (campaign identity: every cell key in queue order)
is written atomically via temp-file + rename, like ``store.py`` writes
cells — a crash never leaves a half-written header.  Events append to
the same file with a flush per line; :func:`CampaignJournal.load`
tolerates a truncated final line (the one write a crash can interrupt)
by dropping it.

Events (all carry the cell's content-addressed ``key``, never a
position — a resumed campaign serves a *subset* of the original specs,
so positions do not survive restarts)::

    {"journal": "campaign-v1", "keys": [...]}          header
    {"event": "resume"}                                 new session
    {"event": "steal", "key": k, "worker": w}
    {"event": "done", "key": k}
    {"event": "requeue", "key": k, "attempts": n}
    {"event": "quarantine", "key": k, "failure": {...}}
    {"event": "failure", "key": k, "failure": {...}}
    {"event": "unfail", "key": k}                       late result won

Replay (:class:`JournalState`) is intentionally conservative: the
store remains authoritative for done-ness (a ``done`` event whose
result never reached the store is re-queued by the runner), the
journal contributes ordering (in-flight cells resume at the front),
attempt counts (a poison cell does not get a fresh life per restart),
and quarantine/failure records.
"""

import json
import os
import pathlib
import tempfile
import threading

#: Journal format generation, embedded in the header.
JOURNAL_FORMAT = "campaign-v1"

#: Default journal filename under the store directory.
DEFAULT_JOURNAL_NAME = "campaign.journal.jsonl"


class JournalState:
    """Replayed view of a journal: what resume needs to know."""

    def __init__(self):
        self.keys = []  # original queue order (header)
        self.done = set()  # keys with a recorded result
        self.in_flight = {}  # key -> steal sequence (stolen, unsettled)
        self.attempts = {}  # key -> worker deaths attributed so far
        self.quarantined = {}  # key -> failure record (dict)
        self.failed = {}  # key -> failure record (dict)
        self.sessions = 1  # 1 + number of resume markers

    def resume_order(self, keys):
        """Sort ``keys`` for re-queueing: in-flight first, header order.

        Cells that were in flight when the coordinator died were stolen
        earliest; finishing them first keeps campaign latency bounded —
        the same policy as the live requeue path.
        """
        position = {key: i for i, key in enumerate(self.keys)}
        fallback = len(position)

        def rank(key):
            stolen = self.in_flight.get(key)
            return (0, stolen) if stolen is not None else (
                1, position.get(key, fallback))

        return sorted(keys, key=rank)


class CampaignJournal:
    """One campaign's append-only event log on disk."""

    def __init__(self, path):
        self.path = pathlib.Path(path)
        self._handle = None
        self._lock = threading.Lock()

    # -- writing ----------------------------------------------------------

    def begin(self, keys):
        """Start a fresh campaign: atomically replace any old journal."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = json.dumps({"journal": JOURNAL_FORMAT,
                             "keys": list(keys)},
                            separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=str(self.path.parent),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(header + "\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._handle = open(self.path, "a")
        return self

    def resume(self):
        """Append to an existing journal, marking a new session."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a")
        self.append({"event": "resume"})
        return self

    def append(self, record):
        """Append one event line (flushed; safe from many threads)."""
        if self._handle is None:
            raise RuntimeError("journal not opened: call begin() or"
                               " resume() first")
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self):
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- replay -----------------------------------------------------------

    @classmethod
    def load(cls, path):
        """Replay the journal at ``path`` into a :class:`JournalState`.

        Returns ``None`` when no readable journal exists (no file, or a
        header that is not ours).  A truncated trailing line — the one
        write a crash can interrupt — is silently dropped; any other
        undecodable line ends the replay at that point (everything
        before it is still a consistent prefix).
        """
        path = pathlib.Path(path)
        try:
            with open(path) as handle:
                lines = handle.read().splitlines()
        except OSError:
            return None
        if not lines:
            return None
        try:
            header = json.loads(lines[0])
        except ValueError:
            return None
        if (not isinstance(header, dict)
                or header.get("journal") != JOURNAL_FORMAT):
            return None
        state = JournalState()
        state.keys = [str(key) for key in header.get("keys", [])]
        sequence = 0
        for index, line in enumerate(lines[1:], start=1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except ValueError:
                if index == len(lines) - 1:
                    continue  # truncated final append; drop it
                break  # corrupt interior line: keep the prefix
            if not isinstance(event, dict):
                break
            kind = event.get("event")
            key = event.get("key")
            if kind == "resume":
                state.sessions += 1
            elif kind == "steal":
                if key not in state.done:
                    sequence += 1
                    state.in_flight[key] = sequence
            elif kind == "done":
                state.done.add(key)
                state.in_flight.pop(key, None)
                state.quarantined.pop(key, None)
                state.failed.pop(key, None)
            elif kind == "requeue":
                state.attempts[key] = int(event.get("attempts", 0))
                state.in_flight.pop(key, None)
            elif kind == "quarantine":
                failure = event.get("failure") or {}
                state.quarantined[key] = failure
                state.attempts[key] = int(
                    failure.get("attempts", state.attempts.get(key, 0)))
                state.in_flight.pop(key, None)
            elif kind == "failure":
                state.failed[key] = event.get("failure") or {}
                state.in_flight.pop(key, None)
            elif kind == "unfail":
                state.quarantined.pop(key, None)
                state.failed.pop(key, None)
        return state


def journal_path(store_dir):
    """Canonical journal location for a store rooted at ``store_dir``."""
    return pathlib.Path(store_dir) / DEFAULT_JOURNAL_NAME
