"""Segment files + SQLite manifest: the ResultStore's on-disk format.

The segment-backed store (format ``segments-v1``) replaces one JSON
file per cell with two cooperating structures under the store root:

``segments/seg-NNNNNN.seg``
    Append-only **segment files**.  Each record is::

        +--------+-------------+------------+------------------------+
        | magic  | payload len | CRC32      | payload                |
        | "SBR1" | u32 big-end | u32 big-end| zlib(canonical JSON)   |
        +--------+-------------+------------+------------------------+

    The payload is the same envelope the JSON-per-cell format stored
    (``{"key", "model_version", "meta", "result"}``), serialised as
    canonical JSON (sorted keys, compact separators) and
    zlib-compressed.  Records are the single source of truth: every
    manifest column below can be rebuilt from them.  A writer appends
    a record and flushes *before* indexing it, so a crash can only
    leave an unindexed orphan tail — never an indexed cell without
    bytes.  Each :class:`~repro.harness.store.ResultStore` instance
    appends to its own segment (allocated through the manifest, so
    concurrent writers never interleave) and seals it when it grows
    past :data:`DEFAULT_SEGMENT_BYTES`.

``manifest.db``
    A stdlib :mod:`sqlite3` **manifest + key index**.  The ``cells``
    table maps every *full* 64-hex key (no 12-character prefix
    ambiguity) to its segment/offset/length, and additionally carries
    the cross-cell query columns (benchmark, config, scheme, model
    version), the hot counters (``cycles``, ``committed``), and a
    pickled :class:`~repro.pipeline.stats.SimStats` blob — the
    columnar fast path that lets analysis read per-cell statistics
    without touching (or decompressing) any segment payload.  The
    ``segments`` table allocates segment ids and tracks sealing.  WAL
    journaling keeps one writer and any number of readers (threads or
    processes) live on the same store.

Compaction (:meth:`ResultStore.compact`) rewrites the live records of
all segments into fresh sealed ones — folding the one-record segments
that crash-resumed or many-instance campaigns leave behind, and
reclaiming dead bytes from overwritten, evicted, or orphaned records.
Records are copied verbatim (CRC-checked, never re-encoded), so
compaction can never alter a stored result.
"""

import json
import os
import pathlib
import sqlite3
import struct
import threading
import zlib

#: Manifest filename under the store root.
MANIFEST_NAME = "manifest.db"

#: Directory (under the store root) holding segment files.
SEGMENT_DIR = "segments"

#: Segment file suffix; quarantined segments gain ``.corrupt`` on top.
SEGMENT_SUFFIX = ".seg"

#: Record header: magic, payload length, CRC32 of the payload.
RECORD_MAGIC = b"SBR1"
_HEADER = struct.Struct(">4sII")
RECORD_HEADER_BYTES = _HEADER.size

#: Manifest format generation (``meta`` table, key ``format``).
FORMAT_VERSION = "segments-v1"

#: Seal threshold: a writer rolls to a fresh segment past this size.
DEFAULT_SEGMENT_BYTES = int(
    os.environ.get("REPRO_STORE_SEGMENT_BYTES", 8 * 1024 * 1024))

#: zlib level for record payloads: decompression speed over ratio —
#: bulk reads decompress every record they touch.
COMPRESS_LEVEL = 1


class CorruptRecord(ValueError):
    """A segment record failed its magic/length/CRC/JSON validation."""


def encode_envelope(envelope):
    """Canonical JSON + zlib: the record payload for one envelope.

    Returns ``(payload, raw_length)`` — the compressed bytes and the
    pre-compression size (kept in the manifest for compression-ratio
    accounting).
    """
    raw = json.dumps(envelope, sort_keys=True,
                     separators=(",", ":")).encode("utf-8")
    return zlib.compress(raw, COMPRESS_LEVEL), len(raw)


def decode_envelope(payload):
    """Inverse of :func:`encode_envelope`; raises on undecodable data."""
    return json.loads(zlib.decompress(payload).decode("utf-8"))


def pack_record(payload):
    """Frame one payload as a segment record (header + payload)."""
    return _HEADER.pack(RECORD_MAGIC, len(payload),
                        zlib.crc32(payload) & 0xFFFFFFFF) + payload


def unpack_record(record):
    """Validate one framed record; returns the payload bytes.

    Raises :class:`CorruptRecord` on a bad magic, a length that does
    not match the frame, or a CRC mismatch (torn or bit-rotted write).
    """
    if len(record) < RECORD_HEADER_BYTES:
        raise CorruptRecord("record shorter than its header")
    magic, length, crc = _HEADER.unpack_from(record)
    if magic != RECORD_MAGIC:
        raise CorruptRecord("bad record magic %r" % magic)
    payload = record[RECORD_HEADER_BYTES:]
    if len(payload) != length:
        raise CorruptRecord("record length mismatch (%d != %d)"
                            % (len(payload), length))
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise CorruptRecord("record CRC mismatch (torn or corrupt write)")
    return payload


def segment_name(segment_id):
    """Canonical filename for a segment id."""
    return "seg-%06d%s" % (segment_id, SEGMENT_SUFFIX)


_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    k TEXT PRIMARY KEY,
    v TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS segments (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    name TEXT UNIQUE NOT NULL,
    sealed INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS cells (
    key TEXT PRIMARY KEY,
    segment INTEGER NOT NULL,
    offset INTEGER NOT NULL,
    length INTEGER NOT NULL,
    raw_length INTEGER NOT NULL,
    benchmark TEXT,
    config TEXT,
    scheme TEXT,
    model_version TEXT,
    halted INTEGER,
    result_cycles INTEGER,
    cycles INTEGER,
    committed INTEGER,
    stats BLOB
);
CREATE INDEX IF NOT EXISTS cells_by_segment ON cells(segment, offset);
CREATE INDEX IF NOT EXISTS cells_by_scheme ON cells(scheme);
CREATE INDEX IF NOT EXISTS cells_by_benchmark ON cells(benchmark);
"""

#: Column list for one cell row, in INSERT order.
_CELL_COLUMNS = ("key", "segment", "offset", "length", "raw_length",
                 "benchmark", "config", "scheme", "model_version",
                 "halted", "result_cycles", "cycles", "committed", "stats")

_INSERT_CELL = ("INSERT OR REPLACE INTO cells (%s) VALUES (%s)"
                % (", ".join(_CELL_COLUMNS),
                   ", ".join("?" * len(_CELL_COLUMNS))))

#: Cell columns + the owning segment's filename, as every reader wants.
_SELECT_CELL = ("SELECT c.*, s.name AS segment_name"
                " FROM cells c JOIN segments s ON s.id = c.segment")

#: SQLite limits ``IN (...)`` parameter lists; chunk batched lookups.
_IN_CHUNK = 500


class Manifest:
    """Thread-safe wrapper around the store's SQLite manifest."""

    def __init__(self, path):
        self.path = pathlib.Path(path)
        self._conn = None
        self._lock = threading.RLock()

    # -- connection -------------------------------------------------------

    def _db(self):
        if self._conn is None:
            conn = sqlite3.connect(str(self.path), timeout=30.0,
                                   check_same_thread=False,
                                   isolation_level=None)
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA busy_timeout=30000")
            try:
                conn.execute("PRAGMA journal_mode=WAL")
            except sqlite3.DatabaseError:
                pass  # WAL unsupported (exotic fs): default journal works
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            row = conn.execute("SELECT v FROM meta WHERE k='format'"
                               ).fetchone()
            if row is None:
                conn.execute("INSERT OR IGNORE INTO meta VALUES ('format',?)",
                             (FORMAT_VERSION,))
            elif row["v"] != FORMAT_VERSION:
                conn.close()
                raise RuntimeError(
                    "store manifest %s has format %r (this build reads %r);"
                    " rebuild it with 'python -m repro store migrate'"
                    % (self.path, row["v"], FORMAT_VERSION))
            self._conn = conn
        return self._conn

    def close(self):
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    # -- segments ---------------------------------------------------------

    def add_segment(self):
        """Allocate a fresh segment id + name; returns ``(id, name)``."""
        with self._lock:
            db = self._db()
            cur = db.execute(
                "INSERT INTO segments (name) VALUES ('pending')")
            segment_id = cur.lastrowid
            name = segment_name(segment_id)
            db.execute("UPDATE segments SET name=? WHERE id=?",
                       (name, segment_id))
            return segment_id, name

    def seal_segment(self, segment_id):
        with self._lock:
            self._db().execute("UPDATE segments SET sealed=1 WHERE id=?",
                               (segment_id,))

    def segments(self):
        with self._lock:
            return self._db().execute(
                "SELECT id, name, sealed FROM segments ORDER BY id"
            ).fetchall()

    def delete_segment(self, segment_id):
        with self._lock:
            self._db().execute("DELETE FROM segments WHERE id=?",
                               (segment_id,))

    # -- cells ------------------------------------------------------------

    def upsert_cell(self, row):
        """Insert or replace one cell row (a dict over _CELL_COLUMNS)."""
        with self._lock:
            self._db().execute(_INSERT_CELL,
                               tuple(row[c] for c in _CELL_COLUMNS))

    def cell(self, key):
        with self._lock:
            return self._db().execute(
                _SELECT_CELL + " WHERE c.key=?", (key,)).fetchone()

    def cells_for(self, keys):
        """Batched lookup: ``{key: row}`` for every hit."""
        keys = list(keys)
        found = {}
        with self._lock:
            db = self._db()
            for start in range(0, len(keys), _IN_CHUNK):
                chunk = keys[start:start + _IN_CHUNK]
                query = (_SELECT_CELL + " WHERE c.key IN (%s)"
                         % ",".join("?" * len(chunk)))
                for row in db.execute(query, chunk):
                    found[row["key"]] = row
        return found

    def iter_cells(self, with_stats=True):
        """Every cell row in (segment, offset) order, fetched in chunks.

        ``with_stats=False`` skips the stats blob column — the full
        bulk-decode path reads payloads anyway and should not drag
        every pickled blob through memory as well.
        """
        columns = ("c.*" if with_stats else
                   ", ".join("c.%s" % c for c in _CELL_COLUMNS
                             if c != "stats"))
        query = ("SELECT %s, s.name AS segment_name FROM cells c"
                 " JOIN segments s ON s.id = c.segment"
                 " ORDER BY c.segment, c.offset" % columns)
        with self._lock:
            cursor = self._db().execute(query)
            while True:
                rows = cursor.fetchmany(1024)
                if not rows:
                    return
                for row in rows:
                    yield row

    def keys(self):
        with self._lock:
            return [row[0] for row in
                    self._db().execute("SELECT key FROM cells")]

    def count(self):
        with self._lock:
            return self._db().execute(
                "SELECT COUNT(*) FROM cells").fetchone()[0]

    def has_key(self, key):
        with self._lock:
            return self._db().execute(
                "SELECT 1 FROM cells WHERE key=?", (key,)
            ).fetchone() is not None

    def delete_cells(self, keys):
        keys = list(keys)
        with self._lock:
            db = self._db()
            for start in range(0, len(keys), _IN_CHUNK):
                chunk = keys[start:start + _IN_CHUNK]
                db.execute("DELETE FROM cells WHERE key IN (%s)"
                           % ",".join("?" * len(chunk)), chunk)

    def cells_in_segment(self, segment_id):
        with self._lock:
            return self._db().execute(
                _SELECT_CELL + " WHERE c.segment=? ORDER BY c.offset",
                (segment_id,)).fetchall()

    def relocate_cell(self, key, segment_id, offset):
        with self._lock:
            self._db().execute(
                "UPDATE cells SET segment=?, offset=? WHERE key=?",
                (segment_id, offset, key))

    def relocate_cells(self, moves):
        """Batched relocation: ``moves`` is ``(segment_id, offset, key)``
        triples, applied in one transaction."""
        if not moves:
            return
        with self._lock:
            db = self._db()
            db.execute("BEGIN")
            try:
                db.executemany(
                    "UPDATE cells SET segment=?, offset=? WHERE key=?",
                    moves)
                db.execute("COMMIT")
            except sqlite3.Error:
                db.execute("ROLLBACK")
                raise

    def totals(self):
        """``(live_record_bytes, raw_payload_bytes)`` over all cells."""
        with self._lock:
            row = self._db().execute(
                "SELECT COALESCE(SUM(length),0),"
                " COALESCE(SUM(raw_length),0) FROM cells").fetchone()
            return row[0], row[1]
