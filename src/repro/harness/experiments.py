"""One experiment per paper table/figure.

Each ``experiment_*`` function consumes a shared
:class:`~repro.harness.runner.CampaignRunner`, produces the paper
artefact as structured data, and renders a text report.  The
``benchmarks/`` harness calls these and prints/records the reports, so
``pytest benchmarks/ --benchmark-only`` regenerates the whole
evaluation section.
"""

from dataclasses import dataclass, field

from repro.analysis.ipc import normalized_ipc, suite_mean_ipc, suite_normalized_ipc
from repro.core.registry import grid_scheme_names, secure_scheme_names
from repro.analysis.performance import scheme_performance
from repro.analysis.reporting import format_table, text_bar_chart
from repro.analysis.trends import (
    REDWOOD_COVE_IPC,
    extrapolate,
    fit_trend,
    halved_slope_estimate,
)
from repro.pipeline.config import named_configs
from repro.timing.area import estimate_area
from repro.timing.power import estimate_power
from repro.timing.synthesis import relative_timing, synthesize

#: Secure schemes evaluated in every table/figure, derived from the
#: scheme registry (the paper's three designs plus later variants).
SCHEMES = secure_scheme_names()


@dataclass
class ExperimentReport:
    """Rendered text + structured data for one experiment."""

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self):
        return "%s\n%s\n%s" % (self.title, "=" * len(self.title), self.text)


# ----------------------------------------------------------------------
# Table 1: configurations and baseline absolute IPC.
# ----------------------------------------------------------------------

def experiment_table1(runner):
    rows = []
    data = {}
    for config in named_configs():
        results = runner.suite_results(config, "baseline")
        ipc = suite_mean_ipc(results)
        data[config.name] = ipc
        rows.append(
            [config.name, config.width, config.mem_width, config.rob_entries,
             ipc]
        )
    text = format_table(
        ["Config", "Core Width", "Memory Ports", "ROB Entries", "SPEC2017 IPC"],
        rows,
        title="Table 1: BOOM configurations, baseline absolute IPC",
    )
    text += (
        "\nIntel Redwood Cove reference: width 6, SPEC2017 IPC %.2f (from"
        " the paper's Table 1)." % REDWOOD_COVE_IPC
    )
    return ExperimentReport("table1", "Table 1 — configurations", text, data)


# ----------------------------------------------------------------------
# Figure 6: per-benchmark normalized IPC at Mega.
# ----------------------------------------------------------------------

def experiment_figure6(runner, config=None):
    from repro.pipeline.config import MEGA

    config = config or MEGA
    baseline = {
        name: runner.run(name, config, "baseline") for name in runner.benchmarks
    }
    data = {}
    rows = []
    for name in runner.benchmarks:
        row = [name]
        per_scheme = {}
        for scheme in SCHEMES:
            result = runner.run(name, config, scheme)
            value = normalized_ipc(result, baseline[name])
            per_scheme[scheme] = value
            row.append(value)
        data[name] = per_scheme
        rows.append(row)

    means = {}
    baseline_results = list(baseline.values())
    for scheme in SCHEMES:
        scheme_results = [runner.run(n, config, scheme) for n in runner.benchmarks]
        means[scheme] = suite_normalized_ipc(scheme_results, baseline_results)
    rows.append(["arithmetic-mean"] + [means[s] for s in SCHEMES])
    data["arithmetic-mean"] = means

    text = format_table(
        ["Benchmark"] + list(SCHEMES),
        rows,
        title="Figure 6: IPC normalized to baseline (%s config)" % config.name,
    )
    return ExperimentReport("figure6", "Figure 6 — normalized IPC", text, data)


# ----------------------------------------------------------------------
# Figure 7: normalized IPC per scheme across all four configurations.
# ----------------------------------------------------------------------

def experiment_figure7(runner, configs=None):
    configs = list(configs or named_configs())
    data = {}
    sections = []
    for scheme in SCHEMES:
        per_config = {}
        rows = []
        for name in runner.benchmarks:
            row = [name]
            for config in configs:
                base = runner.run(name, config, "baseline")
                result = runner.run(name, config, scheme)
                value = normalized_ipc(result, base)
                per_config.setdefault(config.name, {})[name] = value
                row.append(value)
            rows.append(row)
        mean_row = ["arithmetic-mean"]
        for config in configs:
            baseline_results = runner.suite_results(config, "baseline")
            scheme_results = runner.suite_results(config, scheme)
            mean = suite_normalized_ipc(scheme_results, baseline_results)
            per_config[config.name]["arithmetic-mean"] = mean
            mean_row.append(mean)
        rows.append(mean_row)
        data[scheme] = per_config
        sections.append(
            format_table(
                # Headers come from the configs actually iterated, so a
                # custom config list never mislabels columns.
                ["Benchmark"] + [config.name for config in configs],
                rows,
                title="Figure 7 (%s): normalized IPC per configuration" % scheme,
            )
        )
    return ExperimentReport(
        "figure7", "Figure 7 — IPC across configurations",
        "\n\n".join(sections), data,
    )


# ----------------------------------------------------------------------
# Figure 8: relative IPC vs absolute IPC, with trend lines.
# ----------------------------------------------------------------------

def experiment_figure8(runner):
    data = {}
    lines = []
    baseline_ipcs = {}
    for config in named_configs():
        baseline_ipcs[config.name] = suite_mean_ipc(
            runner.suite_results(config, "baseline")
        )
    for scheme in SCHEMES:
        xs, ys = [], []
        for config in named_configs():
            baseline_results = runner.suite_results(config, "baseline")
            scheme_results = runner.suite_results(config, scheme)
            xs.append(baseline_ipcs[config.name])
            ys.append(suite_normalized_ipc(scheme_results, baseline_results))
        fit = fit_trend(xs, ys)
        redwood = extrapolate(fit)
        data[scheme] = {
            "points": list(zip(xs, ys)),
            "slope": fit.slope,
            "intercept": fit.intercept,
            "redwood_cove_linear": redwood,
        }
        lines.append(
            "%-11s points: %s | trend y = %.3f x + %.3f | linear @IPC %.2f"
            " -> %.3f"
            % (
                scheme,
                " ".join("(%.2f, %.3f)" % (x, y) for x, y in zip(xs, ys)),
                fit.slope,
                fit.intercept,
                REDWOOD_COVE_IPC,
                redwood,
            )
        )
    text = "Figure 8: relative IPC vs baseline absolute IPC\n" + "\n".join(lines)
    return ExperimentReport("figure8", "Figure 8 — IPC trend", text, data)


# ----------------------------------------------------------------------
# Figure 9: achieved synthesis frequency per configuration.
# ----------------------------------------------------------------------

def experiment_figure9(runner=None):
    data = {}
    sections = []
    for config in named_configs():
        per_scheme = {}
        labels, values = [], []
        for scheme in ("baseline",) + SCHEMES:
            result = synthesize(config, scheme)
            per_scheme[scheme] = {
                "mhz": result.frequency_mhz,
                "critical_stage": result.critical_stage,
            }
            labels.append("%-10s (%s)" % (scheme, result.critical_stage[:6]))
            values.append(result.frequency_mhz)
        data[config.name] = per_scheme
        sections.append(
            text_bar_chart(
                labels, values,
                title="Figure 9 (%s BOOM): achieved MHz" % config.name,
                max_value=max(values),
            )
        )
    return ExperimentReport(
        "figure9", "Figure 9 — synthesis timing", "\n\n".join(sections), data
    )


# ----------------------------------------------------------------------
# Figure 10: relative timing vs absolute IPC, with trend.
# ----------------------------------------------------------------------

def experiment_figure10(runner):
    data = {}
    lines = []
    for scheme in SCHEMES:
        xs, ys = [], []
        for config in named_configs():
            xs.append(suite_mean_ipc(runner.suite_results(config, "baseline")))
            ys.append(relative_timing(config, scheme))
        fit = fit_trend(xs, ys)
        data[scheme] = {"points": list(zip(xs, ys)), "slope": fit.slope}
        lines.append(
            "%-11s %s | trend slope %.3f"
            % (
                scheme,
                " ".join("(%.2f, %.3f)" % (x, y) for x, y in zip(xs, ys)),
                fit.slope,
            )
        )
    text = (
        "Figure 10: relative timing (vs baseline) across baseline absolute"
        " IPC\n" + "\n".join(lines)
    )
    return ExperimentReport("figure10", "Figure 10 — timing trend", text, data)


# ----------------------------------------------------------------------
# Figure 1 / Table 3: performance = IPC x timing (+ Redwood Cove).
# ----------------------------------------------------------------------

def experiment_table3(runner):
    data = {}
    rows = []
    config_names = [c.name for c in named_configs()]
    for scheme in SCHEMES:
        xs, perfs = [], []
        per_config = {}
        for config in named_configs():
            baseline_results = runner.suite_results(config, "baseline")
            scheme_results = runner.suite_results(config, scheme)
            baseline_ipc = suite_mean_ipc(baseline_results)
            rel_ipc = suite_normalized_ipc(scheme_results, baseline_results)
            point = scheme_performance(config, scheme, rel_ipc, baseline_ipc)
            per_config[config.name] = point.relative_performance
            xs.append(baseline_ipc)
            perfs.append(point.relative_performance)
        fit = fit_trend(xs, perfs)
        intel = halved_slope_estimate(fit)
        per_config["intel"] = intel
        data[scheme] = per_config
        rows.append(
            [scheme] + [per_config[name] for name in config_names] + [intel]
        )
    text = format_table(
        ["Scheme"] + config_names + ["Intel (halved slope)"],
        rows,
        title=(
            "Table 3 / Figure 1: normalized performance (IPC x timing);"
            " Intel = Redwood Cove-class estimate at IPC %.2f" % REDWOOD_COVE_IPC
        ),
    )
    return ExperimentReport(
        "table3", "Table 3 / Figure 1 — performance", text, data
    )


# ----------------------------------------------------------------------
# Table 4: area and power at the fixed synthesis frequency.
# ----------------------------------------------------------------------

def experiment_table4(runner, config=None):
    from repro.pipeline.config import MEGA

    config = config or MEGA
    baseline_area = estimate_area(config, "baseline")
    baseline_results = runner.suite_results(config, "baseline")
    baseline_power = _suite_power(config, "baseline", baseline_results)

    rows = []
    data = {}
    for scheme in SCHEMES:
        area = estimate_area(config, scheme)
        rel_luts, rel_ffs = area.relative_to(baseline_area)
        scheme_results = runner.suite_results(config, scheme)
        power = _suite_power(config, scheme, scheme_results)
        rel_power = power / baseline_power
        data[scheme] = {"luts": rel_luts, "ffs": rel_ffs, "power": rel_power}
        rows.append([scheme, rel_luts, rel_ffs, rel_power])
    text = format_table(
        ["Scheme", "LUTs", "FFs", "Power"],
        rows,
        title=(
            "Table 4: area and power normalized to baseline"
            " (%s config, fixed 50 MHz)" % config.name
        ),
    )
    return ExperimentReport("table4", "Table 4 — area and power", text, data)


def _suite_power(config, scheme, results):
    total = 0.0
    for result in results:
        total += estimate_power(config, scheme, result.stats).total
    return total / max(1, len(results))


# ----------------------------------------------------------------------
# Table 5: BOOM vs gem5 IPC losses.
# ----------------------------------------------------------------------

def experiment_table5(runner, gem5_scale=None):
    from repro.gem5.model import GEM5_EXCLUDED, Gem5Model
    from repro.pipeline.config import LARGE, MEDIUM, MEGA

    comparable = [b for b in runner.benchmarks if b not in GEM5_EXCLUDED]
    rows = []
    data = {}
    for config in (MEDIUM, LARGE, MEGA):
        baseline_results = runner.suite_results(config, "baseline", comparable)
        base_ipc = suite_mean_ipc(baseline_results)
        row = ["BOOM " + config.name, base_ipc]
        losses = {}
        for scheme in SCHEMES:
            scheme_results = runner.suite_results(config, scheme, comparable)
            loss = 1.0 - suite_normalized_ipc(scheme_results, baseline_results)
            losses[scheme] = loss
            row.append("%.1f%%" % (100.0 * loss))
        data["boom-" + config.name] = {"baseline_ipc": base_ipc, **losses}
        rows.append(row)

    scale = gem5_scale if gem5_scale is not None else runner.scale
    for which, scheme in (("stt", "stt-rename"), ("nda", "nda")):
        model = Gem5Model(which, scale=scale, seed=runner.seed)
        baseline = list(model.run_suite("baseline").values())
        scheme_res = list(model.run_suite(scheme).values())
        base_ipc = suite_mean_ipc(baseline)
        loss = 1.0 - suite_normalized_ipc(scheme_res, baseline)
        data["gem5-" + which] = {"baseline_ipc": base_ipc, scheme: loss}
        row = ["gem5 (%s cfg)" % which, base_ipc]
        for s in SCHEMES:
            row.append("%.1f%%" % (100.0 * loss) if s == scheme else "N/A")
        rows.append(row)

    text = format_table(
        ["Configuration", "Baseline IPC"]
        + ["%s loss" % scheme for scheme in SCHEMES],
        rows,
        title=(
            "Table 5: IPC loss, BOOM configurations vs gem5-proxy"
            " configurations (namd/parest/povray excluded, per the paper)"
        ),
    )
    return ExperimentReport("table5", "Table 5 — BOOM vs gem5", text, data)


# ----------------------------------------------------------------------
# Section 8.1 / 9.2: the exchange2 forwarding anomaly.
# ----------------------------------------------------------------------

def experiment_exchange2(runner, config=None):
    from repro.pipeline.config import MEGA

    config = config or MEGA
    benchmark = "548.exchange2"
    rows = []
    data = {}
    for scheme in ("baseline",) + SCHEMES:
        result = runner.run(benchmark, config, scheme)
        stats = result.stats
        data[scheme] = {
            "ipc": stats.ipc,
            "stl_forward_errors": stats.stl_forward_errors,
            "flushes": stats.order_violation_flushes,
            "partial_store_issues": stats.partial_store_issues,
        }
        rows.append(
            [scheme, stats.ipc, stats.stl_forward_errors,
             stats.order_violation_flushes, stats.partial_store_issues]
        )
    base_err = max(1, data["nda"]["stl_forward_errors"])
    ratio = data["stt-rename"]["stl_forward_errors"] / base_err
    text = format_table(
        ["Scheme", "IPC", "STL fwd errors", "Violation flushes",
         "Partial store issues"],
        rows,
        title="Section 9.2: exchange2 store-to-load forwarding anomaly",
    )
    text += (
        "\nSTT-Rename incurs %.0fx the forwarding errors of NDA"
        " (paper reports 1350x on full SPEC runs)." % max(ratio, 1.0)
    )
    data["error_ratio_vs_nda"] = ratio
    return ExperimentReport(
        "exchange2", "Section 9.2 — exchange2 anomaly", text, data
    )


# ----------------------------------------------------------------------
# Ablation: split store taints for STT-Rename (Section 9.2 proposal).
# ----------------------------------------------------------------------

def experiment_ablation_store_taints(runner, config=None):
    from repro.core.stt_rename import STTRenameScheme
    from repro.pipeline.config import MEGA
    from repro.pipeline.core import OoOCore

    config = config or MEGA
    benchmark = "548.exchange2"
    program = runner.programs()[benchmark]

    rows = []
    data = {}
    for label, split in (("unified (paper design)", False),
                         ("split taints (Section 9.2 fix)", True)):
        core = OoOCore(program, config=config, warm_caches=True,
                       scheme=STTRenameScheme(split_store_taints=split))
        result = core.run()
        data[label] = {
            "ipc": result.stats.ipc,
            "stl_forward_errors": result.stats.stl_forward_errors,
        }
        rows.append([label, result.stats.ipc, result.stats.stl_forward_errors])
    text = format_table(
        ["STT-Rename store tainting", "IPC", "STL fwd errors"],
        rows,
        title="Ablation: unified vs split store taints on exchange2",
    )
    return ExperimentReport(
        "ablation-store-taints", "Ablation — split store taints", text, data
    )


# ----------------------------------------------------------------------
# Ablation: the 1-cycle L1 optimism (Section 9.5).
# ----------------------------------------------------------------------

def experiment_ablation_l1_latency(runner, latencies=(1, 2, 4), scheme="nda"):
    from dataclasses import replace

    from repro.core.factory import make_scheme
    from repro.memsys.hierarchy import MemConfig
    from repro.pipeline.config import MEGA
    from repro.pipeline.core import OoOCore

    rows = []
    data = {}
    sample = [b for b in runner.benchmarks[::4]]
    for latency in latencies:
        mem = MemConfig(l1_latency=latency)
        config = MEGA.scaled(name="mega-l1-%d" % latency, mem=mem)
        base_results, scheme_results = [], []
        for name in sample:
            program = runner.programs()[name]
            base_results.append(
                OoOCore(program, config=config, scheme=make_scheme("baseline"),
                        warm_caches=True).run()
            )
            scheme_results.append(
                OoOCore(program, config=config, scheme=make_scheme(scheme),
                        warm_caches=True).run()
            )
        base_ipc = suite_mean_ipc(base_results)
        loss = 1.0 - suite_normalized_ipc(scheme_results, base_results)
        data[latency] = {"baseline_ipc": base_ipc, "loss": loss}
        rows.append([latency, base_ipc, "%.1f%%" % (100 * loss)])
    text = format_table(
        ["L1 latency (cycles)", "Baseline IPC", "%s IPC loss" % scheme],
        rows,
        title=(
            "Ablation (Section 9.5): idealised 1-cycle L1 understates"
            " scheme losses"
        ),
    )
    return ExperimentReport(
        "ablation-l1-latency", "Ablation — L1 latency", text, data
    )


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
#
# Each entry carries the experiment callable *and* the grid slice it
# reads through the runner cache, declared side by side so they cannot
# drift (a drift used to silently de-parallelise ``run --jobs``: the
# pre-population step would warm the wrong slice and the experiment
# would fall back to serial simulation).  ``needs`` is a zero-argument
# callable returning ``(configs, schemes, benchmarks)`` —
# ``benchmarks=None`` meaning the runner's full selection — or ``None``
# for experiments that bypass the cache entirely (the ablations build
# cores directly; figure9 is analytic).


@dataclass(frozen=True)
class Experiment:
    """Registry entry: the callable plus the grid slice it consumes."""

    func: callable
    needs: callable = None


def _all_schemes():
    return grid_scheme_names()


def _needs_full_grid():
    return named_configs(), _all_schemes(), None


def _needs_baseline_only():
    return named_configs(), ("baseline",), None


def _needs_mega_all():
    from repro.pipeline.config import MEGA

    return [MEGA], _all_schemes(), None


def _needs_table5():
    from repro.gem5.model import GEM5_EXCLUDED
    from repro.pipeline.config import LARGE, MEDIUM, MEGA
    from repro.workloads.characteristics import SPEC_BENCHMARKS

    comparable = tuple(b for b in SPEC_BENCHMARKS if b not in GEM5_EXCLUDED)
    return [MEDIUM, LARGE, MEGA], _all_schemes(), comparable


def _needs_exchange2():
    from repro.pipeline.config import MEGA

    return [MEGA], _all_schemes(), ("548.exchange2",)


EXPERIMENTS = {
    "table1": Experiment(experiment_table1, needs=_needs_baseline_only),
    "figure6": Experiment(experiment_figure6, needs=_needs_mega_all),
    "figure7": Experiment(experiment_figure7, needs=_needs_full_grid),
    "figure8": Experiment(experiment_figure8, needs=_needs_full_grid),
    "figure9": Experiment(experiment_figure9),  # analytic, cache-free
    "figure10": Experiment(experiment_figure10, needs=_needs_baseline_only),
    "table3": Experiment(experiment_table3, needs=_needs_full_grid),
    # Figure 1 plots Table 3's data (same callable, same needs).
    "figure1": Experiment(experiment_table3, needs=_needs_full_grid),
    "table4": Experiment(experiment_table4, needs=_needs_mega_all),
    "table5": Experiment(experiment_table5, needs=_needs_table5),
    "exchange2": Experiment(experiment_exchange2, needs=_needs_exchange2),
    # The ablations build their own cores with ad-hoc configs and never
    # consult the runner cache.
    "ablation-store-taints": Experiment(experiment_ablation_store_taints),
    "ablation-l1-latency": Experiment(experiment_ablation_l1_latency),
}


def experiment_ids():
    return sorted(EXPERIMENTS)


def experiment_grid_needs(experiment_id):
    """Grid cells an experiment reads, from its registry declaration.

    Returns ``(configs, schemes, benchmarks)`` — ``benchmarks=None``
    meaning the runner's full selection — or ``None`` for cache-free
    experiments.  Callers use this to pre-populate *only* the slices a
    requested experiment will consume, instead of the whole standard
    grid.
    """
    entry = EXPERIMENTS.get(experiment_id)
    if entry is None or entry.needs is None:
        return None
    return entry.needs()


def run_experiment(experiment_id, runner=None, **kwargs):
    """Run one experiment by id; returns an :class:`ExperimentReport`."""
    from repro.harness.runner import shared_runner

    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            "unknown experiment %r (choose from %s)"
            % (experiment_id, ", ".join(experiment_ids()))
        )
    if runner is None:
        runner = shared_runner()
    return EXPERIMENTS[experiment_id].func(runner, **kwargs)
