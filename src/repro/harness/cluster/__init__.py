"""Distributed campaign execution over sockets (stdlib-only).

The cluster subsystem turns the campaign engine into a multi-host
service behind the same ``run_cells()`` seam the serial loop and the
multiprocessing pool already share:

- :mod:`~repro.harness.cluster.protocol` — length-prefixed JSON
  frames, the steal/result/heartbeat message kinds, and the wire form
  of cell specs (full ``CoreConfig`` travels with every cell);
- :mod:`~repro.harness.cluster.coordinator` — the TCP service owning
  the work-stealing queue, worker liveness (heartbeat timeout + EOF),
  requeue of a dead worker's in-flight cells, and result collection;
- :mod:`~repro.harness.cluster.worker` — the pull/simulate/report
  client (``python -m repro work --connect HOST:PORT``), heartbeating
  in the background while it simulates;
- :mod:`~repro.harness.cluster.executor` — the
  :class:`~repro.harness.executor.Executor` adapter
  (``--executor cluster`` / ``python -m repro serve``);
- :mod:`~repro.harness.cluster.faults` — the seeded chaos harness:
  :class:`~repro.harness.cluster.faults.FaultPlan` schedules worker
  crashes, poison cells, frame drops/delays/corruption, slow and hung
  cells, late duplicate results, and coordinator kills, all injected
  at the protocol seam.

Everything is standard-library Python: one coordinator thread per
connection, blocking sockets, JSON frames.  Determinism and
content-addressing make the fault story simple — any cell may run
twice (requeue races its "dead" worker's late result) and the first
result wins, bit-identical either way.  The failure-model contract
(what is retried, quarantined, aborts, resumes) is documented in
:mod:`repro.harness`.
"""

from repro.harness.cluster.coordinator import ClusterCoordinator
from repro.harness.cluster.executor import ClusterExecutor
from repro.harness.cluster.faults import Fault, FaultPlan
from repro.harness.cluster.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
    spec_from_wire,
    spec_to_wire,
)
from repro.harness.cluster.worker import (
    ClusterWorker,
    CoordinatorRejected,
    WorkerCrash,
    run_worker,
)

__all__ = [
    "ClusterCoordinator",
    "ClusterExecutor",
    "ClusterWorker",
    "CoordinatorRejected",
    "WorkerCrash",
    "run_worker",
    "Fault",
    "FaultPlan",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "send_frame",
    "recv_frame",
    "spec_to_wire",
    "spec_from_wire",
]
