"""Wire protocol of the campaign cluster (stdlib-only, versioned).

**Framing.**  A frame is a 4-byte big-endian unsigned payload length
followed by that many bytes of UTF-8 JSON encoding one object with a
``kind`` field.  Frames larger than :data:`MAX_FRAME_BYTES` are
rejected (a corrupt length prefix must not allocate gigabytes).

**Conversation.**  Strictly request/response over one TCP connection
per worker; the worker serialises requests (its heartbeat thread and
steal loop share one lock), so the coordinator never interleaves
replies.

==================  =====================================  ==========
worker sends        coordinator replies                    when
==================  =====================================  ==========
``hello``           ``welcome`` (cells total, protocol)    on connect
                    / ``reject`` (version mismatch)
``steal``           ``cell`` (cell_id + spec) /            worker idle
                    ``wait`` (queue empty, grid live) /
                    ``done`` (grid complete or failed)
``result``          ``ack``                                cell done
``error``           ``ack``                                cell raised
``heartbeat``       ``ack``                                periodic
``bye``             ``ack``                                clean exit
==================  =====================================  ==========

**Telemetry.**  A ``result`` frame may carry an optional ``telemetry``
sibling object (see :func:`repro.obs.cell_telemetry`): wall-clock
seconds, replay counters, fast-forward engagement, and the worker's
peak RSS.  It rides *beside* the result, never inside it — stored
results must stay byte-identical across backends — and it is
deliberately unversioned: a coordinator ignores its absence, so the
field's introduction did not bump :data:`PROTOCOL_VERSION`.

**Error frames** (protocol generation 2) carry structured failure
fields beside the message: ``failure_kind`` (``deterministic`` — the
simulation raised, or ``timeout`` — the worker's watchdog hit its
per-cell wall-clock deadline) and ``traceback`` (the worker-side
format_exc, when one exists).  The coordinator folds them into the
:class:`~repro.harness.store.CellFailure` record it persists.  These
fields are wire-versioned: :data:`PROTOCOL_VERSION` was bumped when
they landed, so a mixed-generation pair refuses at ``hello`` instead
of silently degrading failure records.

**Cell specs on the wire.**  :func:`spec_to_wire` expands a spec tuple
into plain JSON — the *complete* ``CoreConfig`` parameter record
travels with every cell (via ``CoreConfig.to_dict`` /
:func:`~repro.pipeline.config.config_from_dict`), so a remote worker
simulates exactly the configuration the coordinator hashed, never a
same-named approximation.

**Scheme wire versions.**  ``hello`` carries the worker's
``{scheme name: wire_version}`` map (from
:func:`repro.core.registry.scheme_wire_versions`, each
``SchemeSpec.wire_version``).  The coordinator rejects the worker
unless the worker's version matches its own for *every scheme the
coordinator knows* — a worker running stale scheme code would
otherwise simulate cells whose content-addressed keys promise
behaviour the code no longer implements, silently poisoning the
shared store.  Workers missing the map entirely (older builds)
are rejected for the same reason.  Extra schemes known only to the
worker are harmless: the coordinator never dispatches them.

**Requeue semantics.**  The coordinator owns the queue.  A cell
leaves the queue when stolen and is marked in-flight against that
worker; it completes on ``result``/``error``, and is pushed back to
the *front* of the queue if its worker dies first (socket EOF/error,
or no frame within the heartbeat timeout).  Cells are deterministic
and content-addressed, so a "dead" worker's late result is
indistinguishable from the requeued rerun — the first result for a
cell wins and duplicates are ack'd and dropped.  A cell whose worker
dies ``max_cell_attempts`` times is *quarantined* (recorded as a
``poisoned`` :class:`~repro.harness.store.CellFailure`, never
requeued) so a worker-killing cell costs one cell, not every worker
in turn; a late result for a quarantined cell still wins and clears
the quarantine.
"""

import json
import socket
import struct

from repro.pipeline.config import config_from_dict

#: Protocol generation, exchanged in hello/welcome; mismatches refuse.
#: 2: structured error frames (``failure_kind``/``traceback``).
PROTOCOL_VERSION = 2

#: Upper bound on one frame's payload (a full SimulationResult for a
#: large cell is ~100 KiB; 64 MiB is comfortably above any real frame).
MAX_FRAME_BYTES = 64 << 20

_LENGTH = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed, oversized, or out-of-protocol frame."""


def frame_payload(message):
    """Serialise ``message`` to the frame payload bytes (size-checked)."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError("frame of %d bytes exceeds limit" % len(payload))
    return payload


def send_frame(sock, message):
    """Serialise ``message`` (a dict) and send it as one frame."""
    payload = frame_payload(message)
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_frame(sock):
    """Receive one frame; returns its dict, or ``None`` on clean EOF."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError("frame of %d bytes exceeds limit" % length)
    payload = _recv_exact(sock, length)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("undecodable frame: %s" % exc)
    if not isinstance(message, dict) or "kind" not in message:
        raise ProtocolError("frame is not a kind-tagged object")
    return message


def _recv_exact(sock, count):
    """Read exactly ``count`` bytes; ``None`` on EOF at a frame boundary.

    EOF *inside* a frame (header or payload) raises
    :class:`ProtocolError` — callers uniformly treat that as a dead
    peer, never as a short read to reinterpret.
    """
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout:
            continue
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def spec_to_wire(spec):
    """Expand a cell-spec tuple into its JSON wire form."""
    benchmark, config, scheme_name, scheme_kwargs, scale, seed = spec
    return {
        "benchmark": benchmark,
        "config": config.to_dict(),
        "scheme": scheme_name,
        "scheme_kwargs": dict(scheme_kwargs or {}),
        "scale": scale,
        "seed": seed,
    }


def spec_from_wire(data):
    """Rebuild the cell-spec tuple from :func:`spec_to_wire` output."""
    return (
        data["benchmark"],
        config_from_dict(data["config"]),
        data["scheme"],
        tuple(sorted(data.get("scheme_kwargs", {}).items())),
        data["scale"],
        data["seed"],
    )
