"""The cluster backend behind the ``Executor`` protocol.

:class:`ClusterExecutor` makes multi-host execution a drop-in
replacement for the serial loop and the multiprocessing pool: it
stands up a :class:`~repro.harness.cluster.coordinator.ClusterCoordinator`
for the batch, optionally spawns in-process worker threads (useful for
loopback tests and for soaking up local cores alongside remote hosts),
blocks until the grid drains, and returns results in spec order.

Remote capacity attaches at any time with::

    python -m repro work --connect HOST:PORT

Local worker threads share the Python interpreter (the GIL serialises
them), so they are a convenience, not a scaling mechanism — real
fan-out comes from ``work`` processes on this or other machines.
"""

import threading

from repro.harness.cluster.coordinator import (
    DEFAULT_HEARTBEAT_TIMEOUT,
    ClusterCoordinator,
)
from repro.harness.cluster.worker import ClusterWorker
from repro.harness.executor import Executor


class ClusterExecutor(Executor):
    """Serve a batch of cell specs to cluster workers."""

    kind = "cluster"

    def __init__(self, host="127.0.0.1", port=0, local_workers=0,
                 heartbeat_timeout=DEFAULT_HEARTBEAT_TIMEOUT,
                 on_serving=None, wait_timeout=None):
        self.host = host
        self.port = port
        self.local_workers = int(local_workers)
        self.heartbeat_timeout = heartbeat_timeout
        #: Called with the bound ``(host, port)`` once serving — the CLI
        #: prints the ``work --connect`` line from it.
        self.on_serving = on_serving
        self.wait_timeout = wait_timeout
        self.last_stats = None

    def run(self, specs, progress=None, on_result=None):
        specs = list(specs)
        if not specs:
            return []
        coordinator = ClusterCoordinator(
            specs, host=self.host, port=self.port,
            heartbeat_timeout=self.heartbeat_timeout,
            progress=progress, on_result=on_result,
        )
        coordinator.start()
        try:
            host, port = coordinator.address
            if self.on_serving is not None:
                self.on_serving((host, port))
            threads = []
            for index in range(self.local_workers):
                worker = ClusterWorker(
                    host, port, name="local-%d" % (index + 1),
                    heartbeat_interval=max(
                        0.1, self.heartbeat_timeout / 4.0),
                )
                thread = threading.Thread(target=worker.run, daemon=True)
                thread.start()
                threads.append(thread)
            finished = coordinator.wait(self.wait_timeout)
            self.last_stats = coordinator.stats()
            if not finished:
                raise RuntimeError(
                    "cluster campaign timed out after %ss: %d/%d cells"
                    % (self.wait_timeout, self.last_stats["completed"],
                       self.last_stats["cells"])
                )
            results = coordinator.results()
            # Let workers drain cleanly (their next steal is answered
            # "done", they reply "bye") before tearing the coordinator
            # down, so a clean campaign never ends in mid-request
            # connection errors — locals first, then remote stragglers.
            for thread in threads:
                thread.join(timeout=5.0)
            coordinator.drain(timeout=2.0)
            self.last_stats = coordinator.stats()
        finally:
            coordinator.close()
        return results
