"""The cluster backend behind the ``Executor`` protocol.

:class:`ClusterExecutor` makes multi-host execution a drop-in
replacement for the serial loop and the multiprocessing pool: it
stands up a :class:`~repro.harness.cluster.coordinator.ClusterCoordinator`
for the batch, optionally spawns in-process worker threads (useful for
loopback tests and for soaking up local cores alongside remote hosts),
blocks until the grid drains, and returns results in spec order —
with ``None`` standing in for cells that failed or were quarantined
(unless ``fail_fast``, which raises like a pool run).

Remote capacity attaches at any time with::

    python -m repro work --connect HOST:PORT

Local worker threads share the Python interpreter (the GIL serialises
them), so they are a convenience, not a scaling mechanism — real
fan-out comes from ``work`` processes on this or other machines.

Crash-safety plumbing: ``journal_path`` attaches a
:class:`~repro.harness.journal.CampaignJournal` (``resume=True``
replays it first, so a coordinator killed mid-campaign picks up where
it left off), ``fault_plan`` threads a seeded
:class:`~repro.harness.cluster.faults.FaultPlan` into the coordinator
and every local worker, and ``worker_kwargs`` parameterises local
workers (reconnect budget, cell timeout, ...).
"""

import threading

from repro.harness.cluster.coordinator import (
    DEFAULT_HEARTBEAT_TIMEOUT,
    DEFAULT_MAX_CELL_ATTEMPTS,
    ClusterCoordinator,
)
from repro.harness.cluster.worker import ClusterWorker
from repro.harness.executor import Executor
from repro.harness.journal import CampaignJournal


class ClusterExecutor(Executor):
    """Serve a batch of cell specs to cluster workers."""

    kind = "cluster"

    def __init__(self, host="127.0.0.1", port=0, local_workers=0,
                 heartbeat_timeout=DEFAULT_HEARTBEAT_TIMEOUT,
                 on_serving=None, wait_timeout=None, fail_fast=False,
                 max_cell_attempts=DEFAULT_MAX_CELL_ATTEMPTS,
                 journal_path=None, resume=False, fault_plan=None,
                 worker_kwargs=None):
        self.host = host
        self.port = port
        self.local_workers = int(local_workers)
        self.heartbeat_timeout = heartbeat_timeout
        #: Called with the bound ``(host, port)`` once serving — the CLI
        #: prints the ``work --connect`` line from it.
        self.on_serving = on_serving
        self.wait_timeout = wait_timeout
        self.fail_fast = fail_fast
        self.max_cell_attempts = max_cell_attempts
        self.journal_path = journal_path
        self.resume = resume
        self.fault_plan = fault_plan
        self.worker_kwargs = dict(worker_kwargs or {})
        self.last_stats = None
        self.last_failures = {}

    def run(self, specs, progress=None, on_result=None, on_failure=None):
        specs = list(specs)
        if not specs:
            return []
        journal = resume_state = None
        if self.journal_path is not None:
            journal = CampaignJournal(self.journal_path)
            if self.resume:
                resume_state = CampaignJournal.load(self.journal_path)
        coordinator = ClusterCoordinator(
            specs, host=self.host, port=self.port,
            heartbeat_timeout=self.heartbeat_timeout,
            progress=progress, on_result=on_result, on_failure=on_failure,
            fail_fast=self.fail_fast,
            max_cell_attempts=self.max_cell_attempts,
            journal=journal, resume_state=resume_state,
            fault_plan=self.fault_plan,
        )
        coordinator.start()
        try:
            host, port = coordinator.address
            if self.on_serving is not None:
                self.on_serving((host, port))
            threads = []
            for index in range(self.local_workers):
                worker = ClusterWorker(
                    host, port, name="local-%d" % (index + 1),
                    heartbeat_interval=max(
                        0.1, self.heartbeat_timeout / 4.0),
                    fault_plan=self.fault_plan,
                    **self.worker_kwargs,
                )
                thread = threading.Thread(target=worker.run, daemon=True)
                thread.start()
                threads.append(thread)
            finished = coordinator.wait(self.wait_timeout)
            self.last_stats = coordinator.stats()
            self.last_failures = coordinator.failures()
            if not finished:
                raise RuntimeError(
                    "cluster campaign timed out after %ss: %d/%d cells"
                    % (self.wait_timeout, self.last_stats["completed"],
                       self.last_stats["cells"])
                )
            results = coordinator.results()
            # Let workers drain cleanly (their next steal is answered
            # "done", they reply "bye") before tearing the coordinator
            # down, so a clean campaign never ends in mid-request
            # connection errors — locals first, then remote stragglers.
            for thread in threads:
                thread.join(timeout=5.0)
            coordinator.drain(timeout=2.0)
            self.last_stats = coordinator.stats()
            self.last_failures = coordinator.failures()
        finally:
            coordinator.close()
        return results
