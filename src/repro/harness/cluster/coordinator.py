"""TCP coordinator: work-stealing queue, heartbeats, requeue, quarantine.

:class:`ClusterCoordinator` owns one campaign's pending cells.  It
listens on a TCP port, registers workers as they ``hello``, and serves
``steal`` requests from a double-ended queue — workers *pull* work
when idle, so a fast host naturally simulates more cells than a slow
one (work stealing without any placement policy).

Liveness: every frame from a worker (steals, results, heartbeats)
refreshes its ``last_seen``.  A monitor thread declares a worker dead
when nothing arrives within ``heartbeat_timeout`` seconds — workers
heartbeat at a fraction of that interval even mid-simulation — and a
socket EOF/error declares it dead immediately.  Either way the
worker's in-flight cells are pushed back to the *front* of the queue
(they were stolen earliest; finishing them first keeps campaign
latency bounded), and the campaign continues without them.

Determinism makes all of this safe: cells are content-addressed and
simulation is reproducible, so a falsely-declared-dead worker's late
``result`` is identical to the requeued rerun — the first result for
a cell wins, duplicates are ack'd and dropped.

**Poison-cell quarantine.**  A requeue is attributed to the cell the
dead worker was holding; after ``max_cell_attempts`` deaths the cell
is *quarantined* — recorded as a ``poisoned``
:class:`~repro.harness.store.CellFailure` and never requeued — so one
worker-killing cell costs one cell, not every worker in turn.  A late
result for a quarantined cell (the "dead" worker was merely slow)
still wins: the quarantine is cleared and the result recorded.

**Graceful degradation.**  A worker *reporting* an ``error`` frame is
a deterministic failure (an unknown benchmark stays unknown on every
retry): by default it is recorded as a :class:`CellFailure` and the
campaign continues — one bad cell costs one cell.  ``fail_fast=True``
restores the historical abort-on-first-error behaviour, where
:meth:`ClusterCoordinator.results` raises like a pool run propagating
a worker exception.

**Journal.**  With a :class:`~repro.harness.journal.CampaignJournal`
attached every state transition (steal, done, requeue, quarantine,
failure, late-result unfail) appends one event line, and a coordinator
built with ``resume_state`` reconstructs the previous campaign's shape:
previously-in-flight cells re-queue at the front, attempt counts carry
over (a poison cell does not get a fresh life per restart), and
quarantine/failure records are re-applied instead of retried.
"""

import socket
import threading

from repro.harness.cluster.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
    spec_to_wire,
)
from repro.harness.store import CellFailure, simulation_key
from repro.obs import TelemetryAggregate
from repro.pipeline.core import SimulationResult

#: Seconds a worker may stay silent before it is declared dead.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0

#: Seconds an idle worker is told to wait before stealing again.
STEAL_RETRY_SECONDS = 0.05

#: Worker deaths attributed to one cell before it is quarantined.
DEFAULT_MAX_CELL_ATTEMPTS = 3


class _WorkerState:
    """Coordinator-side record of one connected worker."""

    def __init__(self, name, conn):
        self.name = name
        self.conn = conn
        self.last_seen = 0.0
        self.cells = set()  # in-flight cell ids
        self.completed = 0


def _spec_key(spec):
    """Content-addressed key of one cell spec tuple."""
    benchmark, config, scheme_name, scheme_kwargs, scale, seed = spec
    return simulation_key(benchmark, config, scheme_name,
                          scheme_kwargs=dict(scheme_kwargs or ()),
                          scale=scale, seed=seed)


class ClusterCoordinator:
    """Serves one batch of cell specs to pulling workers."""

    def __init__(self, specs, host="127.0.0.1", port=0,
                 heartbeat_timeout=DEFAULT_HEARTBEAT_TIMEOUT,
                 progress=None, on_result=None, on_failure=None,
                 fail_fast=False,
                 max_cell_attempts=DEFAULT_MAX_CELL_ATTEMPTS,
                 journal=None, resume_state=None, fault_plan=None):
        import collections

        self._specs = list(specs)
        self._keys = [_spec_key(spec) for spec in self._specs]
        self._queue = collections.deque(range(len(self._specs)))
        self._in_flight = {}  # cell_id -> worker name
        self._results = {}  # cell_id -> SimulationResult
        self._failures = {}  # cell_id -> CellFailure (deterministic/timeout)
        self._quarantined = {}  # cell_id -> CellFailure (poisoned)
        self._attempts = {}  # cell_id -> worker deaths attributed
        self._workers = {}  # name -> _WorkerState
        self._attribution = {}  # worker name -> cells completed, ever
        self._requeues = 0
        #: Campaign-wide execution telemetry (wall time, replay
        #: counters, peak RSS), aggregated from the optional
        #: ``telemetry`` riding each first-winning result frame.
        self.telemetry = TelemetryAggregate()
        self.heartbeat_timeout = heartbeat_timeout
        self.progress = progress
        self.on_result = on_result
        self.on_failure = on_failure
        self.fail_fast = fail_fast
        self.max_cell_attempts = max(1, int(max_cell_attempts))
        self._journal = journal
        self._resume_state = resume_state
        self._fault_plan = fault_plan
        self._carried = []  # CellFailures re-applied from a resume
        self._lock = threading.Lock()
        self._done = threading.Event()
        if resume_state is not None:
            self._apply_resume_state(resume_state)
        if self._settled_locked() >= len(self._specs):
            self._done.set()
        self._closed = False
        self._listener = None
        self._threads = []
        self._host, self._port = host, port

    def _apply_resume_state(self, state):
        """Reconstruct campaign shape from a replayed journal.

        Previously-quarantined/failed cells are re-applied as settled
        (an explicit resume completes the *rest* of the campaign; a
        fresh ``serve`` retries them), attempt counts carry over, and
        the queue is reordered so cells that were in flight at the
        crash resume at the front.
        """
        remaining = []
        for cell_id, key in enumerate(self._keys):
            record = state.quarantined.get(key) or state.failed.get(key)
            if record is not None:
                failure = self._rebuild_failure(cell_id, record)
                if failure.kind == "poisoned":
                    self._quarantined[cell_id] = failure
                else:
                    self._failures[cell_id] = failure
                self._attempts[cell_id] = failure.attempts
                self._carried.append((cell_id, failure))
                continue
            self._attempts[cell_id] = state.attempts.get(key, 0)
            remaining.append(cell_id)
        order = {key: rank for rank, key in
                 enumerate(state.resume_order([self._keys[i]
                                               for i in remaining]))}
        remaining.sort(key=lambda i: order[self._keys[i]])
        self._queue.clear()
        self._queue.extend(remaining)

    def _rebuild_failure(self, cell_id, record):
        try:
            return CellFailure.from_dict(record)
        except (TypeError, ValueError):
            return self._make_failure(cell_id, "deterministic",
                                      error=str(record), worker=None,
                                      attempts=1)

    def _make_failure(self, cell_id, kind, error, worker, attempts,
                      traceback=None):
        benchmark, config = self._specs[cell_id][0], self._specs[cell_id][1]
        scheme = self._specs[cell_id][2]
        return CellFailure(
            key=self._keys[cell_id], benchmark=benchmark,
            config_name=getattr(config, "name", str(config)),
            scheme_name=scheme, kind=kind, attempts=attempts,
            worker=worker, error=error, traceback=traceback,
        )

    # -- lifecycle --------------------------------------------------------

    def start(self):
        """Bind, listen, and start the accept + liveness threads."""
        if self._journal is not None:
            if self._resume_state is not None:
                self._journal.resume()
            else:
                self._journal.begin([self._keys[i] for i in self._queue])
        # Re-fire callbacks for failures carried over from the journal:
        # idempotent on the store side, and it keeps a resumed
        # campaign's progress/failure accounting complete.
        for cell_id, failure in self._carried:
            self._notify_failure(cell_id, failure)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self._host, self._port))
        self._listener.listen(64)
        self._listener.settimeout(0.2)
        for target in (self._accept_loop, self._monitor_loop):
            thread = threading.Thread(target=target, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    @property
    def address(self):
        """``(host, port)`` actually bound (port resolved if 0)."""
        return self._listener.getsockname()[:2]

    def wait(self, timeout=None):
        """Block until every cell has a result or failure; True if so."""
        return self._done.wait(timeout)

    def drain(self, timeout=2.0):
        """Wait briefly for connected workers to see ``done`` and leave.

        Purely a politeness window after the campaign completes: each
        worker's next steal is answered ``done`` and it disconnects
        with ``bye``; waiting for that beats cutting its socket
        mid-exchange.  Returns True when every worker left in time.
        """
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._workers:
                    return True
            time.sleep(0.02)
        return False

    def close(self):
        """Stop serving and drop every connection."""
        self._closed = True
        self._done.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            workers = list(self._workers.values())
        for state in workers:
            self._disconnect(state.conn)
        if self._journal is not None:
            self._journal.close()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.close()

    # -- reading ----------------------------------------------------------

    def _settled_locked(self):
        return (len(self._results) + len(self._failures)
                + len(self._quarantined))

    def results(self):
        """All results in spec order; failed cells are ``None``.

        Raises when the campaign is incomplete, or — under
        ``fail_fast`` — when any cell failed (the historical
        pool-style propagation).
        """
        with self._lock:
            if self.fail_fast and (self._failures or self._quarantined):
                failed = dict(self._failures)
                failed.update(self._quarantined)
                first_id = sorted(failed)[0]
                raise RuntimeError(
                    "cluster campaign failed: %d cell(s) errored; first:"
                    " cell %d: %s"
                    % (len(failed), first_id, failed[first_id].error)
                )
            if self._settled_locked() != len(self._specs):
                raise RuntimeError(
                    "cluster campaign incomplete: %d/%d cells"
                    % (self._settled_locked(), len(self._specs))
                )
            return [self._results.get(i) for i in range(len(self._specs))]

    def failures(self):
        """Failed/quarantined cells: ``{cell_id: CellFailure}``."""
        with self._lock:
            failed = dict(self._failures)
            failed.update(self._quarantined)
            return failed

    def stats(self):
        """Queue/worker counters (for status lines and tests)."""
        with self._lock:
            return {
                "cells": len(self._specs),
                "completed": len(self._results),
                "failed": len(self._failures),
                "quarantined": len(self._quarantined),
                "queued": len(self._queue),
                "in_flight": len(self._in_flight),
                "requeues": self._requeues,
                # Attribution survives worker disconnects: a worker
                # that drained and left still shows in the final tally.
                "workers": dict(self._attribution),
                "telemetry": self.telemetry.rollup(),
            }

    # -- accept / serve ---------------------------------------------------

    def _accept_loop(self):
        while not self._closed:
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn):
        import time

        name = None
        try:
            while not self._closed:
                message = recv_frame(conn)
                if message is None:
                    break
                kind = message["kind"]
                if name is not None:
                    with self._lock:
                        state = self._workers.get(name)
                        if state is None:
                            break  # declared dead; force a reconnect
                        state.last_seen = time.monotonic()
                if kind == "hello":
                    name, reject_reason = self._register(message, conn)
                    if name is None:
                        send_frame(conn, {
                            "kind": "reject",
                            "error": reject_reason,
                        })
                        break
                    send_frame(conn, {
                        "kind": "welcome",
                        "protocol": PROTOCOL_VERSION,
                        "worker": name,
                        "cells": len(self._specs),
                    })
                elif name is None:
                    send_frame(conn, {"kind": "reject",
                                      "error": "hello required first"})
                    break
                elif kind == "steal":
                    send_frame(conn, self._next_cell(name))
                elif kind == "result":
                    self._complete(name, message["cell_id"],
                                   message["result"],
                                   telemetry=message.get("telemetry"))
                    send_frame(conn, {"kind": "ack"})
                elif kind == "error":
                    self._fail(name, message["cell_id"], message)
                    send_frame(conn, {"kind": "ack"})
                elif kind == "heartbeat":
                    send_frame(conn, {"kind": "ack"})
                elif kind == "bye":
                    send_frame(conn, {"kind": "ack"})
                    break
                else:
                    send_frame(conn, {"kind": "reject",
                                      "error": "unknown kind %r" % kind})
                    break
        except (OSError, ProtocolError, KeyError):
            pass
        finally:
            self._drop_worker(name)
            self._disconnect(conn)

    def _register(self, message, conn):
        """Validate a ``hello`` and record the worker.

        Returns ``(name, None)`` on success, ``(None, reason)`` on a
        refused handshake: protocol generation mismatch, or a scheme
        wire-version mismatch (see the protocol module docstring — a
        worker with stale scheme code must not feed the shared store).
        """
        import time

        if message.get("protocol") != PROTOCOL_VERSION:
            return None, "protocol version mismatch"
        from repro.core.registry import scheme_wire_versions

        theirs = message.get("schemes")
        if not isinstance(theirs, dict):
            return None, "scheme versions missing from hello"
        mismatched = [
            "%s: ours v%s, worker %s" % (scheme, version,
                                         "v%s" % theirs[scheme]
                                         if scheme in theirs else "absent")
            for scheme, version in sorted(scheme_wire_versions().items())
            if theirs.get(scheme) != version
        ]
        if mismatched:
            return None, "scheme version mismatch (%s)" % "; ".join(mismatched)
        base = str(message.get("worker") or "worker")
        with self._lock:
            name = base
            suffix = 1
            while name in self._workers:
                suffix += 1
                name = "%s~%d" % (base, suffix)
            state = _WorkerState(name, conn)
            state.last_seen = time.monotonic()
            self._workers[name] = state
        return name, None

    # -- queue management -------------------------------------------------

    def _journal_event(self, record):
        if self._journal is not None:
            try:
                self._journal.append(record)
            except OSError:
                pass  # a full disk must not take the campaign down

    def _next_cell(self, name):
        with self._lock:
            if self._done.is_set():
                return {"kind": "done"}
            if self.fail_fast and (self._failures or self._quarantined):
                return {"kind": "done"}
            state = self._workers.get(name)
            if state is None:
                return {"kind": "done"}
            if self._queue:
                cell_id = self._queue.popleft()
                self._in_flight[cell_id] = name
                state.cells.add(cell_id)
                spec = self._specs[cell_id]
                self._journal_event({"event": "steal",
                                     "key": self._keys[cell_id],
                                     "worker": name})
            elif self._in_flight:
                # Queue drained but peers are still simulating; if one
                # dies its cells reappear, so stay subscribed.
                return {"kind": "wait", "seconds": STEAL_RETRY_SECONDS}
            else:
                return {"kind": "done"}
        return {"kind": "cell", "cell_id": cell_id,
                "spec": spec_to_wire(spec)}

    def _complete(self, name, cell_id, result_data, telemetry=None):
        result = SimulationResult.from_dict(result_data)
        with self._lock:
            state = self._workers.get(name)
            if state is not None:
                state.cells.discard(cell_id)
            if cell_id in self._results:
                return  # late duplicate after a requeue; first wins
            # A late result for a failed or quarantined cell is the
            # *first result* — determinism says it is the result the
            # requeued rerun would have produced, so it wins and the
            # failure record dissolves.
            cleared = (self._failures.pop(cell_id, None)
                       or self._quarantined.pop(cell_id, None))
            self._results[cell_id] = result
            # First result wins ⇒ its telemetry is counted exactly
            # once; duplicates returned above never reach here.
            self.telemetry.add(name, self._specs[cell_id][2], telemetry)
            self._in_flight.pop(cell_id, None)
            if state is not None:
                state.completed += 1
            self._attribution[name] = self._attribution.get(name, 0) + 1
            if cleared is not None:
                self._journal_event({"event": "unfail",
                                     "key": self._keys[cell_id]})
            self._journal_event({"event": "done",
                                 "key": self._keys[cell_id]})
            completed = len(self._results)
            finished = self._settled_locked() >= len(self._specs)
        # The done event must fire even if a callback blows up (full
        # disk in the store-save, a buggy progress hook): the result is
        # already recorded, and a campaign that finished must never
        # leave its executor blocked in wait() forever.
        try:
            if self.on_result is not None:
                self.on_result(cell_id, result)
            if self.progress is not None:
                if cleared is not None:
                    self.progress.failure_cleared(cleared.kind)
                self.progress.cell_done(worker=name)
        finally:
            if finished:
                self._done.set()
        if (self._fault_plan is not None
                and self._fault_plan.on_result_recorded(completed)):
            # Injected coordinator death: vanish abruptly, no drain —
            # exactly what SIGKILL looks like to workers and callers.
            self.close()

    def _fail(self, name, cell_id, message):
        error = str(message.get("error", "unknown error"))
        kind = message.get("failure_kind", "deterministic")
        if kind not in ("deterministic", "timeout"):
            kind = "deterministic"
        with self._lock:
            state = self._workers.get(name)
            if state is not None:
                state.cells.discard(cell_id)
            self._in_flight.pop(cell_id, None)
            if (cell_id in self._results or cell_id in self._failures
                    or cell_id in self._quarantined):
                return  # duplicate report for a settled cell; ignore
            failure = self._make_failure(
                cell_id, kind, error=error, worker=name,
                attempts=self._attempts.get(cell_id, 0) + 1,
                traceback=message.get("traceback"),
            )
            self._failures[cell_id] = failure
            self._journal_event({"event": "failure",
                                 "key": self._keys[cell_id],
                                 "failure": failure.to_dict()})
            finished = self._settled_locked() >= len(self._specs)
        self._notify_failure(cell_id, failure)
        # Deterministic failure: retrying elsewhere cannot succeed.
        # Under fail_fast the campaign ends promptly (results() will
        # raise); otherwise it is record-and-continue — one bad cell
        # costs one cell, and the rest of the grid completes.
        if self.fail_fast or finished:
            self._done.set()

    def _notify_failure(self, cell_id, failure):
        try:
            if self.on_failure is not None:
                self.on_failure(cell_id, failure)
        finally:
            if self.progress is not None:
                self.progress.cell_failed(worker=failure.worker,
                                          kind=failure.kind)

    def _drop_worker(self, name):
        """Requeue or quarantine a dead worker's in-flight cells.

        Each cell the dead worker held gets one attributed *attempt*;
        at ``max_cell_attempts`` the cell is quarantined instead of
        requeued — the cell is the common factor across those deaths,
        and feeding it to every remaining worker in turn would take the
        whole campaign down.  Idempotent per worker.
        """
        if name is None:
            return
        requeued = 0
        quarantined = []
        with self._lock:
            state = self._workers.pop(name, None)
            if state is None:
                return
            for cell_id in sorted(state.cells, reverse=True):
                if (cell_id in self._results or cell_id in self._failures
                        or cell_id in self._quarantined):
                    continue
                if self._in_flight.get(cell_id) != name:
                    continue
                del self._in_flight[cell_id]
                attempts = self._attempts.get(cell_id, 0) + 1
                self._attempts[cell_id] = attempts
                if attempts >= self.max_cell_attempts:
                    failure = self._make_failure(
                        cell_id, "poisoned", worker=name, attempts=attempts,
                        error="worker died %d time(s) holding this cell"
                              " (last: %s)" % (attempts, name),
                    )
                    self._quarantined[cell_id] = failure
                    self._journal_event({"event": "quarantine",
                                         "key": self._keys[cell_id],
                                         "failure": failure.to_dict()})
                    quarantined.append((cell_id, failure))
                else:
                    self._queue.appendleft(cell_id)
                    self._requeues += 1
                    self._journal_event({"event": "requeue",
                                         "key": self._keys[cell_id],
                                         "attempts": attempts})
                    requeued += 1
            finished = self._settled_locked() >= len(self._specs)
        self._disconnect(state.conn)
        if self.progress is not None:
            for _ in range(requeued):
                self.progress.requeued()
        for cell_id, failure in quarantined:
            self._notify_failure(cell_id, failure)
        if finished or (self.fail_fast and quarantined):
            self._done.set()

    def _monitor_loop(self):
        import time

        interval = max(0.05, min(1.0, self.heartbeat_timeout / 4.0))
        while not self._done.wait(interval):
            now = time.monotonic()
            with self._lock:
                stale = [
                    name for name, state in self._workers.items()
                    if now - state.last_seen > self.heartbeat_timeout
                ]
            for name in stale:
                self._drop_worker(name)

    @staticmethod
    def _disconnect(conn):
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.close()
        except OSError:
            pass
