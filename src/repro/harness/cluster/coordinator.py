"""TCP coordinator: work-stealing queue, heartbeats, requeue.

:class:`ClusterCoordinator` owns one campaign's pending cells.  It
listens on a TCP port, registers workers as they ``hello``, and serves
``steal`` requests from a double-ended queue — workers *pull* work
when idle, so a fast host naturally simulates more cells than a slow
one (work stealing without any placement policy).

Liveness: every frame from a worker (steals, results, heartbeats)
refreshes its ``last_seen``.  A monitor thread declares a worker dead
when nothing arrives within ``heartbeat_timeout`` seconds — workers
heartbeat at a fraction of that interval even mid-simulation — and a
socket EOF/error declares it dead immediately.  Either way the
worker's in-flight cells are pushed back to the *front* of the queue
(they were stolen earliest; finishing them first keeps campaign
latency bounded), and the campaign continues without them.

Determinism makes all of this safe: cells are content-addressed and
simulation is reproducible, so a falsely-declared-dead worker's late
``result`` is identical to the requeued rerun — the first result for
a cell wins, duplicates are ack'd and dropped.

A worker *reporting* an ``error`` frame is different from dying: the
failure is deterministic (an unknown benchmark stays unknown on every
retry), so the cell is not requeued; the coordinator records the
failure, drains the campaign, and :meth:`ClusterCoordinator.results`
raises — mirroring how a pool run propagates worker exceptions.
"""

import socket
import threading

from repro.harness.cluster.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
    spec_to_wire,
)
from repro.pipeline.core import SimulationResult

#: Seconds a worker may stay silent before it is declared dead.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0

#: Seconds an idle worker is told to wait before stealing again.
STEAL_RETRY_SECONDS = 0.05


class _WorkerState:
    """Coordinator-side record of one connected worker."""

    def __init__(self, name, conn):
        self.name = name
        self.conn = conn
        self.last_seen = 0.0
        self.cells = set()  # in-flight cell ids
        self.completed = 0


class ClusterCoordinator:
    """Serves one batch of cell specs to pulling workers."""

    def __init__(self, specs, host="127.0.0.1", port=0,
                 heartbeat_timeout=DEFAULT_HEARTBEAT_TIMEOUT,
                 progress=None, on_result=None):
        import collections

        self._specs = list(specs)
        self._queue = collections.deque(range(len(self._specs)))
        self._in_flight = {}  # cell_id -> worker name
        self._results = {}  # cell_id -> SimulationResult
        self._failures = {}  # cell_id -> error string
        self._workers = {}  # name -> _WorkerState
        self._attribution = {}  # worker name -> cells completed, ever
        self._requeues = 0
        self.heartbeat_timeout = heartbeat_timeout
        self.progress = progress
        self.on_result = on_result
        self._lock = threading.Lock()
        self._done = threading.Event()
        if not self._specs:
            self._done.set()
        self._closed = False
        self._listener = None
        self._threads = []
        self._host, self._port = host, port

    # -- lifecycle --------------------------------------------------------

    def start(self):
        """Bind, listen, and start the accept + liveness threads."""
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self._host, self._port))
        self._listener.listen(64)
        self._listener.settimeout(0.2)
        for target in (self._accept_loop, self._monitor_loop):
            thread = threading.Thread(target=target, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    @property
    def address(self):
        """``(host, port)`` actually bound (port resolved if 0)."""
        return self._listener.getsockname()[:2]

    def wait(self, timeout=None):
        """Block until every cell has a result or failure; True if so."""
        return self._done.wait(timeout)

    def drain(self, timeout=2.0):
        """Wait briefly for connected workers to see ``done`` and leave.

        Purely a politeness window after the campaign completes: each
        worker's next steal is answered ``done`` and it disconnects
        with ``bye``; waiting for that beats cutting its socket
        mid-exchange.  Returns True when every worker left in time.
        """
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._workers:
                    return True
            time.sleep(0.02)
        return False

    def close(self):
        """Stop serving and drop every connection."""
        self._closed = True
        self._done.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            workers = list(self._workers.values())
        for state in workers:
            self._disconnect(state.conn)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.close()

    # -- reading ----------------------------------------------------------

    def results(self):
        """All results in spec order; raises if any cell failed."""
        with self._lock:
            if self._failures:
                first = sorted(self._failures.items())[0]
                raise RuntimeError(
                    "cluster campaign failed: %d cell(s) errored; first:"
                    " cell %d: %s" % (len(self._failures), first[0], first[1])
                )
            if len(self._results) != len(self._specs):
                raise RuntimeError(
                    "cluster campaign incomplete: %d/%d cells"
                    % (len(self._results), len(self._specs))
                )
            return [self._results[i] for i in range(len(self._specs))]

    def stats(self):
        """Queue/worker counters (for status lines and tests)."""
        with self._lock:
            return {
                "cells": len(self._specs),
                "completed": len(self._results),
                "failed": len(self._failures),
                "queued": len(self._queue),
                "in_flight": len(self._in_flight),
                "requeues": self._requeues,
                # Attribution survives worker disconnects: a worker
                # that drained and left still shows in the final tally.
                "workers": dict(self._attribution),
            }

    # -- accept / serve ---------------------------------------------------

    def _accept_loop(self):
        while not self._closed:
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn):
        import time

        name = None
        try:
            while not self._closed:
                message = recv_frame(conn)
                if message is None:
                    break
                kind = message["kind"]
                if name is not None:
                    with self._lock:
                        state = self._workers.get(name)
                        if state is None:
                            break  # declared dead; force a reconnect
                        state.last_seen = time.monotonic()
                if kind == "hello":
                    name, reject_reason = self._register(message, conn)
                    if name is None:
                        send_frame(conn, {
                            "kind": "reject",
                            "error": reject_reason,
                        })
                        break
                    send_frame(conn, {
                        "kind": "welcome",
                        "protocol": PROTOCOL_VERSION,
                        "worker": name,
                        "cells": len(self._specs),
                    })
                elif name is None:
                    send_frame(conn, {"kind": "reject",
                                      "error": "hello required first"})
                    break
                elif kind == "steal":
                    send_frame(conn, self._next_cell(name))
                elif kind == "result":
                    self._complete(name, message["cell_id"],
                                   message["result"])
                    send_frame(conn, {"kind": "ack"})
                elif kind == "error":
                    self._fail(name, message["cell_id"],
                               message.get("error", "unknown error"))
                    send_frame(conn, {"kind": "ack"})
                elif kind == "heartbeat":
                    send_frame(conn, {"kind": "ack"})
                elif kind == "bye":
                    send_frame(conn, {"kind": "ack"})
                    break
                else:
                    send_frame(conn, {"kind": "reject",
                                      "error": "unknown kind %r" % kind})
                    break
        except (OSError, ProtocolError, KeyError):
            pass
        finally:
            self._drop_worker(name)
            self._disconnect(conn)

    def _register(self, message, conn):
        """Validate a ``hello`` and record the worker.

        Returns ``(name, None)`` on success, ``(None, reason)`` on a
        refused handshake: protocol generation mismatch, or a scheme
        wire-version mismatch (see the protocol module docstring — a
        worker with stale scheme code must not feed the shared store).
        """
        import time

        if message.get("protocol") != PROTOCOL_VERSION:
            return None, "protocol version mismatch"
        from repro.core.registry import scheme_wire_versions

        theirs = message.get("schemes")
        if not isinstance(theirs, dict):
            return None, "scheme versions missing from hello"
        mismatched = [
            "%s: ours v%s, worker %s" % (scheme, version,
                                         "v%s" % theirs[scheme]
                                         if scheme in theirs else "absent")
            for scheme, version in sorted(scheme_wire_versions().items())
            if theirs.get(scheme) != version
        ]
        if mismatched:
            return None, "scheme version mismatch (%s)" % "; ".join(mismatched)
        base = str(message.get("worker") or "worker")
        with self._lock:
            name = base
            suffix = 1
            while name in self._workers:
                suffix += 1
                name = "%s~%d" % (base, suffix)
            state = _WorkerState(name, conn)
            state.last_seen = time.monotonic()
            self._workers[name] = state
        return name, None

    # -- queue management -------------------------------------------------

    def _next_cell(self, name):
        with self._lock:
            if self._done.is_set() or self._failures:
                return {"kind": "done"}
            state = self._workers.get(name)
            if state is None:
                return {"kind": "done"}
            if self._queue:
                cell_id = self._queue.popleft()
                self._in_flight[cell_id] = name
                state.cells.add(cell_id)
                spec = self._specs[cell_id]
            elif self._in_flight:
                # Queue drained but peers are still simulating; if one
                # dies its cells reappear, so stay subscribed.
                return {"kind": "wait", "seconds": STEAL_RETRY_SECONDS}
            else:
                return {"kind": "done"}
        return {"kind": "cell", "cell_id": cell_id,
                "spec": spec_to_wire(spec)}

    def _complete(self, name, cell_id, result_data):
        result = SimulationResult.from_dict(result_data)
        with self._lock:
            state = self._workers.get(name)
            if state is not None:
                state.cells.discard(cell_id)
            if cell_id in self._results:
                return  # late duplicate after a requeue; first wins
            self._results[cell_id] = result
            self._in_flight.pop(cell_id, None)
            if state is not None:
                state.completed += 1
            self._attribution[name] = self._attribution.get(name, 0) + 1
            finished = (len(self._results) + len(self._failures)
                        >= len(self._specs))
        # The done event must fire even if a callback blows up (full
        # disk in the store-save, a buggy progress hook): the result is
        # already recorded, and a campaign that finished must never
        # leave its executor blocked in wait() forever.
        try:
            if self.on_result is not None:
                self.on_result(cell_id, result)
            if self.progress is not None:
                self.progress.cell_done(worker=name)
        finally:
            if finished:
                self._done.set()

    def _fail(self, name, cell_id, error):
        recorded = False
        with self._lock:
            state = self._workers.get(name)
            if state is not None:
                state.cells.discard(cell_id)
            self._in_flight.pop(cell_id, None)
            if (cell_id not in self._results
                    and cell_id not in self._failures):
                self._failures[cell_id] = str(error)
                recorded = True
        # Deterministic failure: retrying elsewhere cannot succeed, so
        # fail the campaign promptly instead of draining the queue.  A
        # late error for a cell that already completed elsewhere is a
        # duplicate, not a failure — it must not end the campaign.
        if recorded:
            self._done.set()

    def _drop_worker(self, name):
        """Requeue a dead worker's in-flight cells (idempotent)."""
        if name is None:
            return
        with self._lock:
            state = self._workers.pop(name, None)
            if state is None:
                return
            for cell_id in sorted(state.cells, reverse=True):
                if cell_id in self._results or cell_id in self._failures:
                    continue
                if self._in_flight.get(cell_id) == name:
                    del self._in_flight[cell_id]
                    self._queue.appendleft(cell_id)
                    self._requeues += 1
        self._disconnect(state.conn)

    def _monitor_loop(self):
        import time

        interval = max(0.05, min(1.0, self.heartbeat_timeout / 4.0))
        while not self._done.wait(interval):
            now = time.monotonic()
            with self._lock:
                stale = [
                    name for name, state in self._workers.items()
                    if now - state.last_seen > self.heartbeat_timeout
                ]
            for name in stale:
                self._drop_worker(name)

    @staticmethod
    def _disconnect(conn):
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.close()
        except OSError:
            pass
