"""Seeded chaos: deterministic fault schedules for the cluster.

:class:`FaultPlan` generalises the worker's original
``crash_after_steals`` hook into a full schedule of injected failures,
consulted at the protocol seam (the worker's send path, its cell loop,
and the coordinator's result path).  A plan is *data*: an explicit list
of :class:`Fault` entries, or a random-but-seeded schedule from
:meth:`FaultPlan.random` — the same seed always produces the same
schedule, so a chaos run that exposes a bug is replayable verbatim.

Fault kinds and where they fire:

``crash``
    The worker raises :class:`~repro.harness.cluster.worker.WorkerCrash`
    after its *at*-th steal — a SIGKILL'd host: no report, no ``bye``,
    just a vanished connection for the coordinator to requeue against.
``poison_cell``
    Every worker that steals the benchmark named by ``arg`` crashes
    (*not* one-shot): the deterministic worker-killer the coordinator's
    quarantine exists for.
``drop_frame``
    The worker's *at*-th substantive frame (steal/result/error —
    heartbeats are timing noise and never counted) is not sent and the
    connection is torn down, as if the network ate it mid-flight.
``delay_frame``
    The frame is sent ``arg`` seconds late (default 0.1).
``corrupt_frame``
    The frame's payload bytes are garbled (length prefix intact); the
    coordinator's framing layer rejects it and drops the worker.
``slow_cell``
    The worker's *at*-th simulation sleeps ``arg`` seconds first.  With
    ``arg`` above the worker's ``cell_timeout`` this is a *hung* cell —
    the watchdog converts it into a ``timeout`` error frame.
``duplicate_result``
    After its *at*-th completed cell the worker re-sends its first
    result frame — the late-duplicate race the coordinator's
    first-result-wins rule must absorb.
``kill_coordinator``
    The coordinator closes abruptly (no drain) after recording its
    *at*-th result: the crash that ``serve --resume`` recovers from.

Determinism contract: the *schedule* is deterministic, the
*interleaving* is not (work stealing races by design) — so chaos tests
assert on the final :class:`~repro.harness.store.ResultStore` being
byte-identical to a fault-free serial run, never on which worker did
what.
"""

import random
import threading

from repro.harness.cluster.protocol import _LENGTH, frame_payload

#: Every fault kind a plan may schedule.
FAULT_KINDS = (
    "crash",
    "poison_cell",
    "drop_frame",
    "delay_frame",
    "corrupt_frame",
    "slow_cell",
    "duplicate_result",
    "kill_coordinator",
)

#: Frame kinds that advance a worker's frame counter (heartbeats and
#: byes are timing-dependent noise; faulting them proves nothing).
_COUNTED_FRAMES = ("steal", "result", "error")


class Fault:
    """One scheduled fault: *kind* fires at the *at*-th event of *worker*.

    ``worker=None`` matches any worker (first to reach the count wins);
    ``at`` counts steals for ``crash``, substantive sent frames for the
    frame kinds, started simulations for ``slow_cell``, completed
    reports for ``duplicate_result``, and recorded results for
    ``kill_coordinator``.  ``arg`` is kind-specific (seconds, benchmark
    name).  All faults are one-shot except ``poison_cell``.
    """

    __slots__ = ("kind", "worker", "at", "arg")

    def __init__(self, kind, worker=None, at=1, arg=None):
        if kind not in FAULT_KINDS:
            raise ValueError(
                "unknown fault kind %r (choose from %s)"
                % (kind, ", ".join(FAULT_KINDS))
            )
        self.kind = kind
        self.worker = worker
        self.at = int(at)
        self.arg = arg

    def __repr__(self):
        return "Fault(%r, worker=%r, at=%d, arg=%r)" % (
            self.kind, self.worker, self.at, self.arg)


class FaultPlan:
    """A deterministic schedule of :class:`Fault` entries.

    Thread-safe: workers on many threads consult one shared plan; each
    (worker, counter-domain) pair advances independently, and a fault
    fires exactly once (``poison_cell`` excepted).
    """

    def __init__(self, faults=()):
        self.faults = list(faults)
        self._lock = threading.Lock()
        self._counts = {}  # (worker, domain) -> events seen
        self._fired = set()  # indices of one-shot faults already fired
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise TypeError("FaultPlan takes Fault entries, got %r"
                                % (fault,))

    # -- construction -----------------------------------------------------

    @classmethod
    def random(cls, seed, workers, cells, crashes=1, frame_faults=1,
               slow_cells=1, duplicates=0, coordinator_kills=0,
               slow_seconds=0.2):
        """A random-but-seeded plan over ``workers`` and ``cells`` cells.

        The same ``(seed, workers, cells, ...)`` arguments always build
        the same schedule.  Positions are drawn uniformly over the
        first ``cells`` events of each counter, so every fault can
        actually fire on a grid of that size.
        """
        rng = random.Random(seed)
        workers = list(workers)
        span = max(1, int(cells))
        faults = []
        for _ in range(crashes):
            faults.append(Fault("crash", worker=rng.choice(workers),
                                at=rng.randint(1, span)))
        for _ in range(frame_faults):
            kind = rng.choice(("drop_frame", "delay_frame",
                               "corrupt_frame"))
            faults.append(Fault(kind, worker=rng.choice(workers),
                                at=rng.randint(1, span),
                                arg=0.05 if kind == "delay_frame" else None))
        for _ in range(slow_cells):
            faults.append(Fault("slow_cell", worker=rng.choice(workers),
                                at=rng.randint(1, span), arg=slow_seconds))
        for _ in range(duplicates):
            faults.append(Fault("duplicate_result",
                                worker=rng.choice(workers),
                                at=rng.randint(1, span)))
        for _ in range(coordinator_kills):
            faults.append(Fault("kill_coordinator",
                                at=rng.randint(1, span)))
        return cls(faults)

    def add(self, fault):
        """Append one fault (before the plan is in use)."""
        self.faults.append(fault)
        return self

    def describe(self):
        """One line per scheduled fault, stable order."""
        return "\n".join(repr(fault) for fault in self.faults)

    # -- matching machinery -----------------------------------------------

    def _bump(self, worker, domain):
        key = (worker, domain)
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1
            return self._counts[key]

    def _match(self, kinds, worker, count):
        with self._lock:
            for index, fault in enumerate(self.faults):
                if index in self._fired or fault.kind not in kinds:
                    continue
                if fault.worker is not None and fault.worker != worker:
                    continue
                if fault.at != count:
                    continue
                self._fired.add(index)
                return fault
        return None

    def fired(self):
        """Faults that have fired so far (for test assertions)."""
        with self._lock:
            return [self.faults[i] for i in sorted(self._fired)]

    # -- worker seams -----------------------------------------------------

    def on_steal(self, worker):
        """Crash fault due at this worker's Nth steal, or None."""
        return self._match(("crash",), worker, self._bump(worker, "steal"))

    def poisoned(self, benchmark):
        """True when stealing ``benchmark`` must crash any worker."""
        return any(fault.kind == "poison_cell" and fault.arg == benchmark
                   for fault in self.faults)

    def on_frame(self, worker, kind):
        """Frame fault due for this outgoing frame, or None."""
        if kind not in _COUNTED_FRAMES:
            return None
        count = self._bump(worker, "frame")
        return self._match(("drop_frame", "delay_frame", "corrupt_frame"),
                           worker, count)

    def on_cell(self, worker):
        """Slow-cell fault due for this worker's Nth simulation, or None."""
        return self._match(("slow_cell",), worker,
                           self._bump(worker, "cell"))

    def on_report(self, worker):
        """Duplicate-result fault due after this worker's Nth report."""
        return self._match(("duplicate_result",), worker,
                           self._bump(worker, "report"))

    # -- coordinator seam -------------------------------------------------

    def on_result_recorded(self, completed):
        """True when the coordinator must die after this many results."""
        return self._match(("kill_coordinator",), "coordinator",
                           completed) is not None


def send_corrupted(sock, message):
    """Send ``message`` as a frame whose payload bytes are garbled.

    The length prefix is correct, so the receiver reads the full
    payload and fails *decoding* it (invalid UTF-8) — a clean
    :class:`~repro.harness.cluster.protocol.ProtocolError`, exactly
    what bit-rot in flight looks like above TCP.
    """
    payload = bytearray(frame_payload(message))
    payload[0] = 0xFF  # invalid UTF-8 start byte: undecodable
    sock.sendall(_LENGTH.pack(len(payload)) + bytes(payload))
