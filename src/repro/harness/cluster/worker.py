"""Cluster worker: pull a cell, simulate it, report, repeat.

:class:`ClusterWorker` is the client side of the protocol in
:mod:`repro.harness.cluster.protocol`.  It funnels every cell through
the same :func:`~repro.harness.parallel.simulate_cell` the serial and
pool backends use (and therefore through the content-addressed program
cache), so a cell simulates bit-identically wherever it runs.

A background thread heartbeats while the main thread is deep inside a
simulation, keeping the coordinator's liveness clock fresh; both
threads share the socket under one lock, preserving the protocol's
strict request/response pairing.

``crash_after_steals`` is the built-in fault-injection hook: after
stealing that many cells the worker abandons the connection without
reporting — exactly what a SIGKILL'd or partitioned host looks like to
the coordinator — which the requeue tests (and chaos-minded operators)
use to prove in-flight cells survive worker death.
"""

import os
import socket
import threading
import time

from repro.core.registry import scheme_wire_versions
from repro.harness.cluster.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
    spec_from_wire,
)
from repro.harness.parallel import simulate_cell

#: Fraction of the coordinator's timeout at which workers heartbeat.
DEFAULT_HEARTBEAT_INTERVAL = 2.0


def default_worker_name():
    """``host-pid-tid``: unique per thread, readable in progress lines."""
    return "%s-%d-%d" % (socket.gethostname(), os.getpid(),
                         threading.get_ident() % 10_000)


class WorkerCrash(Exception):
    """Raised internally to simulate an abrupt worker death."""


class ClusterWorker:
    """One pull/simulate/report loop against a coordinator."""

    def __init__(self, host, port, name=None,
                 heartbeat_interval=DEFAULT_HEARTBEAT_INTERVAL,
                 crash_after_steals=None, max_cells=None,
                 connect_timeout=10.0):
        self.host = host
        self.port = int(port)
        self.name = name or default_worker_name()
        self.heartbeat_interval = heartbeat_interval
        self.crash_after_steals = crash_after_steals
        self.max_cells = max_cells
        self.connect_timeout = connect_timeout
        self.cells_completed = 0
        #: True when the coordinator vanished mid-campaign (as opposed
        #: to a clean ``done``/``bye`` drain); ``last_error`` then
        #: holds the reason (rejection text, socket error, ...).
        self.disconnected = False
        self.last_error = None
        self._sock = None
        self._io_lock = threading.Lock()
        self._stop = threading.Event()

    # -- protocol plumbing ------------------------------------------------

    def _request(self, message):
        """One locked request/response exchange."""
        with self._io_lock:
            send_frame(self._sock, message)
            reply = recv_frame(self._sock)
        if reply is None:
            raise ConnectionError("coordinator closed the connection")
        if reply["kind"] == "reject":
            raise ConnectionError(
                "coordinator rejected us: %s" % reply.get("error"))
        return reply

    def _heartbeat_loop(self):
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self._request({"kind": "heartbeat"})
            except (OSError, ConnectionError):
                return

    # -- main loop --------------------------------------------------------

    def run(self):
        """Work until the coordinator says ``done``; returns cells done."""
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout)
        self._sock.settimeout(None)
        heartbeat = threading.Thread(target=self._heartbeat_loop, daemon=True)
        try:
            self._request({
                "kind": "hello",
                "worker": self.name,
                "protocol": PROTOCOL_VERSION,
                # Scheme model generations: the coordinator refuses us
                # if any shared scheme's version differs from its own
                # (stale scheme code must not feed the shared store).
                "schemes": scheme_wire_versions(),
            })
            heartbeat.start()
            steals = 0
            while True:
                reply = self._request({"kind": "steal"})
                kind = reply["kind"]
                if kind == "done":
                    try:
                        self._request({"kind": "bye"})
                    except (OSError, ConnectionError):
                        pass
                    return self.cells_completed
                if kind == "wait":
                    time.sleep(float(reply.get("seconds", 0.05)))
                    continue
                # kind == "cell"
                steals += 1
                if (self.crash_after_steals is not None
                        and steals >= self.crash_after_steals):
                    raise WorkerCrash(
                        "injected crash after %d steal(s)" % steals)
                self._run_cell(reply)
                if (self.max_cells is not None
                        and self.cells_completed >= self.max_cells):
                    try:
                        self._request({"kind": "bye"})
                    except (OSError, ConnectionError):
                        pass
                    return self.cells_completed
        except WorkerCrash:
            # Die like a killed process: no bye, no report, just a
            # vanished connection for the coordinator to detect.
            return self.cells_completed
        except (OSError, ConnectionError, ProtocolError) as exc:
            # The coordinator went away (drained and shut down, or
            # crashed) or rejected us.  A worker has nothing to retry
            # against; report what it finished instead of dying
            # noisily, keeping the reason for the caller to surface.
            self.disconnected = True
            self.last_error = str(exc)
            return self.cells_completed
        finally:
            self._stop.set()
            try:
                self._sock.close()
            except OSError:
                pass

    def _run_cell(self, reply):
        cell_id = reply["cell_id"]
        spec = spec_from_wire(reply["spec"])
        try:
            result = simulate_cell(spec)
        except Exception as exc:  # deterministic failure: report, go on
            self._request({
                "kind": "error",
                "cell_id": cell_id,
                "error": "%s: %s" % (type(exc).__name__, exc),
            })
            return
        self._request({
            "kind": "result",
            "cell_id": cell_id,
            "result": result.to_dict(),
        })
        self.cells_completed += 1


def run_worker(host, port, **kwargs):
    """Convenience wrapper: build a worker, run it, return cells done."""
    return ClusterWorker(host, port, **kwargs).run()
