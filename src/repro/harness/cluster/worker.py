"""Cluster worker: pull a cell, simulate it, report, repeat, survive.

:class:`ClusterWorker` is the client side of the protocol in
:mod:`repro.harness.cluster.protocol`.  It funnels every cell through
the same :func:`~repro.harness.parallel.simulate_cell` the serial and
pool backends use (and therefore through the content-addressed program
cache), so a cell simulates bit-identically wherever it runs.

A background thread heartbeats while the main thread is deep inside a
simulation, keeping the coordinator's liveness clock fresh; both
threads share the socket under one lock, preserving the protocol's
strict request/response pairing.

**Reconnect.**  A transient failure — connect refused, socket EOF, a
frame the network ate — no longer ends the worker: it reconnects with
capped exponential backoff plus deterministic jitter, up to
``max_reconnects`` attempts (0 keeps the historical die-on-first-blip
behaviour; ``python -m repro work`` defaults higher).  An explicit
*rejection* (``reject`` frame: protocol or scheme-version mismatch) is
different — reconnecting cannot fix a version mismatch, so the worker
exits immediately with ``rejected`` set.

**Watchdog.**  With ``cell_timeout`` set, each simulation runs under a
wall-clock deadline on a helper thread; a hung cell becomes a
``timeout`` error frame instead of an immortal heartbeat (the worker
keeps heartbeating while hung, so without the watchdog the coordinator
would wait forever).

**Fault injection.**  ``crash_after_steals`` is the original built-in
hook: after stealing that many cells the worker abandons the
connection without reporting — exactly what a SIGKILL'd or partitioned
host looks like to the coordinator.  The generalisation is
:class:`~repro.harness.cluster.faults.FaultPlan` (``fault_plan=``): a
seeded schedule of crashes, poison cells, frame drops/delays/
corruption, slow/hung cells, and late duplicate results, consulted at
the protocol seam.  Chaos tests use it to prove the final store is
byte-identical to a fault-free serial run.
"""

import os
import random
import socket
import threading
import time
import traceback as traceback_module

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX hosts
    resource = None

from repro.core.registry import scheme_wire_versions
from repro.harness.cluster.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
    spec_from_wire,
)
from repro.harness.parallel import last_cell_diagnostics, simulate_cell
from repro.obs import cell_telemetry

#: Fraction of the coordinator's timeout at which workers heartbeat.
DEFAULT_HEARTBEAT_INTERVAL = 2.0

#: First reconnect delay; doubles per attempt up to the cap.
DEFAULT_RECONNECT_BACKOFF = 0.25

#: Upper bound on one reconnect delay (before jitter).
RECONNECT_BACKOFF_CAP = 15.0


def default_worker_name():
    """``host-pid-tid``: unique per thread, readable in progress lines."""
    return "%s-%d-%d" % (socket.gethostname(), os.getpid(),
                         threading.get_ident() % 10_000)


class WorkerCrash(Exception):
    """Raised internally to simulate an abrupt worker death."""


class CoordinatorRejected(ConnectionError):
    """The coordinator explicitly refused us (version/scheme mismatch).

    Distinct from the coordinator *crashing*: a rejection is
    deterministic — the same hello gets the same refusal — so the
    reconnect/backoff loop must not retry it.
    """


class ClusterWorker:
    """One pull/simulate/report loop against a coordinator."""

    def __init__(self, host, port, name=None,
                 heartbeat_interval=DEFAULT_HEARTBEAT_INTERVAL,
                 crash_after_steals=None, max_cells=None,
                 connect_timeout=10.0, max_reconnects=0,
                 reconnect_backoff=DEFAULT_RECONNECT_BACKOFF,
                 cell_timeout=None, fault_plan=None):
        self.host = host
        self.port = int(port)
        self.name = name or default_worker_name()
        self.heartbeat_interval = heartbeat_interval
        self.crash_after_steals = crash_after_steals
        self.max_cells = max_cells
        self.connect_timeout = connect_timeout
        self.max_reconnects = int(max_reconnects)
        self.reconnect_backoff = reconnect_backoff
        self.cell_timeout = cell_timeout
        self.fault_plan = fault_plan
        self.cells_completed = 0
        self.reconnects = 0  # reconnect attempts actually made
        self.timeouts = 0  # cells abandoned by the watchdog
        #: True when the coordinator vanished for good (reconnect budget
        #: exhausted) as opposed to a clean ``done``/``bye`` drain;
        #: ``last_error`` then holds the reason.
        self.disconnected = False
        #: True when the coordinator explicitly refused our hello
        #: (protocol or scheme-version mismatch) — never retried.
        self.rejected = False
        self.last_error = None
        self._sock = None
        self._io_lock = threading.Lock()
        self._stop = threading.Event()
        self._steals = 0  # across reconnects, for crash_after_steals
        self._reported = []  # (cell_id, result_dict) for duplicate faults
        # Deterministic jitter: the same worker name always draws the
        # same delays, so a seeded chaos run is replayable.
        self._jitter = random.Random("reconnect:%s" % self.name)

    # -- protocol plumbing ------------------------------------------------

    def _send(self, message):
        """Send one frame, letting the fault plan interfere first."""
        fault = (self.fault_plan.on_frame(self.name, message["kind"])
                 if self.fault_plan is not None else None)
        if fault is None:
            send_frame(self._sock, message)
        elif fault.kind == "delay_frame":
            time.sleep(float(fault.arg or 0.1))
            send_frame(self._sock, message)
        elif fault.kind == "corrupt_frame":
            from repro.harness.cluster.faults import send_corrupted

            send_corrupted(self._sock, message)
        else:  # drop_frame: the network ate it; tear the connection
            try:
                self._sock.close()
            except OSError:
                pass
            raise ConnectionError("injected frame drop")

    def _request(self, message):
        """One locked request/response exchange."""
        with self._io_lock:
            self._send(message)
            reply = recv_frame(self._sock)
        if reply is None:
            raise ConnectionError("coordinator closed the connection")
        if reply["kind"] == "reject":
            raise CoordinatorRejected(
                "coordinator rejected us: %s" % reply.get("error"))
        return reply

    def _heartbeat_loop(self, stop):
        while not stop.wait(self.heartbeat_interval):
            try:
                with self._io_lock:
                    send_frame(self._sock, {"kind": "heartbeat"})
                    reply = recv_frame(self._sock)
                if reply is None:
                    return
            except (OSError, ConnectionError):
                return

    # -- main loop --------------------------------------------------------

    def run(self):
        """Work until the coordinator drains; returns cells completed.

        Transient connection failures (connect refused, EOF, protocol
        noise) trigger reconnect with capped exponential backoff +
        jitter up to ``max_reconnects``; an explicit rejection or an
        injected crash ends the worker immediately.
        """
        while True:
            try:
                return self._session()
            except WorkerCrash:
                # Die like a killed process: no bye, no report, just a
                # vanished connection for the coordinator to detect.
                return self.cells_completed
            except CoordinatorRejected as exc:
                # Deterministic refusal (version/scheme mismatch):
                # retrying the same hello cannot succeed — exit now so
                # the operator sees the reason instead of a stuck
                # backoff loop.
                self.rejected = True
                self.disconnected = True
                self.last_error = str(exc)
                return self.cells_completed
            except (OSError, ConnectionError, ProtocolError) as exc:
                self.last_error = str(exc)
                if self.reconnects >= self.max_reconnects:
                    self.disconnected = True
                    return self.cells_completed
                self.reconnects += 1
                delay = min(RECONNECT_BACKOFF_CAP,
                            self.reconnect_backoff
                            * (2 ** (self.reconnects - 1)))
                # 0.5x..1.5x jitter, deterministic per worker name.
                time.sleep(delay * (0.5 + self._jitter.random()))

    def _session(self):
        """One connect/hello/steal-loop lifetime against the coordinator."""
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout)
        self._sock.settimeout(None)
        stop = threading.Event()
        self._stop = stop
        heartbeat = threading.Thread(target=self._heartbeat_loop,
                                     args=(stop,), daemon=True)
        try:
            self._request({
                "kind": "hello",
                "worker": self.name,
                "protocol": PROTOCOL_VERSION,
                # Scheme model generations: the coordinator refuses us
                # if any shared scheme's version differs from its own
                # (stale scheme code must not feed the shared store).
                "schemes": scheme_wire_versions(),
            })
            heartbeat.start()
            while True:
                reply = self._request({"kind": "steal"})
                kind = reply["kind"]
                if kind == "done":
                    try:
                        self._request({"kind": "bye"})
                    except (OSError, ConnectionError):
                        pass
                    return self.cells_completed
                if kind == "wait":
                    time.sleep(float(reply.get("seconds", 0.05)))
                    continue
                # kind == "cell"
                self._steals += 1
                self._maybe_crash(reply)
                self._run_cell(reply)
                if (self.max_cells is not None
                        and self.cells_completed >= self.max_cells):
                    try:
                        self._request({"kind": "bye"})
                    except (OSError, ConnectionError):
                        pass
                    return self.cells_completed
        finally:
            stop.set()
            try:
                self._sock.close()
            except OSError:
                pass

    def _maybe_crash(self, reply):
        if (self.crash_after_steals is not None
                and self._steals >= self.crash_after_steals):
            raise WorkerCrash(
                "injected crash after %d steal(s)" % self._steals)
        if self.fault_plan is not None:
            if self.fault_plan.on_steal(self.name) is not None:
                raise WorkerCrash(
                    "injected crash after %d steal(s)" % self._steals)
            benchmark = reply["spec"].get("benchmark")
            if self.fault_plan.poisoned(benchmark):
                raise WorkerCrash(
                    "poison cell %r killed this worker" % benchmark)

    # -- simulation -------------------------------------------------------

    def _simulate_guarded(self, spec):
        """Simulate under the optional watchdog deadline.

        Returns ``(result, None)`` or ``(None, (kind, message,
        traceback))``.  Without ``cell_timeout`` the simulation runs
        inline; with it, a helper thread simulates while this thread
        waits out the wall-clock budget — a hang becomes a ``timeout``
        failure while the heartbeat thread keeps liveness honest.  The
        abandoned helper thread (daemon) cannot be killed, but its late
        result is discarded, never reported.
        """
        fault = (self.fault_plan.on_cell(self.name)
                 if self.fault_plan is not None else None)
        delay = float(fault.arg or 0.0) if fault is not None else 0.0
        if self.cell_timeout is None:
            try:
                if delay:
                    time.sleep(delay)
                result = simulate_cell(spec)
                return result, None, last_cell_diagnostics()
            except Exception as exc:
                return None, ("deterministic",
                              "%s: %s" % (type(exc).__name__, exc),
                              traceback_module.format_exc()), None
        box = {}

        def _target():
            try:
                if delay:
                    time.sleep(delay)
                box["result"] = simulate_cell(spec)
                # Diagnostics are thread-local: read them here, on the
                # thread that simulated, not from the waiting caller.
                box["diagnostics"] = last_cell_diagnostics()
            except BaseException as exc:
                box["error"] = "%s: %s" % (type(exc).__name__, exc)
                box["traceback"] = traceback_module.format_exc()

        thread = threading.Thread(target=_target, daemon=True)
        thread.start()
        thread.join(self.cell_timeout)
        if thread.is_alive():
            self.timeouts += 1
            return None, ("timeout",
                          "cell exceeded the %.1fs wall-clock deadline"
                          % self.cell_timeout, None), None
        if "error" in box:
            return None, ("deterministic", box["error"],
                          box["traceback"]), None
        return box["result"], None, box.get("diagnostics")

    @staticmethod
    def _peak_rss_kb():
        """Process-lifetime peak RSS in KiB (``None`` off POSIX).

        ``ru_maxrss`` is kibibytes on Linux; platforms reporting bytes
        (macOS) inflate the number, which is fine for a monotonic
        per-worker high-water mark.
        """
        if resource is None:  # pragma: no cover - non-POSIX hosts
            return None
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    def _run_cell(self, reply):
        cell_id = reply["cell_id"]
        spec = spec_from_wire(reply["spec"])
        start = time.perf_counter()
        result, failure, diagnostics = self._simulate_guarded(spec)
        wall = time.perf_counter() - start
        if failure is not None:
            kind, message, trace = failure
            frame = {"kind": "error", "cell_id": cell_id, "error": message,
                     "failure_kind": kind}
            if trace:
                frame["traceback"] = trace
            self._request(frame)
            return
        # Telemetry rides beside the result, never inside it: stored
        # results must stay byte-identical across backends and runs.
        frame = {"kind": "result", "cell_id": cell_id,
                 "result": result.to_dict(),
                 "telemetry": cell_telemetry(
                     result, wall, peak_rss_kb=self._peak_rss_kb(),
                     diagnostics=diagnostics)}
        self._request(frame)
        self.cells_completed += 1
        if self.fault_plan is not None:
            self._reported.append((cell_id, frame["result"]))
            if self.fault_plan.on_report(self.name) is not None:
                # Late duplicate: re-send our first result, exactly the
                # race a requeue-then-slow-worker produces.  The
                # coordinator must ack and drop it (first wins).
                dup_id, dup_result = self._reported[0]
                self._request({"kind": "result", "cell_id": dup_id,
                               "result": dup_result})


def run_worker(host, port, **kwargs):
    """Convenience wrapper: build a worker, run it, return cells done."""
    return ClusterWorker(host, port, **kwargs).run()
