"""Tests for IPC aggregation, trends, performance, and reporting."""

import pytest

from repro.analysis.ipc import normalized_ipc, suite_mean_ipc, suite_normalized_ipc
from repro.analysis.performance import PerformancePoint, performance_table
from repro.analysis.reporting import format_figure_series, format_table, text_bar_chart
from repro.analysis.trends import (
    REDWOOD_COVE_IPC,
    extrapolate,
    fit_trend,
    halved_slope_estimate,
)
from repro.pipeline.stats import SimStats


class _FakeResult:
    def __init__(self, cycles, instructions):
        self.stats = SimStats(cycles=cycles, committed_instructions=instructions)


def test_suite_mean_is_mean_of_components():
    """The paper's [11] aggregation: mean cycles / mean instructions —
    NOT the mean of per-benchmark IPC ratios."""
    results = [_FakeResult(100, 100), _FakeResult(1000, 100)]
    # mean instr = 100, mean cycles = 550 -> 0.1818...; ratio-mean = 0.55
    assert suite_mean_ipc(results) == pytest.approx(100 / 550)


def test_suite_mean_empty():
    assert suite_mean_ipc([]) == 0.0


def test_normalized_ipc():
    base = _FakeResult(100, 200)
    scheme = _FakeResult(125, 200)
    assert normalized_ipc(scheme, base) == pytest.approx(0.8)


def test_suite_normalized():
    base = [_FakeResult(100, 100)] * 2
    scheme = [_FakeResult(200, 100)] * 2
    assert suite_normalized_ipc(scheme, base) == pytest.approx(0.5)


def test_trend_fit_exact_line():
    fit = fit_trend([1.0, 2.0, 3.0], [0.9, 0.8, 0.7])
    assert fit.slope == pytest.approx(-0.1)
    assert fit.at(4.0) == pytest.approx(0.6)
    assert extrapolate(fit, 4.0) == pytest.approx(0.6)


def test_halved_slope_is_less_pessimistic():
    fit = fit_trend([0.5, 1.0], [1.0, 0.8])
    linear = extrapolate(fit, REDWOOD_COVE_IPC)
    halved = halved_slope_estimate(fit, REDWOOD_COVE_IPC)
    assert halved > linear
    # Inside the measured range the halved estimate equals the fit.
    assert halved_slope_estimate(fit, 0.75) == pytest.approx(fit.at(0.75))


def test_trend_requires_two_points():
    with pytest.raises(ValueError):
        fit_trend([1.0], [1.0])


def test_performance_point_multiplies():
    point = PerformancePoint("mega", "nda", 1.27, relative_ipc=0.8,
                             relative_timing=1.05)
    assert point.relative_performance == pytest.approx(0.84)


def test_performance_table_grouping():
    points = [
        PerformancePoint("small", "nda", 0.5, 0.9, 1.0),
        PerformancePoint("mega", "nda", 1.2, 0.8, 1.05),
    ]
    table = performance_table(points)
    assert set(table["nda"]) == {"small", "mega"}


def test_format_table_alignment():
    text = format_table(["A", "Longer"], [["x", 1.23456], ["yy", 2.0]],
                        title="T", precision=2)
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "1.23" in text and "2.00" in text


def test_format_figure_series():
    text = format_figure_series({"nda": [(1, 0.5)]}, title="F")
    assert "nda" in text and "(1, 0.500)" in text


def test_bar_chart_monotone_bars():
    text = text_bar_chart(["a", "b"], [1.0, 0.5], width=10)
    bar_a, bar_b = text.splitlines()
    assert bar_a.count("█") > bar_b.count("█")
