"""Unit tests for branch predictors and the BTB."""

import pytest

from repro.frontend import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchTargetBuffer,
    GSharePredictor,
    TagePredictor,
    TournamentPredictor,
    make_predictor,
)


@pytest.mark.parametrize("name", [
    "always-taken", "bimodal", "gshare", "tage", "tournament",
])
def test_factory_and_interface(name):
    predictor = make_predictor(name)
    taken = predictor.predict(100)
    assert isinstance(taken, bool)
    predictor.update(100, True)
    state = predictor.snapshot()
    predictor.restore(state)
    predictor.push_history(True)


def test_factory_rejects_unknown():
    with pytest.raises(ValueError):
        make_predictor("oracle")


def test_bimodal_learns_bias():
    predictor = BimodalPredictor(table_bits=4)
    for _ in range(4):
        predictor.update(5, False)
    assert predictor.predict(5) is False
    for _ in range(8):
        predictor.update(5, True)
    assert predictor.predict(5) is True


def test_gshare_learns_alternating_pattern():
    predictor = GSharePredictor(table_bits=10, history_bits=8)
    outcome = True
    correct = 0
    total = 200
    for i in range(total):
        history = predictor.snapshot()
        prediction = predictor.predict(42)
        if prediction == outcome:
            correct += 1
        else:
            # Mispredict recovery, as the core does it: restore the
            # pre-prediction history and shift in the actual outcome.
            predictor.restore(history)
            predictor.push_history(outcome)
        predictor.update_with_history(42, outcome, history)
        outcome = not outcome
    # The pattern is perfectly history-correlated: late accuracy is high.
    assert correct > total * 0.6


def test_gshare_snapshot_restores_history():
    predictor = GSharePredictor()
    state = predictor.snapshot()
    predictor.predict(1)
    predictor.predict(2)
    assert predictor.snapshot() != state or state == 0
    predictor.restore(state)
    assert predictor.snapshot() == state


def test_tage_learns_bias():
    predictor = TagePredictor()
    for _ in range(64):
        predictor.update(9, True)
    assert predictor.predict(9) is True


def test_tournament_prefers_better_component():
    predictor = TournamentPredictor(table_bits=6, history_bits=6)
    for _ in range(64):
        predictor.update(3, True)
    assert predictor.predict(3) is True


def test_always_taken():
    predictor = AlwaysTakenPredictor()
    assert predictor.predict(1) is True


def test_btb_miss_then_hit():
    btb = BranchTargetBuffer(entries=16)
    assert btb.predict(5) is None
    btb.update(5, 123)
    assert btb.predict(5) == 123


def test_btb_conflict_eviction():
    btb = BranchTargetBuffer(entries=16)
    btb.update(5, 100)
    btb.update(5 + 16, 200)  # same slot
    assert btb.predict(5) is None
    assert btb.predict(21) == 200
