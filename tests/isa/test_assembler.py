"""Unit tests for the assembler."""

import pytest

from repro.isa import AssemblerError, Opcode, assemble


def test_basic_program():
    program = assemble("""
        li   t0, 3
        addi t0, t0, -1
        halt
    """)
    assert len(program) == 3
    assert program[0].op == Opcode.LI
    assert program[0].imm == 3


def test_labels_forward_and_backward():
    program = assemble("""
    top:
        addi t0, t0, 1
        beq  t0, zero, done
        jal  zero, top
    done:
        halt
    """)
    assert program[1].imm == 3  # forward label
    assert program[2].imm == 0  # backward label


def test_memory_operands():
    program = assemble("""
        lw a0, 8(sp)
        sw a0, -4(t1)
        halt
    """)
    load, store = program[0], program[1]
    assert load.rs1 == 2 and load.imm == 8
    assert store.rs2 == 10 and store.rs1 == 6 and store.imm == -4


def test_abi_and_numeric_register_names():
    program = assemble("""
        add x5, a0, t3
        halt
    """)
    assert program[0].rd == 5
    assert program[0].rs1 == 10
    assert program[0].rs2 == 28


def test_directives_seed_state():
    program = assemble("""
        .word 100 42
        .reg  t0  7
        halt
    """)
    assert program.initial_memory[100] == 42
    assert program.initial_regs[5] == 7


def test_comments_ignored():
    program = assemble("""
        # a comment
        li t0, 1   ; trailing comment
        halt
    """)
    assert len(program) == 2


def test_hex_immediates():
    program = assemble("""
        li t0, 0x10
        halt
    """)
    assert program[0].imm == 16


def test_unknown_mnemonic_raises():
    with pytest.raises(AssemblerError):
        assemble("bogus t0, t1\nhalt")


def test_undefined_label_raises():
    with pytest.raises(AssemblerError):
        assemble("beq t0, t1, nowhere\nhalt")


def test_duplicate_label_raises():
    with pytest.raises(AssemblerError):
        assemble("a:\nnop\na:\nhalt")


def test_bad_operand_count_raises():
    with pytest.raises(AssemblerError):
        assemble("add t0, t1\nhalt")


def test_bad_memory_operand_raises():
    with pytest.raises(AssemblerError):
        assemble("lw t0, t1\nhalt")


def test_program_without_halt_rejected():
    with pytest.raises(ValueError):
        assemble("nop")
