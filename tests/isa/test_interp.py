"""Unit tests for the reference interpreter and ALU semantics."""

import pytest

from repro.isa import assemble, run_reference
from repro.isa.instructions import Opcode
from repro.isa.interp import branch_taken, evaluate_alu, to_signed64, to_unsigned64


def test_signed_wrapping():
    assert to_signed64((1 << 63)) == -(1 << 63)
    assert to_signed64(-1) == -1
    assert to_unsigned64(-1) == (1 << 64) - 1


def test_alu_basics():
    assert evaluate_alu(Opcode.ADD, 2, 3, 0) == 5
    assert evaluate_alu(Opcode.SUB, 2, 3, 0) == -1
    assert evaluate_alu(Opcode.XOR, 0b101, 0b011, 0) == 0b110
    assert evaluate_alu(Opcode.SLT, -1, 1, 0) == 1
    assert evaluate_alu(Opcode.SLTU, -1, 1, 0) == 0  # unsigned compare
    assert evaluate_alu(Opcode.SLLI, 1, 0, 4) == 16
    assert evaluate_alu(Opcode.SRAI, -16, 0, 2) == -4
    assert evaluate_alu(Opcode.SRLI, -1, 0, 60) == 15


def test_division_by_zero_riscv_semantics():
    assert evaluate_alu(Opcode.DIV, 7, 0, 0) == -1
    assert evaluate_alu(Opcode.REM, 7, 0, 0) == 7
    assert evaluate_alu(Opcode.DIV, -7, 2, 0) == -3  # truncating
    assert evaluate_alu(Opcode.REM, -7, 2, 0) == -1


def test_branch_taken_variants():
    assert branch_taken(Opcode.BEQ, 1, 1)
    assert branch_taken(Opcode.BNE, 1, 2)
    assert branch_taken(Opcode.BLT, -2, 1)
    assert not branch_taken(Opcode.BLTU, -2, 1)  # unsigned
    assert branch_taken(Opcode.BGE, 5, 5)
    assert branch_taken(Opcode.BGEU, -1, 1)


def test_loop_execution():
    interp = run_reference(assemble("""
        li   t0, 10
        li   t1, 0
    loop:
        addi t1, t1, 2
        addi t0, t0, -1
        bne  t0, zero, loop
        halt
    """))
    assert interp.state.read_reg(6) == 20
    assert interp.instructions_retired == 1 + 1 + 3 * 10 + 1


def test_memory_round_trip():
    interp = run_reference(assemble("""
        li t0, 123
        sw t0, 40(zero)
        lw t1, 40(zero)
        halt
    """))
    assert interp.state.read_reg(6) == 123
    assert interp.state.read_mem(40) == 123


def test_jal_and_jalr():
    interp = run_reference(assemble("""
        jal  ra, target
        halt
    target:
        li   t0, 9
        jalr t1, ra, 0
    """))
    # jal at pc 0 links pc+1 = 1 (the halt); jalr returns there.
    assert interp.state.read_reg(1) == 1
    assert interp.state.read_reg(5) == 9


def test_x0_stays_zero():
    interp = run_reference(assemble("""
        li   x0, 55
        addi x0, x0, 1
        halt
    """))
    assert interp.state.read_reg(0) == 0


def test_load_addresses_recorded():
    interp = run_reference(assemble("""
        .word 8 77
        lw t0, 8(zero)
        halt
    """))
    assert interp.load_addresses == [8]


def test_runaway_program_raises():
    program = assemble("""
    loop:
        jal zero, loop
        halt
    """)
    with pytest.raises(RuntimeError):
        run_reference(program, max_steps=100)


def test_negative_address_wraps_unsigned():
    interp = run_reference(assemble("""
        li t0, -8
        sw t0, 0(t0)
        halt
    """))
    wrapped = (1 << 64) - 8
    assert interp.state.read_mem(wrapped) == -8
