"""Unit tests for the static instruction layer."""

import pytest

from repro.isa.instructions import Instruction, OPCODE_INFO, Opcode


def test_every_opcode_has_info():
    for op in Opcode:
        assert op in OPCODE_INFO, op


def test_transmitter_classification():
    assert Instruction(op=Opcode.LW, rd=1, rs1=2).is_transmitter
    assert Instruction(op=Opcode.SW, rs1=1, rs2=2).is_transmitter
    assert Instruction(op=Opcode.BEQ, rs1=1, rs2=2, imm=0).is_transmitter
    assert Instruction(op=Opcode.JALR, rd=1, rs1=2).is_transmitter
    assert not Instruction(op=Opcode.ADD, rd=1, rs1=2, rs2=3).is_transmitter
    assert not Instruction(op=Opcode.MUL, rd=1, rs1=2, rs2=3).is_transmitter
    assert not Instruction(op=Opcode.JAL, rd=1, imm=0).is_transmitter


def test_memory_classification():
    load = Instruction(op=Opcode.LW, rd=1, rs1=2)
    store = Instruction(op=Opcode.SW, rs1=1, rs2=2)
    assert load.is_load and not load.is_store
    assert store.is_store and not store.is_load
    assert load.writes_rd
    assert not store.writes_rd


def test_x0_sources_are_omitted():
    instr = Instruction(op=Opcode.ADD, rd=5, rs1=0, rs2=7)
    assert instr.source_regs == (7,)
    instr = Instruction(op=Opcode.ADD, rd=5, rs1=0, rs2=0)
    assert instr.source_regs == ()


def test_x0_destination_never_written():
    assert not Instruction(op=Opcode.ADD, rd=0, rs1=1, rs2=2).writes_rd


def test_store_operand_split():
    store = Instruction(op=Opcode.SW, rs1=3, rs2=4, imm=8)
    assert store.address_source_regs == (3,)
    assert store.data_source_regs == (4,)


def test_load_address_sources():
    load = Instruction(op=Opcode.LW, rd=1, rs1=6, imm=8)
    assert load.address_source_regs == (6,)
    assert load.data_source_regs == ()


def test_immediate_alu_reads_only_rs1():
    instr = Instruction(op=Opcode.ADDI, rd=5, rs1=6, imm=1)
    assert instr.source_regs == (6,)


def test_branch_latencies_positive():
    for op, info in OPCODE_INFO.items():
        assert info.latency >= 1, op


def test_div_classified_unpipelined():
    assert OPCODE_INFO[Opcode.DIV].is_div
    assert OPCODE_INFO[Opcode.REM].is_div
    assert OPCODE_INFO[Opcode.DIV].latency > OPCODE_INFO[Opcode.MUL].latency


def test_control_classification():
    assert Instruction(op=Opcode.JAL, rd=1, imm=0).is_control
    assert Instruction(op=Opcode.BNE, rs1=1, rs2=2, imm=0).is_control
    assert not Instruction(op=Opcode.LW, rd=1, rs1=1).is_control


def test_str_renders_each_shape():
    samples = [
        Instruction(op=Opcode.NOP),
        Instruction(op=Opcode.HALT),
        Instruction(op=Opcode.LI, rd=1, imm=5),
        Instruction(op=Opcode.LW, rd=1, rs1=2, imm=4),
        Instruction(op=Opcode.SW, rs1=2, rs2=3, imm=4),
        Instruction(op=Opcode.BEQ, rs1=1, rs2=2, imm=7),
        Instruction(op=Opcode.JAL, rd=1, imm=3),
        Instruction(op=Opcode.JALR, rd=1, rs1=2, imm=0),
        Instruction(op=Opcode.ADD, rd=1, rs1=2, rs2=3),
        Instruction(op=Opcode.ADDI, rd=1, rs1=2, imm=9),
    ]
    for instr in samples:
        text = str(instr)
        assert instr.op.value in text
