"""Columnar trace storage: typed-layout coercion, payload round-trips,
corruption rejection, and numpy-vs-stdlib equivalence.

The serialisation contract (trace-v2) is load-bearing for the disk
cache: a payload must survive array -> payload -> array bit-identically
on any host, and *anything* damaged — stale version, foreign
endianness, bad base64, truncated buffers, disagreeing lengths,
non-boolean flags — must raise ``ValueError`` so the cache re-records
instead of replaying garbage.
"""

import base64
import json
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.isa.trace as trace_mod
from repro.isa.trace import (
    _ITEMSIZE,
    _PAYLOAD_ENDIAN,
    TRACE_FORMAT_VERSION,
    DynamicTrace,
    record_trace,
)
from repro.workloads.kernels import streaming_kernel

_U64 = st.integers(min_value=0, max_value=2**64 - 1)
_S64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)


def _make_trace(pcs, next_pcs, results, addrs, taken, l1_hit):
    return DynamicTrace(
        program_name="prop", program_len=max(len(pcs), 1), entry=0,
        pcs=pcs, next_pcs=next_pcs, results=results, addrs=addrs,
        taken=taken, l1_hit=l1_hit,
    )


@st.composite
def _columns(draw, max_len=64):
    n = draw(st.integers(min_value=0, max_value=max_len))
    return (
        draw(st.lists(_U64, min_size=n, max_size=n)),
        draw(st.lists(_U64, min_size=n, max_size=n)),
        draw(st.lists(_S64, min_size=n, max_size=n)),
        draw(st.lists(_U64, min_size=n, max_size=n)),
        bytes(draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))),
        bytes(draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))),
    )


@given(cols=_columns())
@settings(max_examples=60, deadline=None)
def test_payload_roundtrip_is_bit_identical(cols):
    trace = _make_trace(*cols)
    payload = trace.to_payload()
    # Payloads must be plain JSON all the way down.
    clone = DynamicTrace.from_payload(json.loads(json.dumps(payload)))
    assert list(clone.pcs) == list(cols[0])
    assert list(clone.next_pcs) == list(cols[1])
    assert list(clone.results) == list(cols[2])
    assert list(clone.addrs) == list(cols[3])
    assert clone.taken == cols[4]
    assert clone.l1_hit == cols[5]
    # Second hop is byte-identical: serialisation is canonical.
    assert clone.to_payload() == payload


@given(cols=_columns())
@settings(max_examples=30, deadline=None)
def test_typed_layout_and_list_coercion_agree(cols):
    typed = _make_trace(*cols)
    assert typed.pcs.typecode == "Q" and typed.results.typecode == "q"
    assert isinstance(typed.taken, bytes)
    # Constructing from the already-typed columns must not copy.
    again = _make_trace(typed.pcs, typed.next_pcs, typed.results,
                        typed.addrs, typed.taken, typed.l1_hit)
    assert again.pcs is typed.pcs and again.taken is typed.taken
    assert again.to_payload() == typed.to_payload()


def _good_payload():
    trace = _make_trace([1, 2, 3], [2, 3, 3], [-7, 0, 5], [0, 64, 0],
                        b"\x00\x01\x00", b"\x01\x00\x00")
    return trace.to_payload()


def test_payload_declares_canonical_format():
    payload = _good_payload()
    assert payload["format_version"] == TRACE_FORMAT_VERSION
    assert payload["endian"] == _PAYLOAD_ENDIAN == "little"
    assert payload["itemsize"] == _ITEMSIZE == 8
    # The encoded words really are the little-endian raw buffer.
    raw = base64.b64decode(payload["pcs"])
    assert raw == b"".join(v.to_bytes(8, "little") for v in (1, 2, 3))


@pytest.mark.parametrize("mutation", [
    {"format_version": "trace-v1"},
    {"format_version": None},
    {"endian": "big"},
    {"itemsize": 4},
    {"pcs": "!!not base64!!"},
    {"taken": "!!not base64!!"},
    # Truncated word buffer: 3 words minus one byte.
    {"results": base64.b64encode(bytes(23)).decode("ascii")},
    # Column length disagreement: 2 words where siblings have 3.
    {"addrs": base64.b64encode(bytes(16)).decode("ascii")},
    {"taken": base64.b64encode(b"\x00\x01").decode("ascii")},
    # Non-boolean flag bytes would silently flip replay decisions.
    {"taken": base64.b64encode(b"\x00\x02\x00").decode("ascii")},
    {"l1_hit": base64.b64encode(b"\xff\x00\x00").decode("ascii")},
])
def test_damaged_payloads_are_rejected(mutation):
    payload = dict(_good_payload())
    payload.update(mutation)
    with pytest.raises(ValueError):
        DynamicTrace.from_payload(payload)


def test_good_payload_still_loads():
    clone = DynamicTrace.from_payload(_good_payload())
    assert list(clone.results) == [-7, 0, 5]


def test_numpy_and_stdlib_paths_are_bit_identical(monkeypatch):
    """The numpy gate only accelerates validation: payloads, rebuilt
    columns, and rejection behaviour are identical with ``_np`` forced
    off (the REPRO_NO_NUMPY / no-numpy-installed path)."""
    program = streaming_kernel(iterations=3, array_words=64)
    with_np = record_trace(program)
    payload_np = with_np.to_payload()

    monkeypatch.setattr(trace_mod, "_np", None)
    without_np = record_trace(program)
    payload_std = without_np.to_payload()
    assert payload_std == payload_np

    clone = DynamicTrace.from_payload(payload_np)
    assert clone.to_payload() == payload_np
    bad = dict(payload_np)
    bad["l1_hit"] = base64.b64encode(
        bytes(b ^ 2 for b in clone.l1_hit)).decode("ascii")
    with pytest.raises(ValueError):
        DynamicTrace.from_payload(bad)


def test_recorded_trace_uses_typed_columns():
    trace = record_trace(streaming_kernel(iterations=2, array_words=32))
    assert isinstance(trace.pcs, array) and trace.pcs.typecode == "Q"
    assert isinstance(trace.results, array) and trace.results.typecode == "q"
    assert isinstance(trace.taken, bytes) and isinstance(trace.l1_hit, bytes)
    assert len(trace) == len(trace.pcs) == len(trace.taken)
    assert trace.pcs[0] == trace.entry
