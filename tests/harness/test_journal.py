"""Campaign journal: atomic header, append/replay, crash tolerance."""

import json

from repro.harness.journal import (
    DEFAULT_JOURNAL_NAME,
    CampaignJournal,
    JOURNAL_FORMAT,
    journal_path,
)


KEYS = ["a" * 64, "b" * 64, "c" * 64, "d" * 64]


def test_journal_path_is_under_store_dir(tmp_path):
    path = journal_path(tmp_path)
    assert path.parent == tmp_path
    assert path.name == DEFAULT_JOURNAL_NAME


def test_journal_round_trip(tmp_path):
    path = tmp_path / "campaign.journal.jsonl"
    with CampaignJournal(path).begin(KEYS) as journal:
        journal.append({"event": "steal", "key": KEYS[0], "worker": "w1"})
        journal.append({"event": "steal", "key": KEYS[1], "worker": "w2"})
        journal.append({"event": "done", "key": KEYS[0]})
        journal.append({"event": "requeue", "key": KEYS[1], "attempts": 1})
        journal.append({"event": "steal", "key": KEYS[2], "worker": "w1"})

    state = CampaignJournal.load(path)
    assert state.keys == KEYS
    assert state.done == {KEYS[0]}
    assert list(state.in_flight) == [KEYS[2]]
    assert state.attempts == {KEYS[1]: 1}
    assert state.sessions == 1
    # In-flight cells first (steal order), then header order.
    assert state.resume_order([KEYS[3], KEYS[1], KEYS[2]]) == [
        KEYS[2], KEYS[1], KEYS[3]]


def test_journal_quarantine_failure_and_unfail(tmp_path):
    path = tmp_path / "j.jsonl"
    record = {"key": KEYS[0], "kind": "poisoned", "attempts": 3}
    with CampaignJournal(path).begin(KEYS) as journal:
        journal.append({"event": "quarantine", "key": KEYS[0],
                        "failure": record})
        journal.append({"event": "failure", "key": KEYS[1],
                        "failure": {"kind": "deterministic"}})
        journal.append({"event": "unfail", "key": KEYS[1]})
        journal.append({"event": "done", "key": KEYS[1]})

    state = CampaignJournal.load(path)
    assert state.quarantined == {KEYS[0]: record}
    assert state.attempts[KEYS[0]] == 3
    assert state.failed == {}  # unfail dissolved it
    assert state.done == {KEYS[1]}


def test_journal_resume_appends_session_marker(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path).begin(KEYS) as journal:
        journal.append({"event": "steal", "key": KEYS[0], "worker": "w"})
    with CampaignJournal(path).resume() as journal:
        journal.append({"event": "done", "key": KEYS[0]})
    state = CampaignJournal.load(path)
    assert state.sessions == 2
    assert state.done == {KEYS[0]}


def test_journal_tolerates_truncated_final_line(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path).begin(KEYS) as journal:
        journal.append({"event": "done", "key": KEYS[0]})
    # A crash mid-append leaves half a JSON line at the end.
    with open(path, "a") as handle:
        handle.write('{"event": "done", "key": "trunc')
    state = CampaignJournal.load(path)
    assert state is not None
    assert state.done == {KEYS[0]}


def test_journal_stops_at_corrupt_interior_line(tmp_path):
    path = tmp_path / "j.jsonl"
    header = json.dumps({"journal": JOURNAL_FORMAT, "keys": KEYS})
    lines = [header,
             json.dumps({"event": "done", "key": KEYS[0]}),
             "garbage not json",
             json.dumps({"event": "done", "key": KEYS[1]})]
    path.write_text("\n".join(lines) + "\n")
    state = CampaignJournal.load(path)
    # Everything before the corruption is a consistent prefix; the
    # event after it is not trusted.
    assert state.done == {KEYS[0]}


def test_journal_load_rejects_missing_and_foreign(tmp_path):
    assert CampaignJournal.load(tmp_path / "absent.jsonl") is None
    foreign = tmp_path / "foreign.jsonl"
    foreign.write_text('{"journal": "other-v9", "keys": []}\n')
    assert CampaignJournal.load(foreign) is None
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert CampaignJournal.load(empty) is None


def test_journal_begin_replaces_previous_campaign(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path).begin(KEYS) as journal:
        journal.append({"event": "done", "key": KEYS[0]})
    with CampaignJournal(path).begin(KEYS[:2]):
        pass
    state = CampaignJournal.load(path)
    assert state.keys == KEYS[:2]
    assert state.done == set()  # the old campaign's events are gone
