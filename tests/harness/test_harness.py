"""Tests for the experiment harness and gem5 proxy (fast scales)."""

import pytest

from repro.harness.experiments import (
    ExperimentReport,
    experiment_exchange2,
    experiment_figure9,
    experiment_ids,
    experiment_table1,
    run_experiment,
)
from repro.harness.runner import CampaignRunner
from repro.pipeline.config import MEDIUM, MEGA


@pytest.fixture(scope="module")
def runner():
    """A small shared campaign for harness tests."""
    return CampaignRunner(scale=0.1, benchmarks=(
        "503.bwaves", "548.exchange2", "541.leela",
    ))


def test_runner_caches_results(runner):
    first = runner.run("503.bwaves", MEGA, "baseline")
    second = runner.run("503.bwaves", MEGA, "baseline")
    assert first is second


def test_suite_results_ordered(runner):
    results = runner.suite_results(MEGA, "baseline")
    assert [r.program_name for r in results] == list(runner.benchmarks)


def test_experiment_registry_complete():
    ids = experiment_ids()
    for expected in ("table1", "table3", "table4", "table5", "figure6",
                     "figure7", "figure8", "figure9", "figure10",
                     "exchange2", "ablation-store-taints",
                     "ablation-l1-latency"):
        assert expected in ids


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiment("table99")


def test_table1_report(runner):
    report = experiment_table1(runner)
    assert isinstance(report, ExperimentReport)
    assert "small" in report.text and "mega" in report.text
    assert set(report.data) == {"small", "medium", "large", "mega"}
    assert report.data["mega"] > report.data["small"]


def test_figure9_needs_no_simulation():
    report = experiment_figure9()
    assert "baseline" in report.text
    for config in ("small", "medium", "large", "mega"):
        assert config in report.data
        assert report.data[config]["stt-rename"]["mhz"] > 0


def test_exchange2_report(runner):
    report = experiment_exchange2(runner)
    assert "stt-rename" in report.data
    assert report.data["stt-rename"]["ipc"] > 0
    assert "error_ratio_vs_nda" in report.data


def test_report_str_renders():
    report = experiment_figure9()
    text = str(report)
    assert report.title in text


def test_gem5_configs():
    from repro.gem5 import GEM5_NDA_CONFIG, GEM5_STT_CONFIG, gem5_config

    assert gem5_config("stt") is GEM5_STT_CONFIG
    assert gem5_config("nda") is GEM5_NDA_CONFIG
    # The Section 9.5 complaint: a 1-cycle L1 in the STT-paper config.
    assert GEM5_STT_CONFIG.mem.l1_latency == 1
    assert GEM5_STT_CONFIG.mem.l1_latency < MEGA.mem.l1_latency
    with pytest.raises(ValueError):
        gem5_config("esp")


def test_gem5_model_excludes_paper_benchmarks():
    from repro.gem5.model import GEM5_EXCLUDED, Gem5Model

    model = Gem5Model("nda", scale=0.05)
    names = model.benchmarks()
    for excluded in GEM5_EXCLUDED:
        assert excluded not in names
    assert len(names) == 19


def test_gem5_loss_computation():
    from repro.gem5.model import gem5_ipc_loss

    base_ipc, loss = gem5_ipc_loss("nda", "nda", scale=0.05)
    assert base_ipc > 0
    assert -0.2 <= loss <= 1.0
