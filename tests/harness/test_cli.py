"""CLI-level tests for ``python -m repro`` (the new subcommands)."""

import json

import pytest

from repro.__main__ import main, parse_hostport
from repro.harness.runner import CampaignRunner
from repro.harness.store import ResultStore
from repro.pipeline.config import SMALL

BENCH = "503.bwaves"


def test_parse_hostport():
    assert parse_hostport("example.org:9000") == ("example.org", 9000)
    assert parse_hostport("example.org") == ("example.org", 2017)
    assert parse_hostport(":9000") == ("127.0.0.1", 9000)


def test_cli_grid_serial_and_store(tmp_path, capsys):
    code = main(["grid", "--scale", "0.05", "--benchmarks", BENCH,
                 "--configs", "small", "--schemes", "baseline",
                 "--store-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "1 cells" in out and "1 simulated" in out
    assert len(ResultStore(tmp_path)) == 1


def test_cli_grid_cluster_executor(tmp_path, capsys):
    code = main(["grid", "--scale", "0.05", "--benchmarks", BENCH,
                 "--configs", "small", "--schemes", "baseline", "nda",
                 "--executor", "cluster", "--local-workers", "2",
                 "--store-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "cluster coordinator serving on" in out
    assert "2 simulated" in out
    assert len(ResultStore(tmp_path)) == 2


def test_cli_store_verify_and_gc(tmp_path, capsys):
    store = ResultStore(tmp_path)
    runner = CampaignRunner(scale=0.05, benchmarks=(BENCH,))
    # One healthy in-grid cell (default scale 1.0 for gc, so save one
    # at scale 1.0 identity), one corrupt file.
    grid_runner = CampaignRunner(scale=1.0, benchmarks=(BENCH,))
    key = grid_runner.cell_key(BENCH, SMALL, "baseline")
    store.save(key, runner.run(BENCH, SMALL, "baseline"))
    (tmp_path / ("junk__x__y__%s.json" % ("e" * 12))).write_text("{broken")

    assert main(["store", "verify", "--store-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "2 scanned" in out and "1 corrupt set aside" in out

    assert main(["store", "gc", "--store-dir", str(tmp_path),
                 "--benchmarks", BENCH]) == 0
    out = capsys.readouterr().out
    assert "1 kept, 0 dropped" in out

    # gc for a different scale keeps nothing.
    assert main(["store", "gc", "--store-dir", str(tmp_path),
                 "--scale", "0.25", "--benchmarks", BENCH]) == 0
    out = capsys.readouterr().out
    assert "0 kept, 1 dropped" in out
    assert len(ResultStore(tmp_path)) == 0


def test_cli_store_failures(tmp_path, capsys):
    from repro.harness.store import CellFailure

    store = ResultStore(tmp_path)
    # A clean store exits 0 and says so.
    assert main(["store", "failures", "--store-dir", str(tmp_path)]) == 0
    assert "0 recorded" in capsys.readouterr().out

    store.save_failure(CellFailure(
        key="a" * 64, benchmark=BENCH, config_name="small",
        scheme_name="baseline", kind="timeout", attempts=2, worker="w9",
        error="cell exceeded the 5.0s wall-clock deadline"))
    # Any recorded failure makes the action exit nonzero (scriptable in
    # CI as a campaign-health check).
    assert main(["store", "failures", "--store-dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "1 recorded" in out
    assert BENCH in out and "timeout" in out and "x2" in out
    assert "wall-clock" in out


def test_cli_serve_writes_journal_and_resumes(tmp_path, capsys):
    from repro.harness.journal import CampaignJournal, journal_path

    args = ["serve", "--scale", "0.05", "--benchmarks", BENCH,
            "--configs", "small", "--schemes", "baseline",
            "--host", "127.0.0.1", "--port", "0", "--local-workers", "2",
            "--store-dir", str(tmp_path)]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "campaign drained" in out and "1 simulated" in out
    state = CampaignJournal.load(journal_path(tmp_path))
    assert state is not None and len(state.done) == 1

    # Simulate a coordinator crash that lost the store cells: --resume
    # replays the journal, re-simulates the missing cell, and the
    # journal gains a session marker.
    from repro.harness.store import ResultStore

    ResultStore(tmp_path).clear()
    assert main(args + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "1 simulated" in out
    resumed = CampaignJournal.load(journal_path(tmp_path))
    assert resumed.sessions == 2 and len(resumed.done) == 1


def test_cli_bench_record(tmp_path, capsys):
    record = tmp_path / "BENCH_TEST.json"
    code = main(["bench", "--scale", "0.02", "--repeats", "1",
                 "--record", str(record)])
    assert code == 0
    report = json.loads(record.read_text())
    assert report["benchmark"] == "simulator_throughput"
    assert report["aggregate"]["cycles"] > 0
    printed = json.loads(capsys.readouterr().out)
    assert printed["aggregate"] == report["aggregate"]


def test_cli_accepts_underscore_scheme_aliases(tmp_path, capsys):
    """Registry aliases (stt_rename) must survive argparse choices."""
    code = main(["grid", "--scale", "0.05", "--benchmarks", BENCH,
                 "--configs", "small", "--schemes", "stt_rename",
                 "--store-dir", str(tmp_path)])
    assert code == 0
    assert "1 simulated" in capsys.readouterr().out


def test_cli_restores_program_cache_configuration(tmp_path):
    """main() must not leak one run's disk-cache dir into the process."""
    from repro.workloads.program_cache import disk_cache_dir

    before = disk_cache_dir()
    assert main(["grid", "--scale", "0.05", "--benchmarks", BENCH,
                 "--configs", "small", "--schemes", "baseline",
                 "--store-dir", str(tmp_path)]) == 0
    assert disk_cache_dir() == before


def test_cli_schemes_lists_registry(capsys):
    from repro.core.registry import iter_specs

    assert main(["schemes", "--verbose"]) == 0
    out = capsys.readouterr().out
    for spec in iter_specs():
        assert spec.name in out
    assert "split_store_taints" in out  # kwargs schema printed


def test_cli_bench_multi_scheme(tmp_path, capsys):
    record = tmp_path / "BENCH_MULTI.json"
    code = main(["bench", "--scale", "0.02", "--repeats", "1",
                 "--schemes", "baseline", "nda",
                 "--record", str(record)])
    assert code == 0
    report = json.loads(record.read_text())
    assert set(report["schemes"]) == {"baseline", "nda"}
    for section in report["schemes"].values():
        assert section["aggregate"]["cycles"] > 0
    assert report["aggregate"]["cycles"] == sum(
        s["aggregate"]["cycles"] for s in report["schemes"].values())


def test_cli_bench_compare(tmp_path, capsys):
    old = tmp_path / "OLD.json"
    new = tmp_path / "NEW.json"
    assert main(["bench", "--scale", "0.02", "--repeats", "1",
                 "--schemes", "baseline", "--record", str(old)]) == 0
    capsys.readouterr()
    # Doctor the "new" report: +10% cycles/s everywhere, foreign host.
    report = json.loads(old.read_text())
    for section in report["schemes"].values():
        for row in section["workloads"] + [section["aggregate"]]:
            row["cycles_per_second"] = round(
                row["cycles_per_second"] * 1.1, 1)
    report["aggregate"]["cycles_per_second"] = round(
        report["aggregate"]["cycles_per_second"] * 1.1, 1)
    report["host"] = dict(report["host"], platform="other-box")
    new.write_text(json.dumps(report))

    assert main(["bench", "--compare", str(old), str(new)]) == 0
    out = capsys.readouterr().out
    assert "scheme: baseline" in out
    assert "+10.0%" in out
    assert "1.100x" in out
    assert "different hosts" in out
    assert "platform" in out

    # Same report on both sides: clean table, no warning.
    assert main(["bench", "--compare", str(old), str(old)]) == 0
    out = capsys.readouterr().out
    assert "different hosts" not in out
    assert "1.000x" in out


def test_compare_bench_reports_shapes():
    """Single-scheme and multi-scheme report shapes are comparable,
    and one-sided schemes/workloads surface instead of vanishing."""
    from repro.harness.bench import compare_bench_reports

    host = {"python": "3", "implementation": "C", "platform": "p",
            "cpu_count": 1}
    single = {
        "scheme": "baseline", "config": "mega", "scale": 1.0,
        "host": host,
        "workloads": [{"workload": "mixed", "cycles_per_second": 100.0}],
        "aggregate": {"cycles_per_second": 100.0},
    }
    multi = {
        "config": "mega", "scale": 1.0, "host": host,
        "schemes": {
            "baseline": {
                "workloads": [{"workload": "mixed",
                               "cycles_per_second": 150.0}],
                "aggregate": {"cycles_per_second": 150.0},
            },
            "nda": {"workloads": [], "aggregate": {}},
        },
        "aggregate": {"cycles_per_second": 150.0},
    }
    comparison = compare_bench_reports(single, multi)
    assert comparison["host_mismatches"] == []
    assert comparison["only_new"] == ["nda"]
    row = comparison["schemes"]["baseline"]["workloads"][0]
    assert row["speedup"] == 1.5 and row["delta_pct"] == 50.0
    assert comparison["aggregate"]["speedup"] == 1.5


def test_cli_grid_populates_program_disk_cache(tmp_path, capsys):
    """make_runner points the program cache at <store>/programs."""
    from repro.workloads.program_cache import clear_cache, configure_disk_cache

    previous = configure_disk_cache(None)
    clear_cache()  # the disk layer persists at generation time
    try:
        code = main(["grid", "--scale", "0.05", "--benchmarks", BENCH,
                     "--configs", "small", "--schemes", "baseline",
                     "--store-dir", str(tmp_path)])
        assert code == 0
        assert list((tmp_path / "programs").glob("*.json"))
    finally:
        configure_disk_cache(previous)


def test_cli_run_unknown_experiment(capsys):
    assert main(["run", "definitely-not-an-experiment"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_work_refuses_bad_coordinator(capsys):
    # Nothing listens: the reconnect loop (disabled here to keep the
    # test instant) exhausts and the worker reports the loss, exit 1.
    code = main(["work", "--connect", "127.0.0.1:1",
                 "--max-reconnects", "0"])
    assert code == 1
    err = capsys.readouterr().err
    assert "lost its coordinator" in err and "0 reconnect(s)" in err


def test_cli_pipeview_writes_trace(tmp_path, capsys):
    out_file = tmp_path / "trace.out"
    code = main(["pipeview", "streaming-warm", "--config", "small",
                 "--scale", "0.02", "--limit", "64",
                 "--output", str(out_file)])
    assert code == 0
    text = out_file.read_text()
    assert text.startswith("O3PipeView:fetch:")
    assert "O3PipeView:retire:" in text
    err = capsys.readouterr().err
    assert "uop record(s)" in err and "traced streaming-warm" in err


def test_cli_pipeview_stdout(capsys):
    assert main(["pipeview", "streaming-warm", "--config", "small",
                 "--scale", "0.02", "--limit", "16"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("O3PipeView:fetch:")


def test_cli_metrics_reports_stall_breakdown(tmp_path, capsys):
    # Empty store: exit 1 with a pointer to populate it.
    assert main(["metrics", str(tmp_path)]) == 1
    assert "no cycle-accounted results" in capsys.readouterr().err

    assert main(["grid", "--scale", "0.05", "--benchmarks", BENCH,
                 "--configs", "small", "--schemes", "baseline", "fence",
                 "--store-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["metrics", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "fence" in out
    assert "conservation: ok" in out
    assert "VIOLATED" not in out


def test_cli_profile_json(capsys):
    code = main(["profile", "--scale", "0.02", "--json",
                 "--sort", "tottime", "--top", "5",
                 "--benchmark", "streaming-warm", "--config", "small"])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["sort"] == "tottime"
    assert report["benchmark"] == "streaming-warm"
    assert 0 < len(report["functions"]) <= 5
    times = [row["tottime"] for row in report["functions"]]
    assert times == sorted(times, reverse=True)
    assert report["host"]["python"]
    assert report["simulated_cycles"] > 0


def test_cli_grid_progress_json(tmp_path, capsys):
    code = main(["grid", "--scale", "0.05", "--benchmarks", BENCH,
                 "--configs", "small", "--schemes", "baseline",
                 "--progress", "json", "--store-dir", str(tmp_path)])
    assert code == 0
    err_lines = [line for line in capsys.readouterr().err.splitlines()
                 if line.startswith("{")]
    assert err_lines, "no JSONL progress emitted"
    snap = json.loads(err_lines[-1])
    assert snap["done"] == snap["total"] == 1


def test_cli_bench_reports_host_metadata(tmp_path):
    record = tmp_path / "BENCH_HOST.json"
    assert main(["bench", "--scale", "0.02", "--repeats", "1",
                 "--record", str(record)]) == 0
    host = json.loads(record.read_text())["host"]
    assert host["python"] and host["platform"]
    assert host["cpu_count"] >= 1
