"""Cluster backend tests: protocol, loopback equivalence, fault injection.

Everything runs in-process on 127.0.0.1 — a coordinator plus worker
threads — so the full socket path (framing, stealing, heartbeats,
requeue) is exercised without any external orchestration.
"""

import socket
import threading
import time

import pytest

from repro.harness.cluster import (
    ClusterCoordinator,
    ClusterExecutor,
    ClusterWorker,
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
    spec_from_wire,
    spec_to_wire,
)
from repro.harness.executor import (
    PoolExecutor,
    SerialExecutor,
    make_executor,
)
from repro.core.registry import scheme_wire_versions
from repro.harness.parallel import run_cells
from repro.harness.progress import ProgressReporter
from repro.harness.runner import CampaignRunner
from repro.harness.store import ResultStore
from repro.pipeline.config import MEDIUM, SMALL

SUBSET = ("503.bwaves", "548.exchange2")


def small_specs(schemes=("baseline", "nda"), configs=(SMALL,)):
    return [
        (benchmark, config, scheme, (), 0.05, 2017)
        for config in configs
        for scheme in schemes
        for benchmark in SUBSET
    ]


def start_worker(host, port, **kwargs):
    worker = ClusterWorker(host, port, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


# ----------------------------------------------------------------------
# Protocol: framing and wire specs.
# ----------------------------------------------------------------------

def test_frame_round_trip():
    a, b = socket.socketpair()
    try:
        message = {"kind": "cell", "cell_id": 7, "spec": {"nested": [1, 2]}}
        send_frame(a, message)
        assert recv_frame(b) == message
        a.close()
        assert recv_frame(b) is None  # clean EOF
    finally:
        b.close()


def test_frame_rejects_oversized_and_garbage():
    a, b = socket.socketpair()
    try:
        # A bogus length prefix claiming 1 GiB must be rejected before
        # any allocation of that size.
        a.sendall((1 << 30).to_bytes(4, "big"))
        with pytest.raises(ProtocolError):
            recv_frame(b)
        a2, b2 = socket.socketpair()
        try:
            a2.sendall(len(b"not json").to_bytes(4, "big") + b"not json")
            with pytest.raises(ProtocolError):
                recv_frame(b2)
        finally:
            a2.close()
            b2.close()
    finally:
        a.close()
        b.close()


def test_truncated_header_is_protocol_error_not_struct_error():
    a, b = socket.socketpair()
    try:
        a.sendall(b"\x00\x00")  # half a length prefix, then EOF
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(b)
    finally:
        b.close()


def test_spec_wire_round_trip():
    spec = ("548.exchange2", MEDIUM.scaled(rob_entries=48), "stt-rename",
            (("split_store_taints", True),), 0.25, 99)
    rebuilt = spec_from_wire(spec_to_wire(spec))
    assert rebuilt[0] == spec[0]
    # The config travels by value: full fingerprint equality, not name.
    assert rebuilt[1] == spec[1]
    assert rebuilt[1].fingerprint() == spec[1].fingerprint()
    assert rebuilt[2:] == spec[2:]


# ----------------------------------------------------------------------
# Loopback: cluster results are bit-identical to the serial backend.
# ----------------------------------------------------------------------

def test_loopback_cluster_matches_serial():
    specs = small_specs(configs=(SMALL, MEDIUM))
    serial = run_cells(specs, jobs=1)

    executor = ClusterExecutor(local_workers=2, wait_timeout=120)
    progress = ProgressReporter(label="test").begin(len(specs))
    clustered = executor.run(specs, progress=progress)

    assert len(clustered) == len(serial)
    for mine, theirs in zip(serial, clustered):
        assert mine.stats.to_dict() == theirs.stats.to_dict()
        assert mine.regs == theirs.regs
        assert mine.memory == theirs.memory
    stats = executor.last_stats
    assert stats["completed"] == len(specs)
    assert stats["failed"] == 0
    # Both workers participated and attribution adds up.
    assert sum(stats["workers"].values()) == len(specs)
    assert progress.done == len(specs)
    assert sum(progress.per_worker.values()) == len(specs)


def test_cluster_runner_batch_streams_into_store(tmp_path):
    store = ResultStore(tmp_path)
    runner = CampaignRunner(scale=0.05, benchmarks=SUBSET, store=store)
    executor = ClusterExecutor(local_workers=2, wait_timeout=120)
    summary = runner.run_grid(configs=(SMALL,), schemes=("baseline", "nda"),
                              executor=executor)
    assert summary["simulated"] == 4
    assert len(store) == 4  # streamed via on_result, not post-hoc

    # A fresh runner over the same store simulates nothing.
    warm = CampaignRunner(scale=0.05, benchmarks=SUBSET,
                          store=ResultStore(tmp_path))
    again = warm.run_grid(configs=(SMALL,), schemes=("baseline", "nda"),
                          executor=ClusterExecutor(local_workers=2,
                                                   wait_timeout=120))
    assert again["simulated"] == 0
    assert again["from_store"] == 4


# ----------------------------------------------------------------------
# Fault injection: dead workers must not lose cells.
# ----------------------------------------------------------------------

def test_crashed_worker_cells_are_requeued():
    specs = small_specs()
    serial = run_cells(specs, jobs=1)

    coordinator = ClusterCoordinator(specs, heartbeat_timeout=2.0)
    coordinator.start()
    try:
        host, port = coordinator.address
        # The crasher steals one cell and dies without reporting it.
        crasher, crasher_thread = start_worker(
            host, port, name="crasher", crash_after_steals=1)
        crasher_thread.join(timeout=30)
        assert not crasher_thread.is_alive()
        assert crasher.cells_completed == 0

        survivor, survivor_thread = start_worker(host, port, name="survivor")
        assert coordinator.wait(timeout=120)
        results = coordinator.results()
        stats = coordinator.stats()
        survivor_thread.join(timeout=10)
    finally:
        coordinator.close()

    assert stats["requeues"] >= 1
    assert stats["completed"] == len(specs)
    assert stats["workers"] == {"survivor": len(specs)}
    for mine, theirs in zip(serial, results):
        assert mine.stats.to_dict() == theirs.stats.to_dict()


def test_silent_worker_times_out_and_is_requeued():
    specs = small_specs(schemes=("baseline",))
    coordinator = ClusterCoordinator(specs, heartbeat_timeout=0.4)
    coordinator.start()
    try:
        host, port = coordinator.address
        # A raw client steals a cell, then goes silent: no heartbeats,
        # no result, socket deliberately left open (a hung host, not a
        # crashed one).
        zombie = socket.create_connection((host, port), timeout=5)
        send_frame(zombie, {"kind": "hello", "worker": "zombie",
                            "protocol": PROTOCOL_VERSION,
                            "schemes": scheme_wire_versions()})
        assert recv_frame(zombie)["kind"] == "welcome"
        send_frame(zombie, {"kind": "steal"})
        assert recv_frame(zombie)["kind"] == "cell"

        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if coordinator.stats()["requeues"] >= 1:
                break
            time.sleep(0.05)
        assert coordinator.stats()["requeues"] >= 1

        _worker, thread = start_worker(host, port, name="rescuer")
        assert coordinator.wait(timeout=120)
        assert coordinator.stats()["completed"] == len(specs)
        thread.join(timeout=10)
        zombie.close()
    finally:
        coordinator.close()


def test_deterministic_worker_error_records_and_continues():
    # Default: a deterministic failure settles the cell as a
    # CellFailure, yields None at its index, and the rest of the grid
    # still completes (graceful degradation).
    bad = ("no.such.benchmark", SMALL, "baseline", (), 0.05, 2017)
    good = ("503.bwaves", SMALL, "baseline", (), 0.05, 2017)
    executor = ClusterExecutor(local_workers=1, wait_timeout=60)
    failures = {}
    results = executor.run([bad, good],
                           on_failure=lambda i, f: failures.__setitem__(i, f))
    assert results[0] is None
    assert results[1] is not None
    assert list(failures) == [0]
    assert failures[0].kind == "deterministic"
    assert "no.such.benchmark" in failures[0].error
    assert failures[0].traceback  # wire carries the remote traceback
    stats = executor.last_stats
    assert stats["failed"] == 1 and stats["quarantined"] == 0
    assert 0 in executor.last_failures


def test_deterministic_worker_error_fails_fast_when_asked():
    specs = [("no.such.benchmark", SMALL, "baseline", (), 0.05, 2017)]
    executor = ClusterExecutor(local_workers=1, wait_timeout=60,
                               fail_fast=True)
    with pytest.raises(RuntimeError, match="no.such.benchmark|errored"):
        executor.run(specs)


def test_late_duplicate_error_does_not_end_campaign():
    specs = small_specs(schemes=("baseline",))
    coordinator = ClusterCoordinator(specs, heartbeat_timeout=5.0)
    coordinator.start()
    try:
        host, port = coordinator.address
        # A real worker completes the whole grid first.
        _worker, thread = start_worker(host, port, name="winner")
        assert coordinator.wait(timeout=120)
        thread.join(timeout=10)
        # A straggler now reports an error for an already-done cell:
        # it must be ack'd and ignored, not recorded as a failure.
        conn = socket.create_connection((host, port), timeout=5)
        send_frame(conn, {"kind": "hello", "worker": "straggler",
                          "protocol": PROTOCOL_VERSION,
                          "schemes": scheme_wire_versions()})
        recv_frame(conn)
        send_frame(conn, {"kind": "error", "cell_id": 0,
                          "error": "MemoryError: host-specific"})
        assert recv_frame(conn)["kind"] == "ack"
        conn.close()
        assert coordinator.stats()["failed"] == 0
        assert len(coordinator.results()) == len(specs)  # does not raise
    finally:
        coordinator.close()


def test_poison_cell_is_quarantined_and_grid_completes():
    # One cell crashes every worker that steals it; after
    # max_cell_attempts deaths it is quarantined and the rest of the
    # grid still completes — one poisoned cell costs one cell, not the
    # campaign.
    from repro.harness.cluster import Fault, FaultPlan

    specs = small_specs(schemes=("baseline",))  # 2 cells, 2 benchmarks
    poison = specs[0][0]
    plan = FaultPlan([Fault("poison_cell", arg=poison)])
    executor = ClusterExecutor(local_workers=3, wait_timeout=120,
                               max_cell_attempts=2, fault_plan=plan)
    failures = {}
    results = executor.run(
        specs, on_failure=lambda i, f: failures.__setitem__(i, f))
    assert results[0] is None  # the poisoned cell
    assert results[1] is not None  # the healthy one completed
    assert failures[0].kind == "poisoned"
    assert failures[0].attempts == 2
    assert "died" in failures[0].error
    stats = executor.last_stats
    assert stats["quarantined"] == 1 and stats["failed"] == 0
    assert stats["requeues"] >= 1  # the first death requeued it once


def test_late_result_clears_quarantine_first_result_wins():
    # A cell is quarantined (its worker presumed dead), then the
    # presumed-dead worker's result arrives after all: determinism says
    # it is the result any rerun would produce, so it wins and the
    # quarantine dissolves.
    spec = ("503.bwaves", SMALL, "baseline", (), 0.05, 2017)
    serial = run_cells([spec], jobs=1)[0]

    cleared = []
    progress = ProgressReporter(label="test").begin(1)
    coordinator = ClusterCoordinator([spec], heartbeat_timeout=30.0,
                                     max_cell_attempts=1, progress=progress)
    coordinator.start()
    try:
        host, port = coordinator.address
        # Steal the cell, then vanish: with max_cell_attempts=1 the
        # death quarantines the cell immediately.
        doomed = socket.create_connection((host, port), timeout=5)
        send_frame(doomed, {"kind": "hello", "worker": "doomed",
                            "protocol": PROTOCOL_VERSION,
                            "schemes": scheme_wire_versions()})
        assert recv_frame(doomed)["kind"] == "welcome"
        send_frame(doomed, {"kind": "steal"})
        assert recv_frame(doomed)["kind"] == "cell"
        doomed.close()

        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if coordinator.stats()["quarantined"] == 1:
                break
            time.sleep(0.02)
        assert coordinator.stats()["quarantined"] == 1
        assert coordinator.wait(timeout=5)  # settled (by quarantine)
        assert progress.quarantined == 1
        assert coordinator.results() == [None]

        # The "dead" worker was merely slow: its result lands late.
        straggler = socket.create_connection((host, port), timeout=5)
        send_frame(straggler, {"kind": "hello", "worker": "doomed",
                               "protocol": PROTOCOL_VERSION,
                               "schemes": scheme_wire_versions()})
        assert recv_frame(straggler)["kind"] == "welcome"
        send_frame(straggler, {"kind": "result", "cell_id": 0,
                               "result": serial.to_dict()})
        assert recv_frame(straggler)["kind"] == "ack"
        straggler.close()

        stats = coordinator.stats()
        assert stats["quarantined"] == 0 and stats["completed"] == 1
        assert progress.quarantined == 0 and progress.done == 1
        results = coordinator.results()
        assert results[0].stats.to_dict() == serial.stats.to_dict()
        assert coordinator.failures() == {}
    finally:
        coordinator.close()


def test_worker_reconnects_after_injected_frame_drop():
    from repro.harness.cluster import Fault, FaultPlan

    specs = small_specs(schemes=("baseline",))
    # The network eats this worker's 2nd substantive frame (its first
    # result); the worker must reconnect and the campaign still drain.
    plan = FaultPlan([Fault("drop_frame", worker="flaky", at=2)])
    coordinator = ClusterCoordinator(specs, heartbeat_timeout=5.0)
    coordinator.start()
    try:
        host, port = coordinator.address
        worker = ClusterWorker(host, port, name="flaky", max_reconnects=3,
                               reconnect_backoff=0.05, fault_plan=plan)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        assert coordinator.wait(timeout=120)
        thread.join(timeout=30)
        assert coordinator.stats()["completed"] == len(specs)
        assert worker.reconnects >= 1
        assert not worker.disconnected and not worker.rejected
        assert len(coordinator.results()) == len(specs)
    finally:
        coordinator.close()


def test_worker_reconnect_budget_exhausts_against_dead_coordinator():
    # Nothing listens on this port: every connect fails, the backoff
    # loop spends its budget, and the worker reports disconnected.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    host, port = probe.getsockname()
    probe.close()  # free the port; nothing serves it now
    worker = ClusterWorker(host, port, name="orphan", max_reconnects=2,
                           reconnect_backoff=0.01, connect_timeout=0.5)
    assert worker.run() == 0
    assert worker.disconnected and not worker.rejected
    assert worker.reconnects == 2


def test_watchdog_converts_hung_cell_into_timeout_failure():
    from repro.harness.cluster import Fault, FaultPlan

    spec = ("503.bwaves", SMALL, "baseline", (), 0.05, 2017)
    # The injected slow cell sleeps far past the watchdog deadline — a
    # hung simulation, reported as a timeout instead of hanging the
    # campaign behind an immortal heartbeat.
    plan = FaultPlan([Fault("slow_cell", worker="hung", at=1, arg=30.0)])
    failures = {}
    coordinator = ClusterCoordinator(
        [spec], heartbeat_timeout=10.0,
        on_failure=lambda i, f: failures.__setitem__(i, f))
    coordinator.start()
    try:
        host, port = coordinator.address
        worker = ClusterWorker(host, port, name="hung", cell_timeout=0.5,
                               fault_plan=plan)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        assert coordinator.wait(timeout=60)
        thread.join(timeout=30)
        assert worker.timeouts == 1
        assert failures[0].kind == "timeout"
        assert "wall-clock" in failures[0].error
        assert coordinator.stats()["failed"] == 1
        assert coordinator.results() == [None]
    finally:
        coordinator.close()


def test_protocol_version_mismatch_is_rejected():
    coordinator = ClusterCoordinator(small_specs(), heartbeat_timeout=5.0)
    coordinator.start()
    try:
        host, port = coordinator.address
        conn = socket.create_connection((host, port), timeout=5)
        send_frame(conn, {"kind": "hello", "worker": "old",
                          "protocol": PROTOCOL_VERSION + 1})
        assert recv_frame(conn)["kind"] == "reject"
        conn.close()
        # A full ClusterWorker against the same mismatch surfaces the
        # rejection instead of pretending a clean drain.
        rejected = ClusterWorker(host, port, name="newer")
        rejected_run = {}
        orig = PROTOCOL_VERSION

        def run_with_wrong_version():
            import repro.harness.cluster.worker as worker_module

            worker_module.PROTOCOL_VERSION = orig + 1
            try:
                rejected_run["count"] = rejected.run()
            finally:
                worker_module.PROTOCOL_VERSION = orig

        run_with_wrong_version()
        assert rejected_run["count"] == 0
        assert rejected.disconnected
        assert "rejected" in rejected.last_error
        # Stealing without hello is rejected too.
        conn = socket.create_connection((host, port), timeout=5)
        send_frame(conn, {"kind": "steal"})
        assert recv_frame(conn)["kind"] == "reject"
        conn.close()
    finally:
        coordinator.close()


def test_scheme_wire_version_mismatch_is_rejected():
    """ROADMAP PR 4 follow-up: a worker whose scheme code is a different
    generation than the coordinator's must be refused at hello — its
    results would be content-addressed as if they matched behaviour
    they no longer (or do not yet) implement."""
    coordinator = ClusterCoordinator(small_specs(), heartbeat_timeout=5.0)
    coordinator.start()
    try:
        host, port = coordinator.address

        # Stale version for one scheme -> reject naming the scheme.
        stale = dict(scheme_wire_versions())
        scheme = sorted(stale)[0]
        stale[scheme] += 1
        conn = socket.create_connection((host, port), timeout=5)
        send_frame(conn, {"kind": "hello", "worker": "stale",
                          "protocol": PROTOCOL_VERSION, "schemes": stale})
        reply = recv_frame(conn)
        assert reply["kind"] == "reject"
        assert "scheme version mismatch" in reply["error"]
        assert scheme in reply["error"]
        conn.close()

        # Missing scheme map entirely (an old build) -> reject.
        conn = socket.create_connection((host, port), timeout=5)
        send_frame(conn, {"kind": "hello", "worker": "ancient",
                          "protocol": PROTOCOL_VERSION})
        reply = recv_frame(conn)
        assert reply["kind"] == "reject"
        assert "scheme versions missing" in reply["error"]
        conn.close()

        # A worker knowing a scheme the coordinator lacks (but agreeing
        # on every shared one) is welcomed -- the coordinator never
        # dispatches the extra scheme.
        extra = dict(scheme_wire_versions())
        extra["experimental-v9"] = 1
        conn = socket.create_connection((host, port), timeout=5)
        send_frame(conn, {"kind": "hello", "worker": "pioneer",
                          "protocol": PROTOCOL_VERSION, "schemes": extra})
        assert recv_frame(conn)["kind"] == "welcome"
        conn.close()
    finally:
        coordinator.close()


def test_cluster_worker_surfaces_scheme_rejection(monkeypatch):
    """A full ClusterWorker with stale scheme code reports the rejection
    reason instead of pretending a clean drain."""
    import repro.harness.cluster.worker as worker_module

    coordinator = ClusterCoordinator(small_specs(), heartbeat_timeout=5.0)
    coordinator.start()
    try:
        host, port = coordinator.address
        stale = dict(scheme_wire_versions())
        stale[sorted(stale)[0]] += 1
        monkeypatch.setattr(worker_module, "scheme_wire_versions",
                            lambda: stale)
        # A generous reconnect budget must NOT be spent on a rejection:
        # the same hello gets the same refusal every time.
        worker = ClusterWorker(host, port, name="stale-build",
                               max_reconnects=5)
        assert worker.run() == 0
        assert worker.disconnected and worker.rejected
        assert worker.reconnects == 0
        assert "scheme version mismatch" in worker.last_error
    finally:
        coordinator.close()


# ----------------------------------------------------------------------
# Executor protocol: one seam, three backends.
# ----------------------------------------------------------------------

def test_make_executor_kinds():
    assert isinstance(make_executor("serial"), SerialExecutor)
    pool = make_executor("pool", jobs=3)
    assert isinstance(pool, PoolExecutor) and pool.jobs == 3
    assert isinstance(make_executor("cluster"), ClusterExecutor)
    with pytest.raises(ValueError):
        make_executor("carrier-pigeon")


def test_serial_and_pool_report_progress_and_stream_results():
    specs = small_specs(schemes=("baseline",))
    for executor in (SerialExecutor(), PoolExecutor(jobs=2)):
        progress = ProgressReporter(label="test").begin(len(specs))
        streamed = {}
        results = executor.run(
            specs, progress=progress,
            on_result=lambda i, r: streamed.__setitem__(i, r))
        assert progress.done == len(specs)
        assert sorted(streamed) == list(range(len(specs)))
        for index, result in enumerate(results):
            assert streamed[index].stats.to_dict() == result.stats.to_dict()


def test_run_cells_accepts_executor():
    specs = small_specs(schemes=("baseline",))
    via_seam = run_cells(specs, executor=SerialExecutor())
    direct = run_cells(specs, jobs=1)
    for mine, theirs in zip(via_seam, direct):
        assert mine.stats.to_dict() == theirs.stats.to_dict()


def test_progress_reporter_counters_and_render():
    progress = ProgressReporter(label="grid").begin(4)
    for _ in range(3):
        progress.cell_done(worker="w1")
    progress.cell_done(worker="w2")
    snap = progress.snapshot()
    assert snap["done"] == 4 and snap["total"] == 4
    assert snap["per_worker"] == {"w1": 3, "w2": 1}
    assert snap["cells_per_second"] > 0
    line = progress.render()
    assert "4/4" in line and "w1:3" in line and "w2:1" in line
    # A clean campaign's line carries no failure noise.
    assert "failed" not in line and "quarantined" not in line


def test_progress_reporter_failure_counters():
    progress = ProgressReporter(label="grid").begin(4)
    progress.cell_done(worker="w1")
    progress.cell_failed(worker="w1", kind="deterministic")
    progress.cell_failed(worker="w2", kind="poisoned")
    progress.requeued()
    progress.requeued()
    snap = progress.snapshot()
    assert snap["failed"] == 1 and snap["quarantined"] == 1
    assert snap["requeues"] == 2
    # Failures settle cells: 1 done + 2 failed of 4 -> 1 remaining.
    line = progress.render()
    assert "1/4" in line
    assert "1 failed" in line and "1 quarantined" in line
    assert "2 requeued" in line
    # A late first result un-settles the matching failure class.
    progress.failure_cleared("poisoned")
    progress.cell_done(worker="w2")
    snap = progress.snapshot()
    assert snap["quarantined"] == 0 and snap["failed"] == 1
