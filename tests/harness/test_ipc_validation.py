"""Per-scheme IPC validation against the registry's paper anchors.

Each grid :class:`~repro.core.registry.SchemeSpec` carries
``ipc_anchor`` — the paper's Figure 6 suite-mean IPC normalized to
baseline at Mega (approximate by design).  The anchors are consumed as
*relative ordering* ground truth, not point targets: this campaign
smoke test runs one small cell per scheme and asserts the measured
normalized IPCs respect the orderings the paper establishes —

* the unsafe baseline is an upper bound for every secure scheme;
* ``fence`` (delay everything) is a lower bound for every scheme;
* selective delay recovers IPC over full delay (``nda`` <=
  ``delay-on-miss``);
* issue-time taint resolution beats rename-time's one-cycle-delayed
  untaint broadcast (``stt-rename`` <= ``stt-issue``, Section 9.1).

The cell (520.omnetpp at 0.25 scale, Mega) was picked because it
differentiates every scheme: branchy with enough cache misses that
delayed broadcasts, taint masking, and the full fence all bite.
"""

import pytest

from repro.core.registry import get_spec, grid_scheme_names, secure_scheme_names
from repro.harness.runner import CampaignRunner
from repro.pipeline.config import MEGA

#: Slack for measured-ordering assertions: normalized IPCs are exact
#: (deterministic simulation), but a pair can tie on a small cell.
EPS = 0.02

BENCHMARK = "520.omnetpp"


@pytest.fixture(scope="module")
def normalized_ipc():
    runner = CampaignRunner(scale=0.25, seed=2017, benchmarks=(BENCHMARK,),
                            store=None)
    baseline = runner.run(BENCHMARK, MEGA, "baseline")
    assert baseline.ipc > 0
    return {
        scheme: runner.run(BENCHMARK, MEGA, scheme).ipc / baseline.ipc
        for scheme in grid_scheme_names()
    }


def test_every_grid_scheme_declares_an_anchor():
    for scheme in grid_scheme_names():
        anchor = get_spec(scheme).ipc_anchor
        assert anchor is not None, "%s has no Figure 6 anchor" % scheme
        assert 0.0 < anchor <= 1.0, "%s anchor %r out of range" % (scheme,
                                                                   anchor)
    assert get_spec("baseline").ipc_anchor == 1.0


def test_anchor_values_encode_the_paper_orderings():
    """The registry's anchors must themselves tell the paper's story —
    a later edit flipping two anchors should fail loudly here."""
    anchor = {s: get_spec(s).ipc_anchor for s in grid_scheme_names()}
    for scheme in secure_scheme_names():
        assert anchor[scheme] < anchor["baseline"]
        assert anchor["fence"] <= anchor[scheme]
    assert anchor["nda"] < anchor["delay-on-miss"]
    assert anchor["stt-rename"] < anchor["stt-issue"]


def test_baseline_bounds_every_secure_scheme(normalized_ipc):
    for scheme in secure_scheme_names():
        assert normalized_ipc[scheme] <= 1.0 + EPS, (
            "%s outperformed the unsafe baseline (%.3f)"
            % (scheme, normalized_ipc[scheme])
        )


def test_fence_is_the_floor(normalized_ipc):
    fence = normalized_ipc["fence"]
    for scheme in secure_scheme_names():
        if scheme == "fence":
            continue
        assert fence <= normalized_ipc[scheme] + EPS, (
            "fence (%.3f) should bound %s (%.3f) from below"
            % (fence, scheme, normalized_ipc[scheme])
        )
    # And the fence actually bites on this cell: a fence that costs
    # nothing means the workload stopped exercising speculation.
    assert fence < 0.9


def test_selective_delay_recovers_ipc(normalized_ipc):
    assert normalized_ipc["nda"] <= normalized_ipc["delay-on-miss"] + EPS, (
        "delay-on-miss (%.3f) should recover IPC over NDA (%.3f)"
        % (normalized_ipc["delay-on-miss"], normalized_ipc["nda"])
    )


def test_issue_time_taint_beats_rename_time(normalized_ipc):
    assert (normalized_ipc["stt-rename"]
            <= normalized_ipc["stt-issue"] + EPS), (
        "stt-issue (%.3f) should not lose to stt-rename (%.3f): the"
        " one-cycle broadcast lag is rename-side (Section 9.1)"
        % (normalized_ipc["stt-issue"], normalized_ipc["stt-rename"])
    )
