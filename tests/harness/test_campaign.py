"""Campaign-engine tests: cache keys, store round-trips, parallelism."""

import pytest

from repro.harness.parallel import run_cells
from repro.harness.runner import CampaignRunner, shared_runner
from repro.harness.store import ResultStore, simulation_key
from repro.pipeline.config import CoreConfig, MEDIUM, MEGA, SMALL
from repro.pipeline.stats import SimStats

BENCH = "503.bwaves"
SUBSET = ("503.bwaves", "548.exchange2")


# ----------------------------------------------------------------------
# Cache-key collisions (the root bug).
# ----------------------------------------------------------------------

def test_same_name_different_params_distinct_cells():
    runner = CampaignRunner(scale=0.05, benchmarks=(BENCH,))
    narrow = MEGA.scaled(name="custom", width=1, issue_width=1, mem_width=1)
    wide = MEGA.scaled(name="custom")
    assert narrow.name == wide.name

    first = runner.run(BENCH, narrow, "baseline")
    second = runner.run(BENCH, wide, "baseline")
    assert first is not second
    assert first.stats.cycles != second.stats.cycles
    # Both cells stay cached independently.
    assert runner.run(BENCH, narrow, "baseline") is first
    assert runner.run(BENCH, wide, "baseline") is second


def test_simulation_key_sensitivity():
    base = simulation_key(BENCH, MEGA, "baseline")
    assert base == simulation_key(BENCH, MEGA, "baseline")
    assert base != simulation_key(BENCH, MEGA.scaled(rob_entries=64),
                                  "baseline")
    assert base != simulation_key(
        BENCH, MEGA.scaled(mem=MEGA.mem.__class__(l1_latency=1)), "baseline"
    )
    assert base != simulation_key(BENCH, MEGA, "nda")
    assert base != simulation_key(BENCH, MEGA, "baseline", scale=0.5)
    assert base != simulation_key(BENCH, MEGA, "baseline", seed=1)
    assert base != simulation_key(BENCH, MEGA, "baseline",
                                  model_version="other")
    assert base != simulation_key(
        BENCH, MEGA, "baseline", scheme_kwargs={"split_store_taints": True}
    )
    # Display names carry no identity: renaming a parameter-identical
    # config must hit the same cell.
    assert base == simulation_key(BENCH, MEGA.scaled(name="renamed"),
                                  "baseline")


def test_config_fingerprint_tracks_params_not_name():
    a = CoreConfig(name="custom", width=2, num_phys_regs=80)
    b = CoreConfig(name="custom", width=3, num_phys_regs=80)
    assert a.fingerprint() != b.fingerprint()
    assert a.fingerprint() == CoreConfig(name="custom", width=2,
                                         num_phys_regs=80).fingerprint()
    assert a.fingerprint() == a.scaled(name="renamed").fingerprint()


# ----------------------------------------------------------------------
# Store round-trips.
# ----------------------------------------------------------------------

def test_store_round_trip(tmp_path):
    runner = CampaignRunner(scale=0.05, benchmarks=(BENCH,))
    result = runner.run(BENCH, MEDIUM, "nda")
    key = runner.cell_key(BENCH, MEDIUM, "nda")

    store = ResultStore(tmp_path)
    store.save(key, result, meta={"benchmark": BENCH})
    assert key in store
    assert len(store) == 1
    assert store.keys() == [key]

    loaded = store.load(key)
    assert loaded is not None
    assert loaded.program_name == result.program_name
    assert loaded.scheme_name == result.scheme_name
    assert loaded.config_name == result.config_name
    assert loaded.halted == result.halted
    assert loaded.cycles == result.cycles
    assert loaded.regs == result.regs
    assert loaded.memory == result.memory
    assert loaded.stats.to_dict() == result.stats.to_dict()


def test_store_missing_and_clear(tmp_path):
    store = ResultStore(tmp_path)
    assert store.load("0" * 64) is None
    runner = CampaignRunner(scale=0.05, benchmarks=(BENCH,))
    key = runner.cell_key(BENCH, SMALL, "baseline")
    store.save(key, runner.run(BENCH, SMALL, "baseline"))
    assert len(store) == 1
    store.clear()
    assert len(store) == 0
    assert store.load(key) is None


def test_store_load_many_bulk(tmp_path):
    runner = CampaignRunner(scale=0.05, benchmarks=SUBSET)
    store = ResultStore(tmp_path)
    keys = []
    for bench in SUBSET:
        key = runner.cell_key(bench, SMALL, "baseline")
        store.save(key, runner.run(bench, SMALL, "baseline"))
        keys.append(key)
    missing = "0" * 64
    loaded = store.load_many(keys + [missing, keys[0]])  # dup + miss
    assert set(loaded) == set(keys)
    for key in keys:
        assert loaded[key].stats.to_dict() == store.load(key).stats.to_dict()
    assert store.load_many([missing]) == {}


def test_runner_preload_from_store(tmp_path):
    writer = CampaignRunner(scale=0.05, benchmarks=(BENCH,),
                            store=ResultStore(tmp_path))
    expected = writer.run(BENCH, SMALL, "baseline")

    reader = CampaignRunner(scale=0.05, benchmarks=(BENCH,),
                            store=ResultStore(tmp_path))
    assert reader.preload_from_store([(BENCH, SMALL, "baseline")]) == 1
    key = reader.cell_key(BENCH, SMALL, "baseline")
    assert key in reader._cache
    # suite_results is served from the preloaded cache, not a fresh
    # simulation (identity check: run() returns the cached object).
    results = reader.suite_results(SMALL, "baseline")
    assert results[0] is reader._cache[key]
    assert results[0].stats.to_dict() == expected.stats.to_dict()
    # Second preload is a no-op (everything already cached).
    assert reader.preload_from_store([(BENCH, SMALL, "baseline")]) == 0


def test_store_verify_drops_corrupt_and_stale(tmp_path):
    import json

    store = ResultStore(tmp_path)
    runner = CampaignRunner(scale=0.05, benchmarks=(BENCH,))
    key = runner.cell_key(BENCH, SMALL, "baseline")
    store.save(key, runner.run(BENCH, SMALL, "baseline"))

    # Legacy-format damage: corrupt/stale JSON cells in the store root
    # keep their original verdict handling alongside segment cells.
    corrupt = tmp_path / ("corrupt__x__y__%s.json" % ("b" * 12))
    corrupt.write_text("{not json")
    truncated = tmp_path / ("trunc__x__y__%s.json" % ("c" * 12))
    truncated.write_text(json.dumps({"key": "c" * 64, "model_version":
                                     "whatever"}))  # no result payload
    stale_data = dict(store.load_envelope(key))
    stale_data["model_version"] = "0.0.0-ancient"
    stale_data["key"] = "d" * 64
    stale = tmp_path / ("stale__x__y__%s.json" % ("d" * 12))
    stale.write_text(json.dumps(stale_data))

    summary = store.verify()
    assert summary == {"scanned": 4, "kept": 1, "corrupt": 2, "stale": 1}
    # Corrupt cells are quarantined aside (forensics), not destroyed;
    # stale cells (old model version) are plain deletions.
    assert not corrupt.exists() and not truncated.exists()
    assert (tmp_path / (corrupt.name + ".corrupt")).exists()
    assert (tmp_path / (truncated.name + ".corrupt")).exists()
    assert not stale.exists()
    assert not (tmp_path / (stale.name + ".corrupt")).exists()
    assert store.load(key) is not None  # the healthy cell survived
    # The set-aside copies are invisible to the store (not *.json).
    assert len(store) == 1
    assert store.verify() == {"scanned": 1, "kept": 1, "corrupt": 0,
                              "stale": 0}


def test_store_failure_records_round_trip(tmp_path):
    from repro.harness.store import CellFailure

    store = ResultStore(tmp_path)
    assert store.failures() == []  # no failures/ dir yet: empty, no error
    failure = CellFailure(key="f" * 64, benchmark="503.bwaves",
                          config_name="small", scheme_name="baseline",
                          kind="poisoned", attempts=3, worker="w1",
                          error="worker died 3 time(s)", traceback=None)
    store.save_failure(failure)
    loaded = store.load_failure("f" * 64)
    assert loaded.to_dict() == failure.to_dict()
    records = store.failures()
    assert len(records) == 1 and records[0].key == "f" * 64
    # Failure records live under failures/ and are invisible to the
    # result index and to verify().
    assert len(store) == 0
    assert store.verify()["scanned"] == 0
    # A late first result clears the record (first-result-wins).
    assert store.clear_failure("f" * 64)
    assert not store.clear_failure("f" * 64)  # idempotent
    assert store.load_failure("f" * 64) is None
    assert store.failures() == []


def test_cell_failure_rejects_unknown_kind():
    from repro.harness.store import CellFailure

    with pytest.raises(ValueError):
        CellFailure(key="0" * 64, benchmark="b", config_name="c",
                    scheme_name="s", kind="cosmic-rays")


def test_store_gc_keeps_only_requested_keys(tmp_path):
    store = ResultStore(tmp_path)
    runner = CampaignRunner(scale=0.05, benchmarks=SUBSET)
    keep_key = runner.cell_key(SUBSET[0], SMALL, "baseline")
    drop_key = runner.cell_key(SUBSET[1], SMALL, "nda")
    store.save(keep_key, runner.run(SUBSET[0], SMALL, "baseline"))
    store.save(drop_key, runner.run(SUBSET[1], SMALL, "nda"))

    summary = store.gc([keep_key])
    assert summary["scanned"] == 2
    assert summary["kept"] == 1
    assert summary["dropped"] == 1
    assert summary["bytes_reclaimed"] > 0  # dead bytes compacted away
    assert store.load(keep_key) is not None
    assert store.load(drop_key) is None


def test_stats_from_dict_rejects_unknown():
    with pytest.raises(ValueError):
        SimStats.from_dict({"cycles": 1, "bogus_counter": 2})


def test_stats_as_dict_namespaces_extra():
    stats = SimStats(cycles=10, committed_instructions=5,
                     extra={"cycles": 999, "ipc": 999, "l1_hits": 3})
    data = stats.as_dict()
    assert data["cycles"] == 10
    assert data["ipc"] == 0.5
    assert data["extra.cycles"] == 999
    assert data["extra.ipc"] == 999
    assert data["extra.l1_hits"] == 3


# ----------------------------------------------------------------------
# Runner + store + parallel integration.
# ----------------------------------------------------------------------

def test_parallel_grid_matches_serial(tmp_path):
    configs = (MEDIUM, MEGA)
    schemes = ("baseline", "nda")

    serial = CampaignRunner(scale=0.05, benchmarks=SUBSET)
    serial.run_grid(configs=configs, schemes=schemes, jobs=1)

    store = ResultStore(tmp_path)
    parallel = CampaignRunner(scale=0.05, benchmarks=SUBSET, store=store)
    summary = parallel.run_grid(configs=configs, schemes=schemes, jobs=4)
    assert summary["total"] == 8
    assert summary["simulated"] == 8

    for config in configs:
        for scheme in schemes:
            for bench in SUBSET:
                a = serial.run(bench, config, scheme)
                b = parallel.run(bench, config, scheme)
                assert a.stats.to_dict() == b.stats.to_dict(), (
                    bench, config.name, scheme)
                assert a.regs == b.regs
                assert a.memory == b.memory


def test_second_grid_run_served_from_store(tmp_path):
    store = ResultStore(tmp_path)
    first = CampaignRunner(scale=0.05, benchmarks=SUBSET, store=store)
    cold = first.run_grid(configs=(MEDIUM,), schemes=("baseline", "nda"),
                          jobs=2)
    assert cold["simulated"] == 4

    # Fresh process-equivalent: new runner, same store directory.
    second = CampaignRunner(scale=0.05, benchmarks=SUBSET,
                            store=ResultStore(tmp_path))
    warm = second.run_grid(configs=(MEDIUM,), schemes=("baseline", "nda"),
                           jobs=2)
    assert warm["simulated"] == 0
    assert warm["from_store"] == 4

    # And run() itself consults the store before simulating.
    third = CampaignRunner(scale=0.05, benchmarks=SUBSET,
                           store=ResultStore(tmp_path))
    result = third.run(SUBSET[0], MEDIUM, "baseline")
    assert result.stats.to_dict() == first.run(
        SUBSET[0], MEDIUM, "baseline").stats.to_dict()


def test_cell_batch_dedups_duplicates():
    runner = CampaignRunner(scale=0.05, benchmarks=(BENCH,))
    cell = (BENCH, SMALL, "baseline")
    summary = runner.run_cell_batch([cell, cell, cell], jobs=1)
    assert summary["total"] == 1
    assert summary["simulated"] == 1


def test_store_sees_external_writer(tmp_path):
    reader = ResultStore(tmp_path)
    runner = CampaignRunner(scale=0.05, benchmarks=(BENCH,))
    key = runner.cell_key(BENCH, SMALL, "baseline")
    assert reader.load(key) is None  # indexes the (empty) directory
    ResultStore(tmp_path).save(key, runner.run(BENCH, SMALL, "baseline"))
    assert reader.load(key) is not None  # mtime gate triggers a refresh


def test_run_cells_serial_fallback():
    spec = (BENCH, SMALL, "baseline", (), 0.05, 2017)
    results = run_cells([spec], jobs=1)
    assert len(results) == 1
    assert results[0].program_name == BENCH
    assert run_cells([], jobs=4) == []


def test_run_cells_propagates_worker_errors():
    bad = ("no.such.benchmark", SMALL, "baseline", (), 0.05, 2017)
    good = (BENCH, SMALL, "baseline", (), 0.05, 2017)
    # Two specs keep jobs=2 after the min(jobs, len(specs)) clamp, so
    # this genuinely exercises the pool path (exception pickled out of
    # a worker and re-raised by pool.map), not the serial fallback.
    with pytest.raises(KeyError):
        run_cells([good, bad], jobs=2)
    with pytest.raises(KeyError):
        run_cells([bad], jobs=1)


def test_experiment_grid_needs():
    from repro.harness.experiments import (
        experiment_grid_needs,
        experiment_ids,
    )

    assert experiment_grid_needs("figure9") is None
    assert experiment_grid_needs("ablation-l1-latency") is None
    configs, schemes, benchmarks = experiment_grid_needs("table1")
    assert schemes == ("baseline",)
    assert benchmarks is None
    assert len(configs) == 4
    configs, schemes, benchmarks = experiment_grid_needs("exchange2")
    assert [c.name for c in configs] == ["mega"]
    assert benchmarks == ("548.exchange2",)
    # table5 only reads the gem5-comparable subset; pre-population must
    # not pay for the excluded benchmarks.
    from repro.gem5.model import GEM5_EXCLUDED

    _configs, _schemes, benchmarks = experiment_grid_needs("table5")
    assert benchmarks is not None
    assert not set(benchmarks) & set(GEM5_EXCLUDED)
    assert len(benchmarks) == 19
    # Every registered experiment either declares needs or is known
    # cache-free.
    cache_free = {"figure9", "ablation-store-taints", "ablation-l1-latency"}
    for experiment_id in experiment_ids():
        needs = experiment_grid_needs(experiment_id)
        assert (needs is None) == (experiment_id in cache_free), experiment_id
    # The needs declaration lives *in* the registry entry, next to the
    # callable it describes — no parallel table to drift.
    from repro.harness.experiments import EXPERIMENTS

    for experiment_id, entry in EXPERIMENTS.items():
        assert callable(entry.func), experiment_id
        assert entry.needs is None or callable(entry.needs), experiment_id
    assert experiment_grid_needs("unknown-experiment") is None


# ----------------------------------------------------------------------
# Satellite regressions.
# ----------------------------------------------------------------------

def test_result_is_idempotent():
    from repro.pipeline.core import OoOCore
    from repro.workloads.kernels import streaming_kernel

    core = OoOCore(streaming_kernel(iterations=30), config=MEDIUM,
                   scheme="nda", warm_caches=True)
    first = core.run()
    again = core.result()
    assert first.stats.extra == again.stats.extra
    assert first.stats.to_dict() == again.stats.to_dict()
    # The live counters never absorbed the merged extras.
    assert "accesses" not in core.stats.extra


def test_shared_runner_keys_on_benchmarks():
    full = shared_runner(scale=0.07)
    subset = shared_runner(scale=0.07, benchmarks=SUBSET)
    assert subset is not full
    assert subset.benchmarks == SUBSET
    assert len(full.benchmarks) > len(SUBSET)
    assert shared_runner(scale=0.07, benchmarks=SUBSET) is subset


def test_figure7_headers_follow_configs():
    from repro.harness.experiments import experiment_figure7

    runner = CampaignRunner(scale=0.05, benchmarks=(BENCH,))
    custom = MEGA.scaled(name="mega-variant", rob_entries=64)
    report = experiment_figure7(runner, configs=(SMALL, custom))
    assert "mega-variant" in report.text
    assert "medium" not in report.text
    for scheme_data in report.data.values():
        assert set(scheme_data) == {"small", "mega-variant"}
