"""Seeded chaos: deterministic fault schedules, store equivalence.

The determinism contract under test: the fault *schedule* is seeded
and replayable, the interleaving is not — so every chaos campaign must
end with a :class:`~repro.harness.store.ResultStore` logically
identical to a fault-free serial run — every cell's stored envelope
(key, model version, meta, full result payload) byte-for-byte equal
once canonicalised — whatever crashed, hung, or got eaten by the
network along the way.  (Segment *files* are append logs whose record
order depends on the interleaving, so equivalence is asserted at the
envelope level, where the store contract actually lives.)
"""

import json

import pytest

from repro.harness.cluster import ClusterExecutor, Fault, FaultPlan
from repro.harness.journal import CampaignJournal, journal_path
from repro.harness.runner import CampaignRunner
from repro.harness.store import ResultStore
from repro.pipeline.config import SMALL

SUBSET = ("503.bwaves", "548.exchange2")
SCALE = 0.05


def store_bytes(root):
    """``{key: canonical envelope bytes}`` of every cell in a store."""
    store = ResultStore(root)
    return {key: json.dumps(store.load_envelope(key),
                            sort_keys=True).encode("utf-8")
            for key in store.keys()}


def serial_store(tmp_path):
    """A fault-free serial campaign; returns its store's bytes."""
    root = tmp_path / "serial"
    runner = CampaignRunner(scale=SCALE, benchmarks=SUBSET,
                            store=ResultStore(root))
    summary = runner.run_grid(configs=(SMALL,), schemes=("baseline", "nda"))
    assert summary["simulated"] == 4 and summary["failed"] == 0
    return store_bytes(root)


# ----------------------------------------------------------------------
# FaultPlan: seeded schedules are data.
# ----------------------------------------------------------------------

def test_fault_plan_random_is_deterministic():
    build = lambda seed: FaultPlan.random(
        seed, workers=("w1", "w2", "w3"), cells=8, crashes=2,
        frame_faults=2, slow_cells=1, duplicates=1, coordinator_kills=1)
    assert build(7).describe() == build(7).describe()
    assert build(7).describe() != build(8).describe()
    plan = build(7)
    assert len(plan.faults) == 7
    kinds = {fault.kind for fault in plan.faults}
    assert "crash" in kinds and "slow_cell" in kinds
    assert "duplicate_result" in kinds and "kill_coordinator" in kinds


def test_fault_plan_counters_and_one_shot():
    plan = FaultPlan([Fault("crash", worker="w1", at=2),
                      Fault("drop_frame", at=1),
                      Fault("poison_cell", arg="503.bwaves")])
    # Counters are per (worker, domain): w2's steals never advance w1's.
    assert plan.on_steal("w2") is None
    assert plan.on_steal("w1") is None  # w1's 1st steal; fault is at 2
    fault = plan.on_steal("w1")
    assert fault is not None and fault.kind == "crash"
    assert plan.on_steal("w1") is None  # one-shot: never fires again
    # Frame faults only count substantive frames.
    assert plan.on_frame("w1", "heartbeat") is None
    assert plan.on_frame("w1", "steal").kind == "drop_frame"
    # poison_cell is a predicate, not a counter: it always applies.
    assert plan.poisoned("503.bwaves") and plan.poisoned("503.bwaves")
    assert not plan.poisoned("548.exchange2")
    assert {fault.kind for fault in plan.fired()} == {"crash", "drop_frame"}


def test_fault_plan_rejects_unknown_kind():
    with pytest.raises(ValueError):
        Fault("gremlins")
    with pytest.raises(TypeError):
        FaultPlan(["not-a-fault"])


# ----------------------------------------------------------------------
# Chaos equivalence: faults may cost time, never results.
# ----------------------------------------------------------------------

def test_chaos_smoke_store_equivalence(tmp_path):
    """CI's chaos canary: 1 worker crash, 1 slow cell, 1 dropped frame
    under a fixed seed — the chaotic store must be byte-identical to
    the fault-free serial one."""
    expected = serial_store(tmp_path)

    workers = ("local-1", "local-2", "local-3")
    plan = FaultPlan.random(2017, workers=workers, cells=4,
                            crashes=1, frame_faults=1, slow_cells=1,
                            slow_seconds=0.2)
    # Pin the frame fault to a drop (the seeded draw may pick delay or
    # corrupt; the smoke test wants the harshest one deterministically).
    plan.faults[1] = Fault("drop_frame", worker=plan.faults[1].worker,
                           at=plan.faults[1].at)
    chaos_root = tmp_path / "chaos"
    runner = CampaignRunner(scale=SCALE, benchmarks=SUBSET,
                            store=ResultStore(chaos_root))
    executor = ClusterExecutor(
        local_workers=3, wait_timeout=120, fault_plan=plan,
        worker_kwargs={"max_reconnects": 5, "reconnect_backoff": 0.05},
    )
    summary = runner.run_grid(configs=(SMALL,), schemes=("baseline", "nda"),
                              executor=executor)
    assert summary["simulated"] == 4 and summary["failed"] == 0
    assert store_bytes(chaos_root) == expected
    assert ResultStore(chaos_root).failures() == []


def test_chaos_with_duplicates_and_corruption(tmp_path):
    expected = serial_store(tmp_path)

    plan = FaultPlan([
        Fault("crash", worker="local-1", at=1),
        Fault("corrupt_frame", worker="local-2", at=3),
        Fault("delay_frame", worker="local-3", at=2, arg=0.05),
        Fault("duplicate_result", worker="local-2", at=1),
        Fault("slow_cell", worker="local-3", at=1, arg=0.1),
    ])
    chaos_root = tmp_path / "chaos"
    runner = CampaignRunner(scale=SCALE, benchmarks=SUBSET,
                            store=ResultStore(chaos_root))
    executor = ClusterExecutor(
        local_workers=3, wait_timeout=120, fault_plan=plan,
        worker_kwargs={"max_reconnects": 5, "reconnect_backoff": 0.05},
    )
    summary = runner.run_grid(configs=(SMALL,), schemes=("baseline", "nda"),
                              executor=executor)
    assert summary["failed"] == 0
    assert store_bytes(chaos_root) == expected


def test_coordinator_kill_and_resume_completes_campaign(tmp_path):
    """The big one: the coordinator dies mid-campaign (injected kill
    after the 2nd recorded result), and ``--resume`` semantics — store
    for done cells, journal for shape — finish the job.  The final
    store is byte-identical to a fault-free serial run."""
    expected = serial_store(tmp_path)

    chaos_root = tmp_path / "chaos"
    journal = journal_path(chaos_root)
    plan = FaultPlan([Fault("kill_coordinator", at=2)])
    runner = CampaignRunner(scale=SCALE, benchmarks=SUBSET,
                            store=ResultStore(chaos_root))
    executor = ClusterExecutor(
        local_workers=2, wait_timeout=120, fault_plan=plan,
        journal_path=journal,
        worker_kwargs={"max_reconnects": 1, "reconnect_backoff": 0.05},
    )
    with pytest.raises(RuntimeError, match="incomplete|timed out"):
        runner.run_grid(configs=(SMALL,), schemes=("baseline", "nda"),
                        executor=executor)
    # The kill fired and the journal captured the partial campaign.
    assert plan.fired()
    state = CampaignJournal.load(journal)
    assert state is not None
    assert len(state.done) >= 2
    partial = store_bytes(chaos_root)
    assert len(partial) >= 2  # streamed results survived the crash

    # A new coordinator resumes: store-present cells are filtered by
    # the runner, the journal orders what remains.
    resumed = CampaignRunner(scale=SCALE, benchmarks=SUBSET,
                             store=ResultStore(chaos_root))
    again = ClusterExecutor(
        local_workers=2, wait_timeout=120,
        journal_path=journal, resume=True,
        worker_kwargs={"max_reconnects": 1, "reconnect_backoff": 0.05},
    )
    summary = resumed.run_grid(configs=(SMALL,), schemes=("baseline", "nda"),
                               executor=again)
    assert summary["failed"] == 0
    # A result in flight at the kill may still have streamed into the
    # store after our snapshot, so >=; either way nothing re-simulates
    # what the store already holds and every cell ends up settled.
    assert summary["from_store"] >= len(partial)
    assert summary["from_store"] + summary["simulated"] == 4
    assert store_bytes(chaos_root) == expected
    final = CampaignJournal.load(journal)
    assert final.sessions == 2
