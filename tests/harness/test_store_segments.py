"""Segment-backed ResultStore: format, concurrency, and recovery.

Complements the API-contract tests in ``test_campaign.py`` with the
format-level guarantees the segment store introduces: full-key
indexing (no digest-prefix ambiguity), O(index) key listing,
writer/reader interleaving, torn-record crash recovery, corrupt
segment quarantine, legacy-store reading, and migrate round-trips.
"""

import json
import shutil
import threading

import pytest

from repro.harness.segments import SEGMENT_DIR, SEGMENT_SUFFIX
from repro.harness.store import (
    MODEL_VERSION,
    LegacyResultStore,
    ResultStore,
)
from repro.harness.storebench import synthetic_key, synthetic_result


def populate(root, count, start=0):
    store = ResultStore(root)
    keys = []
    for index in range(start, start + count):
        key = synthetic_key(index)
        store.save(key, synthetic_result(index), {"index": index})
        keys.append(key)
    store.close()
    return keys


def segment_files(root):
    return sorted((root / SEGMENT_DIR).glob("*" + SEGMENT_SUFFIX))


# ----------------------------------------------------------------------
# Indexing: full keys, zero file opens, no prefix ambiguity.
# ----------------------------------------------------------------------

def test_digest_prefix_collisions_are_not_ambiguous(tmp_path):
    # Two keys sharing the legacy 12-hex filename prefix: the legacy
    # index could only hold one; the manifest keys on the full digest.
    key_a = "ab" * 6 + "0" * 52
    key_b = "ab" * 6 + "f" * 52
    store = ResultStore(tmp_path)
    store.save(key_a, synthetic_result(1))
    store.save(key_b, synthetic_result(2))
    assert len(store) == 2
    assert sorted(store.keys()) == sorted([key_a, key_b])
    assert store.load(key_a).to_dict() == synthetic_result(1).to_dict()
    assert store.load(key_b).to_dict() == synthetic_result(2).to_dict()
    loaded = store.load_many([key_a, key_b])
    assert loaded[key_a].stats.cycles == synthetic_result(1).stats.cycles
    assert loaded[key_b].stats.cycles == synthetic_result(2).stats.cycles


def test_keys_and_len_never_open_segment_files(tmp_path):
    keys = populate(tmp_path, 25)
    store = ResultStore(tmp_path)
    # Deleting every segment file cannot hide cells from the index:
    # keys()/len()/contains answer from the manifest alone.
    shutil.rmtree(tmp_path / SEGMENT_DIR)
    assert sorted(store.keys()) == sorted(keys)
    assert len(store) == 25
    assert keys[0] in store


def test_save_load_round_trip_bit_identical(tmp_path):
    store = ResultStore(tmp_path)
    result = synthetic_result(7)
    key = synthetic_key(7)
    store.save(key, result, {"benchmark": result.program_name})
    assert store.load(key).to_dict() == result.to_dict()
    # Lazy bulk loads decode to the identical dict, and the columnar
    # view agrees with the full result on every statistic.
    assert store.load_many([key])[key].to_dict() == result.to_dict()
    (view,) = store.iter_results(fields=("stats",))
    assert view.stats.to_dict() == result.stats.to_dict()
    assert view.scheme_name == result.scheme_name
    (full,) = store.iter_results()
    assert full.to_dict() == result.to_dict()


def test_load_columns_serves_sql_and_stat_fields(tmp_path):
    keys = populate(tmp_path, 6)
    store = ResultStore(tmp_path)
    columns = store.load_columns(
        keys, ["scheme", "benchmark", "cycles", "ipc",
               "committed_instructions", "stall_iq_full",
               "extra.cycacct.width"])
    assert set(columns) == set(keys)
    for index, key in enumerate(keys):
        expected = synthetic_result(index)
        record = columns[key]
        assert record["scheme"] == expected.scheme_name
        assert record["benchmark"] == expected.program_name
        assert record["cycles"] == expected.stats.cycles
        assert record["ipc"] == pytest.approx(expected.stats.ipc)
        assert record["stall_iq_full"] == expected.stats.stall_iq_full
        assert record["extra.cycacct.width"] == 4
    # Unknown keys are absent, not errors.
    assert store.load_columns(["9" * 64], ["scheme"]) == {}


# ----------------------------------------------------------------------
# Concurrency: a streaming writer interleaved with a reader.
# ----------------------------------------------------------------------

def test_concurrent_writer_and_reader(tmp_path):
    count = 120
    keys = [synthetic_key(i) for i in range(count)]
    errors = []
    done = threading.Event()

    def writer():
        try:
            store = ResultStore(tmp_path)
            for index in range(count):
                store.save(keys[index], synthetic_result(index))
            store.close()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            done.set()

    def reader():
        try:
            while not done.is_set():
                store = ResultStore(tmp_path)
                loaded = store.load_many(keys)
                # Every hit must already be fully readable (no torn
                # reads): records flush before their index row lands.
                for result in loaded.values():
                    assert result.stats.cycles > 0
                len(store), store.keys()
                store.close()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer),
               threading.Thread(target=reader)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors
    final = ResultStore(tmp_path)
    loaded = final.load_many(keys)
    assert len(loaded) == count
    for index, key in enumerate(keys):
        assert loaded[key].to_dict() == synthetic_result(index).to_dict()


def test_external_writer_instance_is_visible_immediately(tmp_path):
    # Two instances, interleaved writes: each appends to its own
    # segment, both land in the shared manifest.
    a, b = ResultStore(tmp_path), ResultStore(tmp_path)
    a.save(synthetic_key(1), synthetic_result(1))
    b.save(synthetic_key(2), synthetic_result(2))
    a.save(synthetic_key(3), synthetic_result(3))
    assert len(segment_files(tmp_path)) == 2
    reader = ResultStore(tmp_path)
    assert len(reader) == 3
    assert reader.load(synthetic_key(2)) is not None


# ----------------------------------------------------------------------
# Crash recovery: torn appends, corrupt records, quarantine.
# ----------------------------------------------------------------------

def test_torn_tail_append_is_invisible_and_reclaimed(tmp_path):
    keys = populate(tmp_path, 5)
    (segment,) = segment_files(tmp_path)
    intact = segment.stat().st_size
    # Simulate a crash mid-append: a half-written record at the tail,
    # never indexed (the row only commits after the record flushes).
    with open(segment, "ab") as handle:
        handle.write(b"SBR1\x00\x00\xff\xff\xe5\x8dtorn")
    torn = segment.stat().st_size - intact
    store = ResultStore(tmp_path)
    assert len(store) == 5
    for index, key in enumerate(keys):
        assert store.load(key).to_dict() == synthetic_result(index).to_dict()
    assert store.verify() == {"scanned": 5, "kept": 5, "corrupt": 0,
                              "stale": 0}
    # New writers never append to an existing segment, so the torn
    # tail can never corrupt a later record; compaction drops it.
    store.save(synthetic_key(99), synthetic_result(99))
    assert len(segment_files(tmp_path)) == 2
    summary = store.compact()
    assert summary["cells"] == 6
    assert summary["bytes_after"] == summary["bytes_before"] - torn
    final = ResultStore(tmp_path)
    assert len(final) == 6
    assert final.load(keys[3]).to_dict() == synthetic_result(3).to_dict()


def test_verify_quarantines_corrupt_segment_and_salvages_rest(tmp_path):
    keys = populate(tmp_path, 4)
    (segment,) = segment_files(tmp_path)
    # Flip bytes inside the first record's payload: its CRC dies, the
    # other three records in the same segment stay healthy.
    blob = bytearray(segment.read_bytes())
    blob[16:20] = b"\xff\xff\xff\xff"
    segment.write_bytes(bytes(blob))

    store = ResultStore(tmp_path)
    assert store.load(keys[0]) is None  # corrupt: absent, not wrong
    summary = store.verify()
    assert summary == {"scanned": 4, "kept": 3, "corrupt": 1, "stale": 0}
    # The damaged segment is set aside for post-mortem, not destroyed;
    # healthy records were salvaged into a fresh segment.
    assert not segment.exists()
    assert segment.with_name(segment.name + ".corrupt").exists()
    assert len(store) == 3
    for index in (1, 2, 3):
        assert (store.load(keys[index]).to_dict()
                == synthetic_result(index).to_dict())
    # A second sweep is clean.
    assert store.verify() == {"scanned": 3, "kept": 3, "corrupt": 0,
                              "stale": 0}


def test_verify_drops_stale_model_versions(tmp_path):
    store = ResultStore(tmp_path)
    store.save(synthetic_key(1), synthetic_result(1))
    stale = dict(store.load_envelope(synthetic_key(1)))
    stale["key"] = "e" * 64
    stale["model_version"] = "0.0.0-ancient"
    store._append_envelope(stale)
    assert len(store) == 2
    summary = store.verify()
    assert summary == {"scanned": 2, "kept": 1, "corrupt": 0, "stale": 1}
    assert len(store) == 1
    assert store.load(synthetic_key(1)) is not None


def test_compact_folds_single_cell_segments(tmp_path):
    # One writer instance per cell — the crash-resume worst case —
    # leaves one segment per cell; compact folds them into one.
    for index in range(8):
        store = ResultStore(tmp_path)
        store.save(synthetic_key(index), synthetic_result(index))
        store.close()
    assert len(segment_files(tmp_path)) == 8
    store = ResultStore(tmp_path)
    summary = store.compact()
    assert summary["segments_before"] == 8
    assert summary["segments_after"] == 1
    assert summary["cells"] == 8
    assert len(segment_files(tmp_path)) == 1
    reloaded = ResultStore(tmp_path)
    for index in range(8):
        assert (reloaded.load(synthetic_key(index)).to_dict()
                == synthetic_result(index).to_dict())


def test_gc_reports_bytes_reclaimed(tmp_path):
    keys = populate(tmp_path, 10)
    store = ResultStore(tmp_path)
    summary = store.gc(keys[:3])
    assert summary["scanned"] == 10
    assert summary["kept"] == 3
    assert summary["dropped"] == 7
    assert summary["bytes_reclaimed"] > 0
    assert len(store) == 3
    stats = store.stats()
    assert stats["cells"] == 3 and stats["segments"] == 1


def test_store_stats_accounting(tmp_path):
    populate(tmp_path, 12)
    stats = ResultStore(tmp_path).stats()
    assert stats["format"] == "segments-v1"
    assert stats["cells"] == 12
    assert stats["legacy_cells"] == 0 and not stats["legacy"]
    assert stats["segments"] == 1
    assert stats["segment_bytes"] == stats["live_bytes"]  # no dead bytes
    assert stats["raw_bytes"] > stats["live_bytes"]  # compression won
    assert stats["compression_ratio"] > 1.0
    assert stats["disk_bytes"] >= stats["segment_bytes"]


def test_clear_removes_manifest_and_segments(tmp_path):
    keys = populate(tmp_path, 4)
    store = ResultStore(tmp_path)
    store.clear()
    assert len(store) == 0
    assert store.load(keys[0]) is None
    assert not segment_files(tmp_path)
    # The store stays usable after a clear.
    store.save(keys[0], synthetic_result(0))
    assert len(store) == 1


# ----------------------------------------------------------------------
# Legacy stores: transparent reads, migrate round-trip.
# ----------------------------------------------------------------------

def legacy_populate(root, count):
    writer = LegacyResultStore(root)
    keys = []
    for index in range(count):
        key = synthetic_key(index)
        writer.save(key, synthetic_result(index), {"index": index})
        keys.append(key)
    return keys


def test_legacy_store_reads_without_migration(tmp_path):
    keys = legacy_populate(tmp_path, 5)
    store = ResultStore(tmp_path)
    assert len(store) == 5
    assert sorted(store.keys()) == sorted(keys)
    assert store.load(keys[2]).to_dict() == synthetic_result(2).to_dict()
    loaded = store.load_many(keys)
    assert len(loaded) == 5
    assert len(list(store.iter_results())) == 5
    assert len(list(store.iter_results(fields=("stats",)))) == 5
    assert store.stats()["legacy"]


def test_save_supersedes_legacy_twin(tmp_path):
    (key,) = legacy_populate(tmp_path, 1)
    store = ResultStore(tmp_path)
    replacement = synthetic_result(42)
    store.save(key, replacement)
    assert len(store) == 1  # manifest won; the JSON twin is gone
    assert not list(tmp_path.glob("*.json"))
    assert store.load(key).to_dict() == replacement.to_dict()


def test_migrate_round_trip_preserves_envelopes(tmp_path):
    keys = legacy_populate(tmp_path, 6)
    originals = {}
    for path in tmp_path.glob("*.json"):
        with open(path) as handle:
            data = json.load(handle)
        originals[data["key"]] = data
    assert len(originals) == 6

    store = ResultStore(tmp_path)
    summary = store.migrate()
    assert summary == {"migrated": 6, "skipped": 0}
    assert not list(tmp_path.glob("*.json"))

    reloaded = ResultStore(tmp_path)
    assert len(reloaded) == 6
    for key in keys:
        # The migrated envelope — key, meta, model_version stamp, full
        # result payload — is byte-for-byte the legacy one once both
        # are canonicalised.
        assert (json.dumps(reloaded.load_envelope(key), sort_keys=True)
                == json.dumps(originals[key], sort_keys=True))
        assert reloaded.load(key).to_dict() == originals[key]["result"]
    assert not reloaded.stats()["legacy"]


def test_migrate_skips_unreadable_files(tmp_path):
    legacy_populate(tmp_path, 2)
    bad = tmp_path / ("broken__x__y__%s.json" % ("9" * 12))
    bad.write_text("{not json")
    store = ResultStore(tmp_path)
    summary = store.migrate()
    assert summary == {"migrated": 2, "skipped": 1}
    assert bad.exists()  # left in place for verify to judge
    assert len(store) == 2


def test_lazy_results_survive_compaction(tmp_path):
    keys = populate(tmp_path, 3)
    store = ResultStore(tmp_path)
    loaded = store.load_many(keys)
    # Relocate every record while lazy results are outstanding...
    store.save(synthetic_key(50), synthetic_result(50))
    store.compact()
    # ...then touch their snapshots: the stale locators re-resolve
    # through the manifest instead of failing.
    for index, key in enumerate(keys):
        assert loaded[key].to_dict() == synthetic_result(index).to_dict()
