"""Unit tests for the cache model."""

import pytest

from repro.memsys.cache import CacheModel


def test_miss_then_hit():
    cache = CacheModel(num_sets=4, ways=2, line_words=8)
    assert not cache.lookup(0)
    cache.insert(0)
    assert cache.lookup(0)
    assert cache.hits == 1 and cache.misses == 1


def test_same_line_shares_tag():
    cache = CacheModel(num_sets=4, ways=2, line_words=8)
    cache.insert(0)
    assert cache.lookup(7)      # same 8-word line
    assert not cache.lookup(8)  # next line


def test_lru_eviction_order():
    cache = CacheModel(num_sets=1, ways=2, line_words=8)
    cache.insert(0)
    cache.insert(8)
    cache.lookup(0)             # 0 becomes MRU
    evicted = cache.insert(16)  # evicts 8, the LRU
    assert evicted == 8
    assert cache.contains(0)
    assert not cache.contains(8)
    assert cache.contains(16)


def test_contains_is_non_mutating():
    cache = CacheModel(num_sets=1, ways=2, line_words=8)
    cache.insert(0)
    cache.insert(8)
    cache.contains(0)           # must NOT refresh LRU
    evicted = cache.insert(16)
    assert evicted == 0


def test_invalidate():
    cache = CacheModel(num_sets=4, ways=2)
    cache.insert(0)
    assert cache.invalidate(0)
    assert not cache.contains(0)
    assert not cache.invalidate(0)


def test_invalidate_all_and_resident_lines():
    cache = CacheModel(num_sets=4, ways=2, line_words=8)
    for address in (0, 8, 16):  # lines 0,1,2 -> distinct sets
        cache.insert(address)
    assert cache.resident_lines() == {0, 8, 16}
    cache.invalidate_all()
    assert cache.resident_lines() == set()


def test_set_mapping():
    cache = CacheModel(num_sets=4, ways=1, line_words=8)
    cache.insert(0)
    cache.insert(8)   # different set (line 1 -> set 1)
    assert cache.contains(0) and cache.contains(8)
    evicted = cache.insert(256)  # line 32 -> set 0: evicts line 0
    assert evicted == 0


def test_capacity():
    cache = CacheModel(num_sets=64, ways=8, line_words=8)
    assert cache.capacity_words == 4096


def test_geometry_validation():
    with pytest.raises(ValueError):
        CacheModel(num_sets=3, ways=2)  # not a power of two
    with pytest.raises(ValueError):
        CacheModel(num_sets=0, ways=2)
    with pytest.raises(ValueError):
        CacheModel(num_sets=4, ways=2, line_words=3)


def test_line_address():
    cache = CacheModel(num_sets=4, ways=2, line_words=8)
    assert cache.line_address(13) == 8
    assert cache.line_address(8) == 8
