"""Unit tests for the memory hierarchy and prefetcher."""

import pytest

from repro.memsys.hierarchy import MemConfig, MemoryHierarchy
from repro.memsys.prefetcher import StridePrefetcher


def test_latency_laddering():
    mem = MemoryHierarchy(MemConfig(prefetch_enabled=False))
    cfg = mem.config
    lat, level = mem.access(0)
    assert (lat, level) == (cfg.dram_latency, "DRAM")
    lat, level = mem.access(0)
    assert (lat, level) == (cfg.l1_latency, "L1")


def test_l2_hit_after_l1_eviction():
    cfg = MemConfig(l1_sets=1, l1_ways=1, prefetch_enabled=False)
    mem = MemoryHierarchy(cfg)
    mem.access(0)
    mem.access(8)      # evicts line 0 from the 1-entry L1
    lat, level = mem.access(0)
    assert level == "L2"
    assert lat == cfg.l2_latency


def test_warm_installs_into_l2_only():
    mem = MemoryHierarchy(MemConfig(prefetch_enabled=False))
    mem.warm([0, 1, 2, 64])
    assert mem.l2.contains(0) and mem.l2.contains(64)
    assert not mem.l1.contains(0)
    lat, level = mem.access(0)
    assert level == "L2"


def test_flush_all():
    mem = MemoryHierarchy()
    mem.access(0)
    mem.flush_all()
    assert not mem.l1.contains(0)
    assert not mem.l2.contains(0)


def test_stats_accumulate():
    mem = MemoryHierarchy(MemConfig(prefetch_enabled=False))
    mem.access(0)
    mem.access(0)
    stats = mem.stats()
    assert stats["accesses"] == 2
    assert stats["dram_accesses"] == 1
    assert stats["l1_hits"] == 1


def test_monotonic_latency_validation():
    with pytest.raises(ValueError):
        MemConfig(l1_latency=20, l2_latency=10).validate()


def test_stride_prefetcher_trains_and_fires():
    prefetcher = StridePrefetcher(threshold=2, degree=2)
    assert prefetcher.observe(1, 100) == []
    assert prefetcher.observe(1, 108) == []   # stride learned
    assert prefetcher.observe(1, 116) == []   # confidence 1
    fired = prefetcher.observe(1, 124)        # confidence 2 -> fire
    assert fired == [132, 140]


def test_stride_prefetcher_resets_on_stride_change():
    prefetcher = StridePrefetcher(threshold=1, degree=1)
    prefetcher.observe(1, 100)
    prefetcher.observe(1, 108)
    assert prefetcher.observe(1, 116) == [124]
    assert prefetcher.observe(1, 300) == []   # stride broken


def test_prefetcher_hides_stream_misses():
    cfg = MemConfig(prefetch_enabled=True, prefetch_degree=4)
    mem = MemoryHierarchy(cfg)
    levels = []
    for i in range(40):
        _lat, level = mem.access(i * 8, pc=7)
        levels.append(level)
    # After training, prefetched lines turn would-be misses into hits.
    assert "L1" in levels[4:]
    assert levels.count("DRAM") < 40


def test_prefetcher_table_capacity():
    prefetcher = StridePrefetcher(table_size=2)
    prefetcher.observe(1, 0)
    prefetcher.observe(2, 0)
    prefetcher.observe(3, 0)  # evicts pc 1
    assert len(prefetcher._table) == 2
