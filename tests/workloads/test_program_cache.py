"""Content-addressed program cache: identity, reuse, invalidation."""

import pytest

from repro.workloads.characteristics import SPEC_PROFILES
from repro.workloads.program_cache import (
    cache_stats,
    cached_program,
    cached_spec_program,
    clear_cache,
    program_key,
    scaled_profile,
)
from repro.workloads.spec2017 import spec_suite


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def test_repeated_requests_share_one_program():
    first = cached_spec_program("503.bwaves", scale=0.05)
    second = cached_spec_program("503.bwaves", scale=0.05)
    assert first is second  # same object, generated once
    stats = cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 1


def test_key_tracks_profile_seed_and_scale():
    profile = SPEC_PROFILES["503.bwaves"]
    base = program_key(scaled_profile(profile, 1.0), 2017)
    assert base == program_key(scaled_profile(profile, 1.0), 2017)
    assert base != program_key(scaled_profile(profile, 0.5), 2017)
    assert base != program_key(scaled_profile(profile, 1.0), 2018)
    other = SPEC_PROFILES["505.mcf"]
    assert base != program_key(scaled_profile(other, 1.0), 2017)


def test_generator_version_participates(monkeypatch):
    profile = scaled_profile(SPEC_PROFILES["503.bwaves"], 0.05)
    before = program_key(profile, 2017)
    import repro.workloads.program_cache as module

    monkeypatch.setattr(module, "GENERATOR_VERSION", "999-test")
    assert program_key(profile, 2017) != before


def test_cached_program_matches_direct_generation():
    from repro.workloads.generator import generate_program

    profile = scaled_profile(SPEC_PROFILES["548.exchange2"], 0.05)
    cached = cached_program(profile, seed=2017)
    direct = generate_program(profile, seed=2017)
    assert [str(i) for i in cached.instructions] == [
        str(i) for i in direct.instructions]
    assert cached.initial_memory == direct.initial_memory


def test_spec_suite_routes_through_cache():
    spec_suite(scale=0.05, benchmarks=("503.bwaves", "505.mcf"))
    assert cache_stats()["misses"] == 2
    spec_suite(scale=0.05, benchmarks=("503.bwaves", "505.mcf"))
    stats = cache_stats()
    assert stats["misses"] == 2 and stats["hits"] == 2


def test_unknown_benchmark_still_raises_keyerror():
    with pytest.raises(KeyError):
        cached_spec_program("no.such.benchmark", scale=0.05)
