"""Content-addressed program cache: identity, reuse, invalidation,
and the persistent (disk) layer."""

import json

import pytest

from repro.workloads.characteristics import SPEC_PROFILES
from repro.workloads.program_cache import (
    cache_stats,
    cached_program,
    cached_spec_program,
    clear_cache,
    configure_disk_cache,
    disk_cache_dir,
    program_key,
    scaled_profile,
)
from repro.workloads.spec2017 import spec_suite


@pytest.fixture(autouse=True)
def fresh_cache():
    previous = configure_disk_cache(None)
    clear_cache()
    yield
    clear_cache()
    configure_disk_cache(previous)


def test_repeated_requests_share_one_program():
    first = cached_spec_program("503.bwaves", scale=0.05)
    second = cached_spec_program("503.bwaves", scale=0.05)
    assert first is second  # same object, generated once
    stats = cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 1


def test_key_tracks_profile_seed_and_scale():
    profile = SPEC_PROFILES["503.bwaves"]
    base = program_key(scaled_profile(profile, 1.0), 2017)
    assert base == program_key(scaled_profile(profile, 1.0), 2017)
    assert base != program_key(scaled_profile(profile, 0.5), 2017)
    assert base != program_key(scaled_profile(profile, 1.0), 2018)
    other = SPEC_PROFILES["505.mcf"]
    assert base != program_key(scaled_profile(other, 1.0), 2017)


def test_generator_version_participates(monkeypatch):
    profile = scaled_profile(SPEC_PROFILES["503.bwaves"], 0.05)
    before = program_key(profile, 2017)
    import repro.workloads.program_cache as module

    monkeypatch.setattr(module, "GENERATOR_VERSION", "999-test")
    assert program_key(profile, 2017) != before


def test_cached_program_matches_direct_generation():
    from repro.workloads.generator import generate_program

    profile = scaled_profile(SPEC_PROFILES["548.exchange2"], 0.05)
    cached = cached_program(profile, seed=2017)
    direct = generate_program(profile, seed=2017)
    assert [str(i) for i in cached.instructions] == [
        str(i) for i in direct.instructions]
    assert cached.initial_memory == direct.initial_memory


def test_spec_suite_routes_through_cache():
    spec_suite(scale=0.05, benchmarks=("503.bwaves", "505.mcf"))
    assert cache_stats()["misses"] == 2
    spec_suite(scale=0.05, benchmarks=("503.bwaves", "505.mcf"))
    stats = cache_stats()
    assert stats["misses"] == 2 and stats["hits"] == 2


def test_unknown_benchmark_still_raises_keyerror():
    with pytest.raises(KeyError):
        cached_spec_program("no.such.benchmark", scale=0.05)


# -- disk layer -------------------------------------------------------------


def test_disk_cache_round_trips_across_processes(tmp_path):
    """A second 'process' (cleared in-memory cache) must reload the
    persisted program instead of regenerating, bit-identical."""
    configure_disk_cache(tmp_path)
    assert disk_cache_dir() == tmp_path
    first = cached_spec_program("548.exchange2", scale=0.05)
    assert len(list(tmp_path.glob("*.json"))) == 1

    clear_cache()  # simulate a fresh process sharing the directory
    second = cached_spec_program("548.exchange2", scale=0.05)
    assert second is not first
    assert cache_stats()["disk_hits"] == 1
    assert [str(i) for i in second.instructions] == [
        str(i) for i in first.instructions]
    assert second.initial_memory == first.initial_memory
    assert second.initial_regs == first.initial_regs
    assert (second.name, second.entry) == (first.name, first.entry)


def test_disk_cached_program_simulates_identically(tmp_path):
    """The deserialised program must drive the core to the exact same
    result as the in-memory generation."""
    from repro.pipeline.config import SMALL
    from repro.pipeline.core import OoOCore

    configure_disk_cache(tmp_path)
    generated = cached_spec_program("503.bwaves", scale=0.05)
    clear_cache()
    reloaded = cached_spec_program("503.bwaves", scale=0.05)
    a = OoOCore(generated, config=SMALL, warm_caches=True).run()
    b = OoOCore(reloaded, config=SMALL, warm_caches=True).run()
    assert a.to_dict() == b.to_dict()


def test_corrupt_disk_entry_falls_back_to_regeneration(tmp_path):
    configure_disk_cache(tmp_path)
    cached_spec_program("503.bwaves", scale=0.05)
    (path,) = tmp_path.glob("*.json")
    path.write_text("{broken json")
    clear_cache()
    program = cached_spec_program("503.bwaves", scale=0.05)
    program.validate()
    stats = cache_stats()
    assert stats["disk_hits"] == 0 and stats["misses"] == 1
    # The regeneration repaired the on-disk entry.
    json.loads(path.read_text())


def test_disk_layer_optional():
    """With no directory configured nothing is written anywhere."""
    assert disk_cache_dir() is None
    program = cached_spec_program("503.bwaves", scale=0.05)
    program.validate()
