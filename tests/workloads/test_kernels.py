"""Tests for the hand-written micro-kernels."""

from repro import MEGA, OoOCore
from repro.isa.interp import run_reference
from repro.workloads.generator import ARRAY_BASE, RING_BASE, SCRATCH_BASE
from repro.workloads.kernels import (
    chase_kernel,
    forwarding_kernel,
    streaming_kernel,
)


def test_streaming_kernel_sums_correctly():
    program = streaming_kernel(iterations=32, array_words=256)
    interp = run_reference(program)
    expected = sum(
        program.initial_memory[ARRAY_BASE + (i % 256)] for i in range(32)
    )
    assert interp.state.read_mem(0) == expected


def test_chase_kernel_follows_the_ring():
    program = chase_kernel(iterations=10, ring_words=16)
    interp = run_reference(program)
    cursor = RING_BASE
    for _ in range(10):
        cursor = program.initial_memory[cursor]
    assert interp.state.read_mem(0) == cursor


def test_chase_ring_is_a_single_cycle():
    program = chase_kernel(iterations=1, ring_words=32)
    seen = set()
    cursor = RING_BASE
    for _ in range(32):
        assert cursor not in seen
        seen.add(cursor)
        cursor = program.initial_memory[cursor]
    assert cursor == RING_BASE  # closed ring covering every cell


def test_forwarding_kernel_halts_and_matches():
    program = forwarding_kernel(iterations=30)
    interp = run_reference(program)
    result = OoOCore(program, config=MEGA).run()
    assert result.regs[10] == interp.state.read_reg(10)


def test_kernels_scale_with_iterations():
    short = run_reference(streaming_kernel(iterations=8)).instructions_retired
    long_ = run_reference(streaming_kernel(iterations=32)).instructions_retired
    assert long_ > 3 * short


def test_kernel_memory_regions_disjoint():
    program = forwarding_kernel(iterations=4, slots=8)
    scratch = {a for a in program.initial_memory if a >= SCRATCH_BASE}
    array = {a for a in program.initial_memory if ARRAY_BASE <= a < RING_BASE}
    assert scratch and array
    assert not scratch.intersection(array)
