"""Tests for the workload generator and SPEC proxy suite."""

import pytest

from repro.isa.interp import run_reference
from repro.workloads.characteristics import SPEC_BENCHMARKS, SPEC_PROFILES, spec_profile
from repro.workloads.generator import WorkloadProfile, generate_program
from repro.workloads.spec2017 import spec_suite


def test_generated_programs_terminate_and_validate():
    profile = WorkloadProfile(name="t", iterations=5, body_templates=6)
    program = generate_program(profile, seed=3)
    program.validate()
    interp = run_reference(program, max_steps=1_000_000)
    assert interp.state.halted


def test_generation_is_deterministic():
    profile = WorkloadProfile(name="t", iterations=5)
    a = generate_program(profile, seed=9)
    b = generate_program(profile, seed=9)
    assert a.instructions == b.instructions
    assert a.initial_memory == b.initial_memory


def test_different_seeds_differ():
    profile = WorkloadProfile(name="t", iterations=5)
    a = generate_program(profile, seed=1)
    b = generate_program(profile, seed=2)
    assert a.instructions != b.instructions or a.initial_memory != b.initial_memory


def test_dynamic_length_scales_with_iterations():
    short = generate_program(WorkloadProfile(name="t", iterations=4), seed=1)
    long_ = generate_program(WorkloadProfile(name="t", iterations=16), seed=1)
    steps_short = run_reference(short).instructions_retired
    steps_long = run_reference(long_).instructions_retired
    assert steps_long > 3 * steps_short


def test_branch_quota_guaranteed_for_branchy_profiles():
    profile = WorkloadProfile(name="t", iterations=2, body_templates=4,
                              w_branch=2.0)
    program = generate_program(profile, seed=5)
    assert any(i.is_branch for i in program.instructions[:-1])


def test_zero_weight_templates_absent():
    profile = WorkloadProfile(
        name="t", iterations=2, w_chase_load=0.0, w_div=0.0, w_mul=0.0,
        w_store=0.0, w_reload=0.0,
    )
    program = generate_program(profile, seed=5)
    ops = {i.op.value for i in program.instructions}
    assert "div" not in ops and "mul" not in ops
    # The trailing result-publishing store is expected; no scratch stores.
    body_stores = [i for i in program.instructions[:-2] if i.is_store]
    assert not body_stores


def test_all_spec_benchmarks_have_profiles():
    assert set(SPEC_BENCHMARKS) == set(SPEC_PROFILES)
    assert len(SPEC_BENCHMARKS) == 22


def test_profile_lookup_by_short_name():
    assert spec_profile("mcf") is SPEC_PROFILES["505.mcf"]
    assert spec_profile("505.mcf") is SPEC_PROFILES["505.mcf"]
    with pytest.raises(KeyError):
        spec_profile("nonexistent")


def test_suite_generation_subset_and_scale():
    suite = spec_suite(scale=0.1, benchmarks=["503.bwaves", "505.mcf"])
    assert [name for name, _ in suite] == ["503.bwaves", "505.mcf"]
    for _name, program in suite:
        program.validate()


def test_suite_programs_all_halt():
    for name, program in spec_suite(scale=0.05):
        interp = run_reference(program, max_steps=2_000_000)
        assert interp.state.halted, name


def test_exchange2_profile_is_forwarding_heavy():
    profile = SPEC_PROFILES["548.exchange2"]
    assert profile.scratch_words <= 32
    assert profile.w_store + profile.w_reload > 3.0


def test_streaming_profiles_have_no_data_branches():
    for name in ("503.bwaves", "554.roms"):
        profile = SPEC_PROFILES[name]
        assert profile.branch_entropy == 0.0
        assert profile.branch_on_load == 0.0
