"""Trace cache: identity, reuse, disk persistence, corrupt fallback,
and the replay contract of the recorded columns."""

import json

import pytest

from repro.isa.interp import run_reference
from repro.isa.trace import TRACE_FORMAT_VERSION, DynamicTrace, record_trace
from repro.workloads.characteristics import SPEC_PROFILES
from repro.workloads.kernels import chase_kernel, streaming_kernel
from repro.workloads.program_cache import (
    cache_stats,
    cached_program,
    cached_spec_trace,
    cached_trace,
    clear_cache,
    configure_disk_cache,
    program_key,
    scaled_profile,
    trace_key,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    previous = configure_disk_cache(None)
    clear_cache()
    yield
    clear_cache()
    configure_disk_cache(previous)


# -- recording semantics ----------------------------------------------------


def test_recorded_trace_matches_reference_run():
    """One column row per retired instruction; final next_pc parks on
    the halt, and the step count matches the reference interpreter."""
    program = streaming_kernel(iterations=8, array_words=64)
    trace = record_trace(program)
    interp = run_reference(program)
    assert interp.state.halted
    assert len(trace) == interp.instructions_retired
    assert trace.pcs[0] == program.entry
    # The final HALT step records its own PC (the replayer never
    # advances past it).
    assert trace.next_pcs[-1] == trace.pcs[-1]
    trace.check_program(program)  # must not raise


def test_payload_round_trip():
    program = chase_kernel(iterations=6, ring_words=32)
    trace = record_trace(program)
    clone = DynamicTrace.from_payload(
        json.loads(json.dumps(trace.to_payload())))
    assert list(clone.pcs) == list(trace.pcs)
    assert list(clone.next_pcs) == list(trace.next_pcs)
    assert list(clone.results) == list(trace.results)
    assert list(clone.addrs) == list(trace.addrs)
    assert bytes(clone.taken) == bytes(trace.taken)
    assert bytes(clone.l1_hit) == bytes(trace.l1_hit)


def test_from_payload_rejects_foreign_format():
    program = streaming_kernel(iterations=4, array_words=64)
    payload = record_trace(program).to_payload()
    payload["format_version"] = "trace-v0-ancient"
    with pytest.raises(ValueError):
        DynamicTrace.from_payload(payload)


def test_check_program_rejects_wrong_program():
    trace = record_trace(streaming_kernel(iterations=4, array_words=64))
    with pytest.raises(ValueError):
        trace.check_program(chase_kernel(iterations=4, ring_words=32))


# -- cache identity ---------------------------------------------------------


def test_trace_key_tracks_program_identity_and_format(monkeypatch):
    profile = SPEC_PROFILES["503.bwaves"]
    base = trace_key(scaled_profile(profile, 0.05), 2017)
    assert base == trace_key(scaled_profile(profile, 0.05), 2017)
    assert base != trace_key(scaled_profile(profile, 0.1), 2017)
    assert base != trace_key(scaled_profile(profile, 0.05), 2018)
    assert base != program_key(scaled_profile(profile, 0.05), 2017)
    import repro.workloads.program_cache as module

    monkeypatch.setattr(module, "TRACE_FORMAT_VERSION", "trace-v999-test")
    assert trace_key(scaled_profile(profile, 0.05), 2017) != base


def test_repeated_requests_share_one_trace():
    profile = scaled_profile(SPEC_PROFILES["505.mcf"], 0.05)
    first = cached_trace(profile)
    second = cached_trace(profile)
    assert first is second  # same object, recorded once
    stats = cache_stats()
    assert stats["trace_misses"] == 1 and stats["trace_hits"] == 1
    assert stats["trace_entries"] == 1
    # A trace request primes the program cache too.
    assert cached_program(profile) is not None
    assert cache_stats()["hits"] == 1


def test_unknown_benchmark_raises_keyerror():
    with pytest.raises(KeyError):
        cached_spec_trace("no.such.benchmark", scale=0.05)


# -- disk layer -------------------------------------------------------------


def test_disk_round_trip_across_processes(tmp_path):
    """A second 'process' (fresh in-memory cache, same directory) loads
    the persisted trace instead of re-recording."""
    configure_disk_cache(tmp_path)
    profile = scaled_profile(SPEC_PROFILES["503.bwaves"], 0.05)
    first = cached_trace(profile)
    key = trace_key(profile, 2017)
    assert (tmp_path / ("%s.trace.json" % key)).is_file()

    clear_cache()  # simulate a fresh process sharing the directory
    second = cached_trace(profile)
    assert second is not first
    assert cache_stats()["trace_disk_hits"] == 1
    assert list(second.next_pcs) == list(first.next_pcs)
    assert list(second.results) == list(first.results)


def test_corrupt_disk_file_falls_back_to_rerecording(tmp_path):
    configure_disk_cache(tmp_path)
    profile = scaled_profile(SPEC_PROFILES["505.mcf"], 0.05)
    reference = cached_trace(profile)
    key = trace_key(profile, 2017)
    path = tmp_path / ("%s.trace.json" % key)

    for garbage in ("", "{not json", json.dumps({"format_version": "x"}),
                    json.dumps({"format_version": TRACE_FORMAT_VERSION})):
        path.write_text(garbage)
        clear_cache()
        recovered = cached_trace(profile)
        assert cache_stats()["trace_disk_hits"] == 0
        assert list(recovered.next_pcs) == list(reference.next_pcs)
        # The re-record repaired the file on disk.
        repaired = json.loads(path.read_text())
        assert repaired["format_version"] == TRACE_FORMAT_VERSION


def test_mismatched_persisted_trace_is_rerecorded(tmp_path):
    """A parseable file whose contents belong to a different program
    (key collision / stale wiring) fails check_program and re-records."""
    configure_disk_cache(tmp_path)
    profile = scaled_profile(SPEC_PROFILES["503.bwaves"], 0.05)
    key = trace_key(profile, 2017)
    impostor = record_trace(streaming_kernel(iterations=4, array_words=64))
    (tmp_path / ("%s.trace.json" % key)).write_text(
        json.dumps(impostor.to_payload()))

    trace = cached_trace(profile)
    trace.check_program(cached_program(profile))  # must not raise
    assert len(trace) != len(impostor)
